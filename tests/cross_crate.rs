//! Cross-crate integration tests: every structure in the suite against the
//! same scripted workloads, semantic equivalence between structures, and
//! template-level properties that span llxscx + nbtree.

use workload::{
    check_against_model, check_against_model_dist, make_map, KeyDist, SuiteConfig, ALL_MAPS,
};

/// One config for every test in this file: the scripted workloads use
/// small key ranges, so the sharded entry's boundary table is sized to
/// match (the typed-config equivalent of what the bench bins do).
fn cfg() -> SuiteConfig {
    SuiteConfig::default().with_span(256)
}

#[test]
fn all_structures_agree_on_scripted_workload() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let maps: Vec<_> = ALL_MAPS
        .iter()
        .map(|n| make_map(n, &cfg()).unwrap())
        .collect();
    let mut rng = StdRng::seed_from_u64(1234);
    for step in 0..4000u64 {
        let k = rng.gen_range(0..200u64);
        match rng.gen_range(0..4) {
            0 => {
                let expect = maps[0].insert(k, step);
                for m in &maps[1..] {
                    assert_eq!(m.insert(k, step), expect, "{} insert({k})", m.name());
                }
            }
            1 => {
                let expect = maps[0].remove(&k);
                for m in &maps[1..] {
                    assert_eq!(m.remove(&k), expect, "{} remove({k})", m.name());
                }
            }
            2 => {
                let expect = maps[0].get(&k);
                for m in &maps[1..] {
                    assert_eq!(m.get(&k), expect, "{} get({k})", m.name());
                }
            }
            _ => {
                let hi = k + rng.gen_range(0..50u64);
                let expect = maps[0].range(k, hi);
                for m in &maps[1..] {
                    assert_eq!(m.range(k, hi), expect, "{} range([{k}, {hi}])", m.name());
                }
            }
        }
    }
    let n = maps[0].len();
    for m in &maps[1..] {
        assert_eq!(m.len(), n, "{} size", m.name());
    }
}

#[test]
fn each_structure_matches_btreemap() {
    for name in ALL_MAPS {
        let map = make_map(name, &cfg()).unwrap();
        check_against_model(map.as_ref(), 5, 5000, 300);
    }
}

#[test]
fn each_structure_matches_btreemap_under_skewed_keys() {
    // The skewed samplers feed every structure a hot-key-heavy script:
    // the same few keys hammered through insert/remove/get/range, which
    // exercises repeated same-leaf churn (chromatic rebalancing,
    // hopscotch displacement, shard hot-spotting) that a uniform script
    // touches only rarely. Model equivalence must hold regardless of how
    // keys are drawn.
    let dists = [
        KeyDist::Zipfian { theta_pct: 90 },
        KeyDist::Zipfian { theta_pct: 120 },
        KeyDist::HotSet {
            keys_pct: 5,
            ops_pct: 90,
        },
    ];
    for name in ALL_MAPS {
        for dist in dists {
            let map = make_map(name, &cfg()).unwrap();
            check_against_model_dist(map.as_ref(), 5, 3000, 300, dist);
        }
    }
}

#[test]
fn trait_batch_ops_match_per_element_application_on_every_structure() {
    // The batch-equivalence oracle: on every registered structure
    // (including `sharded`, whose override regroups by shard, and the
    // chromatic entries, whose overrides are the sorted-bulk
    // insert/remove with single-SCX run merging), the trait-level batch
    // entry points must return exactly what sequential per-element
    // application returns — displaced values in input order, duplicate
    // keys resolving in batch order — and leave identical contents
    // behind. One round flavor builds clustered consecutive-key runs,
    // the shape the merge paths collapse.
    use rand::{rngs::StdRng, Rng, SeedableRng};
    for name in ALL_MAPS {
        let batched = make_map(name, &cfg()).unwrap();
        let pointwise = make_map(name, &cfg()).unwrap();
        let mut rng = StdRng::seed_from_u64(4242);
        for round in 0..150u64 {
            let len = rng.gen_range(0..40usize);
            match rng.gen_range(0..4) {
                0 => {
                    // Small key range: plenty of in-batch duplicates.
                    let batch: Vec<(u64, u64)> = (0..len)
                        .map(|i| (rng.gen_range(0..200), round * 100 + i as u64))
                        .collect();
                    let expect: Vec<_> =
                        batch.iter().map(|&(k, v)| pointwise.insert(k, v)).collect();
                    assert_eq!(
                        batched.insert_batch(&batch),
                        expect,
                        "{name} insert_batch {batch:?}"
                    );
                }
                1 => {
                    let keys: Vec<u64> = (0..len).map(|_| rng.gen_range(0..200)).collect();
                    let expect: Vec<_> = keys.iter().map(|k| pointwise.remove(k)).collect();
                    assert_eq!(
                        batched.remove_batch(&keys),
                        expect,
                        "{name} remove_batch {keys:?}"
                    );
                }
                2 => {
                    let keys: Vec<u64> = (0..len).map(|_| rng.gen_range(0..200)).collect();
                    let expect: Vec<_> = keys.iter().map(|k| pointwise.get(k)).collect();
                    assert_eq!(
                        batched.get_batch(&keys),
                        expect,
                        "{name} get_batch {keys:?}"
                    );
                }
                _ => {
                    // Clustered runs: random bases expanded to consecutive
                    // keys — maximal same-leaf runs for the chromatic
                    // merge paths. Alternate rounds insert and remove, so
                    // sibling-pair collapses fire on leaves the previous
                    // clustered round installed.
                    let mut keys: Vec<u64> = Vec::new();
                    while keys.len() < len {
                        let base = rng.gen_range(0..200u64);
                        let r = rng.gen_range(1..9usize).min(len - keys.len());
                        keys.extend(base..base + r as u64);
                    }
                    if round % 2 == 0 {
                        let batch: Vec<(u64, u64)> =
                            keys.iter().map(|&k| (k, round * 100)).collect();
                        let expect: Vec<_> =
                            batch.iter().map(|&(k, v)| pointwise.insert(k, v)).collect();
                        assert_eq!(
                            batched.insert_batch(&batch),
                            expect,
                            "{name} clustered insert_batch {batch:?}"
                        );
                    } else {
                        let expect: Vec<_> = keys.iter().map(|k| pointwise.remove(k)).collect();
                        assert_eq!(
                            batched.remove_batch(&keys),
                            expect,
                            "{name} clustered remove_batch {keys:?}"
                        );
                    }
                }
            }
        }
        assert_eq!(
            batched.range(0, u64::MAX),
            pointwise.range(0, u64::MAX),
            "{name}: final contents diverged"
        );
        // And the model-based flavor of the same oracle.
        let map = make_map(name, &cfg()).unwrap();
        workload::check_batches_against_model(map.as_ref(), 17, 120, 200);
    }
}

#[test]
fn concurrent_batch_writers_settle_like_point_writers() {
    // Batched and point execution of the same striped workload must agree
    // on the final state on every structure (each stripe is
    // single-writer, so the end state is deterministic). This is the
    // concurrent half of the batch oracle and runs under TSan in CI.
    use std::sync::Arc;
    for name in ALL_MAPS {
        let maps: Vec<Arc<dyn workload::ConcurrentMap>> = vec![
            Arc::from(make_map(name, &cfg()).unwrap()),
            Arc::from(make_map(name, &cfg()).unwrap()),
        ];
        for (flavor, map) in maps.iter().enumerate() {
            std::thread::scope(|s| {
                for tid in 0..4u64 {
                    let map = Arc::clone(map);
                    s.spawn(move || {
                        let base = tid * 1000;
                        for round in 0..8u64 {
                            let batch: Vec<(u64, u64)> =
                                (0..125).map(|i| (base + (round * 125 + i), i)).collect();
                            let dels: Vec<u64> = batch.iter().step_by(3).map(|&(k, _)| k).collect();
                            if flavor == 0 {
                                map.insert_batch(&batch);
                                map.remove_batch(&dels);
                            } else {
                                for &(k, v) in &batch {
                                    map.insert(k, v);
                                }
                                for k in &dels {
                                    map.remove(k);
                                }
                            }
                        }
                    });
                }
            });
        }
        assert_eq!(
            maps[0].range(0, u64::MAX),
            maps[1].range(0, u64::MAX),
            "{name}: batched and point writers diverged"
        );
    }
}

#[test]
fn batched_service_over_every_structure_settles_like_model() {
    // The service-vs-model oracle: N client threads push interleaved
    // point ops through a `BatchedService` front end (real flusher
    // thread, size + deadline triggers, `Block` backpressure) over every
    // registered structure. Clients own disjoint key stripes, so the
    // FIFO queue plus in-order batch execution makes each client's
    // response stream equal its own sequential `BTreeMap` replay —
    // including duplicate-key submissions, which must resolve in
    // submission order. After shutdown the settled contents must equal
    // the union of the per-stripe models. Runs under TSan in CI (the
    // flusher, the clients and the oneshot completions race for real).
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use service::{BatchedService, FlushPolicy, Op, ServiceConfig};
    use std::collections::BTreeMap;
    use std::time::Duration;
    const CLIENTS: u64 = 4;
    const STRIPE: u64 = 1000;
    const OPS: u64 = 1200;
    for name in ALL_MAPS {
        let svc = BatchedService::start(
            make_map(name, &cfg()).unwrap(),
            ServiceConfig::new(FlushPolicy::new(32, Duration::from_micros(200))),
        );
        let svc = std::sync::Arc::new(svc);
        let models: Vec<BTreeMap<u64, u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|tid| {
                    let svc = std::sync::Arc::clone(&svc);
                    s.spawn(move || {
                        let base = tid * STRIPE;
                        let mut rng = StdRng::seed_from_u64(tid + 99);
                        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
                        let mut window: Vec<(Op, service::ResponseFuture)> = Vec::new();
                        for step in 0..OPS {
                            // Narrow per-stripe key range: plenty of
                            // same-key (duplicate) submissions in flight.
                            let k = base + rng.gen_range(0..150u64);
                            let op = match rng.gen_range(0..4) {
                                0 | 1 => Op::Insert(k, tid * 1_000_000 + step),
                                2 => Op::Remove(k),
                                _ => Op::Get(k),
                            };
                            window.push((op, svc.submit(op).unwrap()));
                            // Settle in windows so many futures are in
                            // flight at once but memory stays bounded.
                            if window.len() == 64 || step == OPS - 1 {
                                for (op, fut) in window.drain(..) {
                                    let want = match op {
                                        Op::Get(k) => model.get(&k).copied(),
                                        Op::Insert(k, v) => model.insert(k, v),
                                        Op::Remove(k) => model.remove(&k),
                                    };
                                    assert_eq!(
                                        fut.wait(),
                                        want,
                                        "{name}: client {tid} {op:?} diverged from replay"
                                    );
                                }
                            }
                        }
                        model
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut svc = std::sync::Arc::into_inner(svc).expect("clients joined");
        svc.shutdown();
        let merged: Vec<(u64, u64)> = models
            .into_iter()
            .flatten()
            .collect::<BTreeMap<u64, u64>>()
            .into_iter()
            .collect();
        assert_eq!(
            svc.map().range(0, u64::MAX),
            merged,
            "{name}: settled contents diverged from the striped models"
        );
        let stats = svc.stats();
        assert_eq!(stats.submitted, CLIENTS * OPS, "{name}: lost submissions");
        assert_eq!(stats.completed, CLIENTS * OPS, "{name}: lost responses");
        assert!(
            stats.flushes < stats.completed,
            "{name}: no batching at all under {CLIENTS} concurrent clients"
        );
    }
}

#[test]
fn concurrent_cross_structure_consistency() {
    // Run the same striped concurrent workload on every structure; final
    // contents must be identical (each stripe is single-writer).
    use std::sync::Arc;
    let mut finals = Vec::new();
    for name in ALL_MAPS {
        let map: Arc<dyn workload::ConcurrentMap> = Arc::from(make_map(name, &cfg()).unwrap());
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let map = Arc::clone(&map);
                s.spawn(move || {
                    let base = tid * 1000;
                    for i in 0..1000 {
                        map.insert(base + i, i);
                    }
                    for i in (0..1000).step_by(3) {
                        map.remove(&(base + i));
                    }
                });
            }
        });
        finals.push((name, map.len()));
    }
    let expect = finals[0].1;
    for (name, n) in &finals {
        assert_eq!(*n, expect, "{name} diverged");
    }
}

#[test]
fn concurrent_range_scans_hold_weak_properties_on_every_structure() {
    // Properties every structure's scan must satisfy even mid-churn,
    // atomic or not: sorted, duplicate-free, no phantom keys, and no
    // missing *permanent* key (inserted before the storm, never touched).
    // The strong atomic-snapshot check (pair invariant) lives in
    // `crates/core/tests/range_stress.rs` for the VLX-validated trees.
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    const CHURN_LO: u64 = 1000; // churn keys: [1000, 2000)
    const CHURN_HI: u64 = 2000;
    for name in ALL_MAPS {
        let map: Arc<dyn workload::ConcurrentMap> = Arc::from(make_map(name, &cfg()).unwrap());
        for k in (0..CHURN_LO).step_by(10) {
            map.insert(k, k); // permanent prefix
        }
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for tid in 0..2u64 {
                let map = Arc::clone(&map);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    use rand::{rngs::StdRng, Rng, SeedableRng};
                    let mut rng = StdRng::seed_from_u64(tid);
                    while !stop.load(Ordering::Relaxed) {
                        let k = rng.gen_range(CHURN_LO..CHURN_HI);
                        if rng.gen_bool(0.5) {
                            map.insert(k, k);
                        } else {
                            map.remove(&k);
                        }
                    }
                });
            }
            let scans = if cfg!(debug_assertions) { 100 } else { 250 };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                for round in 0..scans {
                    let lo = (round as u64 * 37) % CHURN_LO;
                    let snap = map.range(lo, CHURN_HI + 100);
                    for w in snap.windows(2) {
                        assert!(w[0].0 < w[1].0, "{name}: scan not strictly sorted");
                    }
                    for (k, _) in &snap {
                        assert!(
                            (*k < CHURN_LO && k % 10 == 0) || (CHURN_LO..CHURN_HI).contains(k),
                            "{name}: phantom key {k}"
                        );
                    }
                    for k in (lo.next_multiple_of(10)..CHURN_LO).step_by(10) {
                        assert!(
                            snap.binary_search_by_key(&k, |(k, _)| *k).is_ok(),
                            "{name}: permanent key {k} missing from scan at [{lo}, ..]"
                        );
                    }
                }
            }));
            stop.store(true, Ordering::Relaxed);
            if let Err(panic) = result {
                std::panic::resume_unwind(panic);
            }
        });
    }
}

#[test]
fn hybrid_tiers_agree_after_settled_concurrent_run() {
    // The dual-write consistency oracle for the `"hybrid"` registration:
    // point ops answer from the hash tier, `range` from the chromatic
    // tier, and every mutation dual-writes both under a per-key-stripe
    // latch. Unlike the suite's other concurrent tests, the threads here
    // deliberately contend on the SAME keys — without the latch, two
    // racing writers could commit in opposite orders in the two tiers
    // and leave them permanently disagreeing, which is exactly the bug
    // class this oracle exists to catch. After the run settles, the
    // tiers must agree key for key.
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use std::sync::Arc;
    const KEYSPACE: u64 = 512;
    let map: Arc<dyn workload::ConcurrentMap> = Arc::from(make_map("hybrid", &cfg()).unwrap());
    std::thread::scope(|s| {
        for tid in 0..4u64 {
            let map = Arc::clone(&map);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(tid);
                for step in 0..6000u64 {
                    let k = rng.gen_range(0..KEYSPACE); // shared keyspace: same-key races
                    match rng.gen_range(0..4) {
                        0 | 1 => {
                            map.insert(k, tid * 1_000_000 + step);
                        }
                        2 => {
                            map.remove(&k);
                        }
                        _ => {
                            map.get(&k);
                        }
                    }
                }
                llxscx::guard_cache::flush();
            });
        }
    });
    // Settled: the hash tier (gets, len) and the tree tier (range) must
    // be the same map.
    let scan = map.range(0, u64::MAX);
    assert!(scan.windows(2).all(|w| w[0].0 < w[1].0), "scan not sorted");
    assert_eq!(map.len(), scan.len(), "hash-tier len != tree-tier scan");
    let mut present = 0;
    for k in 0..KEYSPACE {
        let got = map.get(&k);
        let in_scan = scan
            .binary_search_by_key(&k, |(k, _)| *k)
            .ok()
            .map(|i| scan[i].1);
        assert_eq!(got, in_scan, "tiers disagree on key {k}");
        present += got.is_some() as usize;
    }
    assert_eq!(present, scan.len());
}

#[test]
fn template_driver_and_unrolled_updates_interoperate() {
    // nbbst (generic template driver) and chromatic (hand-unrolled) share
    // the same llxscx substrate; hammering both concurrently in one process
    // checks the substrate's global state (epoch collector) under load.
    use std::sync::Arc;
    let bst = Arc::new(nbbst::NbBst::<u64, u64>::new());
    let chrom = Arc::new(nbtree::ChromaticTree::<u64, u64>::new());
    std::thread::scope(|s| {
        for tid in 0..2u64 {
            let bst = Arc::clone(&bst);
            let chrom = Arc::clone(&chrom);
            s.spawn(move || {
                for i in 0..5000u64 {
                    let k = (i * 7 + tid * 3) % 512;
                    bst.insert(k, i);
                    chrom.insert(k, i);
                    if i % 3 == 0 {
                        bst.remove(&k);
                        chrom.remove(&k);
                    }
                }
            });
        }
    });
    let report = chrom.audit();
    assert!(report.is_valid(), "{:?}", report.errors);
}
