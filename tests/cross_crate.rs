//! Cross-crate integration tests: every structure in the suite against the
//! same scripted workloads, semantic equivalence between structures, and
//! template-level properties that span llxscx + nbtree.

use workload::{check_against_model, make_map, ALL_MAPS};

#[test]
fn all_structures_agree_on_scripted_workload() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let maps: Vec<_> = ALL_MAPS.iter().map(|n| make_map(n).unwrap()).collect();
    let mut rng = StdRng::seed_from_u64(1234);
    for step in 0..4000u64 {
        let k = rng.gen_range(0..200u64);
        match rng.gen_range(0..3) {
            0 => {
                let expect = maps[0].insert(k, step);
                for m in &maps[1..] {
                    assert_eq!(m.insert(k, step), expect, "{} insert({k})", m.name());
                }
            }
            1 => {
                let expect = maps[0].remove(&k);
                for m in &maps[1..] {
                    assert_eq!(m.remove(&k), expect, "{} remove({k})", m.name());
                }
            }
            _ => {
                let expect = maps[0].get(&k);
                for m in &maps[1..] {
                    assert_eq!(m.get(&k), expect, "{} get({k})", m.name());
                }
            }
        }
    }
    let n = maps[0].len();
    for m in &maps[1..] {
        assert_eq!(m.len(), n, "{} size", m.name());
    }
}

#[test]
fn each_structure_matches_btreemap() {
    for name in ALL_MAPS {
        let map = make_map(name).unwrap();
        check_against_model(map.as_ref(), 5, 5000, 300);
    }
}

#[test]
fn concurrent_cross_structure_consistency() {
    // Run the same striped concurrent workload on every structure; final
    // contents must be identical (each stripe is single-writer).
    use std::sync::Arc;
    let mut finals = Vec::new();
    for name in ALL_MAPS {
        let map: Arc<dyn workload::ConcurrentMap> = Arc::from(make_map(name).unwrap());
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let map = Arc::clone(&map);
                s.spawn(move || {
                    let base = tid * 1000;
                    for i in 0..1000 {
                        map.insert(base + i, i);
                    }
                    for i in (0..1000).step_by(3) {
                        map.remove(&(base + i));
                    }
                });
            }
        });
        finals.push((name, map.len()));
    }
    let expect = finals[0].1;
    for (name, n) in &finals {
        assert_eq!(*n, expect, "{name} diverged");
    }
}

#[test]
fn template_driver_and_unrolled_updates_interoperate() {
    // nbbst (generic template driver) and chromatic (hand-unrolled) share
    // the same llxscx substrate; hammering both concurrently in one process
    // checks the substrate's global state (epoch collector) under load.
    use std::sync::Arc;
    let bst = Arc::new(nbbst::NbBst::<u64, u64>::new());
    let chrom = Arc::new(nbtree::ChromaticTree::<u64, u64>::new());
    std::thread::scope(|s| {
        for tid in 0..2u64 {
            let bst = Arc::clone(&bst);
            let chrom = Arc::clone(&chrom);
            s.spawn(move || {
                for i in 0..5000u64 {
                    let k = (i * 7 + tid * 3) % 512;
                    bst.insert(k, i);
                    chrom.insert(k, i);
                    if i % 3 == 0 {
                        bst.remove(&k);
                        chrom.remove(&k);
                    }
                }
            });
        }
    });
    let report = chrom.audit();
    assert!(report.is_valid(), "{:?}", report.errors);
}
