//! Cross-crate stress for the sharded façade: the pair-invariant
//! linearizability harness of `crates/core/tests/range_stress.rs`,
//! applied *per shard*.
//!
//! The façade's documented range-atomicity scope is per-shard: each
//! shard's slice of a stitched scan is a VLX-atomic snapshot, but slices
//! from different shards may reflect different instants. The harness
//! encodes exactly that contract: every writer-toggled key pair is placed
//! wholly inside one shard (pair strides divide the shard boundaries), so
//! an atomic *per-shard* scan must always observe ≥ 1 member of every
//! pair — even though the overall scan crosses every boundary. A pair
//! straddling a boundary would carry no such guarantee; that case is
//! covered by the sequential proptest in `crates/sharded` and documented
//! in `docs/SHARDING.md`.
//!
//! Writers come in two flavors, point ops and batched ops
//! (`insert_batch`/`remove_batch`), so the batch entry points are
//! stressed against concurrent stitched scans too.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use sharded::{ConcurrentMap, ShardedMap};
use workload::{make_sharded, SuiteConfig};

/// Pair layout, mirroring `range_stress.rs`: pair `i` is
/// `(base, base + SPREAD)` with a permanent key at `base + 1`. STRIDE
/// divides the shard span, so boundaries always fall on pair bases and no
/// pair straddles a shard.
const PAIRS: u64 = 24;
const SPREAD: u64 = 1000;
const STRIDE: u64 = 2 * SPREAD + 100;
const SHARDS: usize = 4;
const SPAN: u64 = PAIRS * STRIDE; // per-shard: PAIRS / SHARDS whole pairs

fn pair_lo(i: u64) -> u64 {
    i * STRIDE
}
fn pair_hi(i: u64) -> u64 {
    i * STRIDE + SPREAD
}
fn permanent(i: u64) -> u64 {
    i * STRIDE + 1
}

fn scans() -> usize {
    if cfg!(debug_assertions) {
        150
    } else {
        400
    }
}

fn check_snapshot<M: ConcurrentMap>(map: &ShardedMap<M>, snap: &[(u64, u64)], lo: u64, hi: u64) {
    for w in snap.windows(2) {
        assert!(
            w[0].0 < w[1].0,
            "stitched scan not strictly sorted: {:?} then {:?}",
            w[0],
            w[1]
        );
    }
    assert!(
        snap.iter().all(|(k, _)| (lo..=hi).contains(k)),
        "stitched scan leaked keys outside [{lo}, {hi}]"
    );
    for (k, _) in snap {
        let i = k / STRIDE;
        assert!(
            *k == pair_lo(i) || *k == pair_hi(i) || *k == permanent(i),
            "phantom key {k} was never inserted"
        );
    }
    for i in 0..PAIRS {
        if lo <= permanent(i) && permanent(i) <= hi {
            assert!(
                snap.binary_search_by_key(&permanent(i), |(k, _)| *k)
                    .is_ok(),
                "permanent key {} missing from [{lo}, {hi}]",
                permanent(i)
            );
        }
        // THE per-shard atomicity check. Every pair sits inside one shard
        // by construction (assert it, so a layout change cannot silently
        // weaken the test); a pair wholly inside the query must have ≥ 1
        // member in the stitched snapshot, because the slice contributed
        // by its shard is atomic.
        if lo <= pair_lo(i) && pair_hi(i) <= hi {
            assert_eq!(
                map.shard_of(pair_lo(i)),
                map.shard_of(pair_hi(i)),
                "test layout broken: pair {i} straddles a shard boundary"
            );
            let has_lo = snap.binary_search_by_key(&pair_lo(i), |(k, _)| *k).is_ok();
            let has_hi = snap.binary_search_by_key(&pair_hi(i), |(k, _)| *k).is_ok();
            assert!(
                has_lo || has_hi,
                "pair {i} ({}, {}) wholly absent from stitched scan of [{lo}, {hi}]: \
                 the per-shard slice was not atomic",
                pair_lo(i),
                pair_hi(i)
            );
        }
    }
}

/// `batched = false`: writers toggle pairs with point ops.
/// `batched = true`: writers toggle all their pairs with one
/// `insert_batch` (absent members) followed by one `remove_batch`
/// (previously-present members) — between the two calls both members are
/// present, so the ≥ 1 invariant holds at every instant.
fn pair_invariant_stress(batched: bool) {
    let map = Arc::new(make_sharded(
        &SuiteConfig::default().with_shards(SHARDS).with_span(SPAN),
    ));
    assert_eq!(map.shard_count(), SHARDS);
    for i in 0..PAIRS {
        map.insert(permanent(i), i);
        map.insert(pair_lo(i), i);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let writers = 2u64;
    let scanners = 2u64;
    std::thread::scope(|s| {
        for w in 0..writers {
            let map = Arc::clone(&map);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mine: Vec<u64> = (w..PAIRS).step_by(writers as usize).collect();
                let mut present_lo = true; // all owned pairs toggle together
                while !stop.load(Ordering::Relaxed) {
                    let (add, del): (Vec<_>, Vec<_>) = if present_lo {
                        (
                            mine.iter().map(|&i| (pair_hi(i), i)).collect(),
                            mine.iter().map(|&i| pair_lo(i)).collect(),
                        )
                    } else {
                        (
                            mine.iter().map(|&i| (pair_lo(i), i)).collect(),
                            mine.iter().map(|&i| pair_hi(i)).collect(),
                        )
                    };
                    if batched {
                        map.insert_batch(&add);
                        map.remove_batch(&del);
                    } else {
                        for (&(k, v), &d) in add.iter().zip(&del) {
                            map.insert(k, v);
                            map.remove(&d);
                        }
                    }
                    present_lo = !present_lo;
                }
            });
        }
        let scan_handles: Vec<_> = (0..scanners)
            .map(|t| {
                let map = Arc::clone(&map);
                s.spawn(move || {
                    use rand::{rngs::StdRng, Rng, SeedableRng};
                    let mut rng = StdRng::seed_from_u64(700 + t);
                    for round in 0..scans() {
                        let (lo, hi) = if round % 3 == 0 {
                            (0, SPAN + SPREAD) // all shards
                        } else {
                            let a = rng.gen_range(0..PAIRS);
                            let b = rng.gen_range(a..PAIRS);
                            (a * STRIDE, b * STRIDE + SPREAD)
                        };
                        let snap = map.range(lo, hi);
                        check_snapshot(&map, &snap, lo, hi);
                    }
                })
            })
            .collect();
        // Stop writers BEFORE propagating scanner panics (they poll
        // `stop`; panicking first would deadlock the scope).
        let results: Vec<_> = scan_handles.into_iter().map(|h| h.join()).collect();
        stop.store(true, Ordering::Relaxed);
        for r in results {
            if let Err(panic) = r {
                std::panic::resume_unwind(panic);
            }
        }
    });
}

#[test]
fn stitched_scans_are_atomic_per_shard_under_point_writers() {
    pair_invariant_stress(false);
}

#[test]
fn stitched_scans_are_atomic_per_shard_under_batched_writers() {
    pair_invariant_stress(true);
}

/// After a multi-thread batched storm: the façade agrees with a
/// sequential replay, every key sits in the shard the boundary table
/// names, and the stitched full scan equals the union of per-shard scans.
#[test]
fn batched_storm_settles_to_consistent_shards() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let map = Arc::new(make_sharded(
        &SuiteConfig::default().with_shards(8).with_span(4096),
    ));
    std::thread::scope(|s| {
        for tid in 0..4u64 {
            let map = Arc::clone(&map);
            s.spawn(move || {
                // Disjoint key stripes per thread, so a sequential replay
                // below can predict the final state exactly.
                let mut rng = StdRng::seed_from_u64(tid);
                for round in 0..60u64 {
                    let batch: Vec<(u64, u64)> = (0..64)
                        .map(|_| (rng.gen_range(0..1024) * 4 + tid, round))
                        .collect();
                    map.insert_batch(&batch);
                    let dels: Vec<u64> = batch.iter().take(32).map(|&(k, _)| k).collect();
                    map.remove_batch(&dels);
                }
            });
        }
    });
    // Sequential replay per stripe.
    use std::collections::BTreeMap;
    let mut model = BTreeMap::new();
    for tid in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(tid);
        for round in 0..60u64 {
            let batch: Vec<(u64, u64)> = (0..64)
                .map(|_| (rng.gen_range(0..1024) * 4 + tid, round))
                .collect();
            for &(k, v) in &batch {
                model.insert(k, v);
            }
            for &(k, _) in batch.iter().take(32) {
                model.remove(&k);
            }
        }
    }
    let full = map.range(0, u64::MAX);
    let expect: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
    assert_eq!(full, expect);
    assert_eq!(map.len(), model.len());
    // Shard residency matches the boundary table, and the stitched scan
    // is exactly the shard-ordered concatenation.
    let mut stitched = Vec::new();
    for idx in 0..map.shard_count() {
        let shard_content = map.shard(idx).range(0, u64::MAX);
        for (k, _) in &shard_content {
            assert_eq!(map.shard_of(*k), idx, "key {k} resident in wrong shard");
        }
        stitched.extend(shard_content);
    }
    assert_eq!(stitched, expect);
}
