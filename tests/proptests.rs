//! Property-based tests (proptest): arbitrary operation sequences preserve
//! dictionary semantics and every structural invariant, on every structure.

use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16, u16),
    Remove(u16),
    Get(u16),
    Successor(u16),
    Predecessor(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), any::<u16>()).prop_map(|(k, v)| Op::Insert(k % 512, v)),
        any::<u16>().prop_map(|k| Op::Remove(k % 512)),
        any::<u16>().prop_map(|k| Op::Get(k % 512)),
        any::<u16>().prop_map(|k| Op::Successor(k % 512)),
        any::<u16>().prop_map(|k| Op::Predecessor(k % 512)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The chromatic tree is sequentially equivalent to BTreeMap under any
    /// op sequence, and is a valid violation-free chromatic tree afterward.
    #[test]
    fn chromatic_equals_model(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let t = nbtree::ChromaticTree::<u64, u64>::new();
        let mut model = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => prop_assert_eq!(t.insert(k as u64, v as u64), model.insert(k as u64, v as u64)),
                Op::Remove(k) => prop_assert_eq!(t.remove(&(k as u64)), model.remove(&(k as u64))),
                Op::Get(k) => prop_assert_eq!(t.get(&(k as u64)), model.get(&(k as u64)).copied()),
                Op::Successor(k) => {
                    let expect = model.range(k as u64 + 1..).next().map(|(a, b)| (*a, *b));
                    prop_assert_eq!(t.successor(&(k as u64)), expect);
                }
                Op::Predecessor(k) => {
                    let expect = model.range(..k as u64).next_back().map(|(a, b)| (*a, *b));
                    prop_assert_eq!(t.predecessor(&(k as u64)), expect);
                }
            }
        }
        let report = t.audit();
        prop_assert!(report.is_valid(), "errors: {:?}", report.errors);
        prop_assert_eq!(report.violations(), 0);
        let contents = t.collect();
        let expect: Vec<(u64, u64)> = model.into_iter().collect();
        prop_assert_eq!(contents, expect);
    }

    /// Same with cleanup deferred (Chromatic6): structure must stay valid;
    /// violations may remain but are bounded by the updates performed.
    #[test]
    fn chromatic6_stays_valid(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let t = nbtree::ChromaticTree::<u64, u64>::with_allowed_violations(6);
        let mut model = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => prop_assert_eq!(t.insert(k as u64, v as u64), model.insert(k as u64, v as u64)),
                Op::Remove(k) => prop_assert_eq!(t.remove(&(k as u64)), model.remove(&(k as u64))),
                _ => {}
            }
        }
        let report = t.audit();
        prop_assert!(report.is_valid(), "errors: {:?}", report.errors);
        prop_assert!(report.violations() <= ops.len());
    }

    /// The template-driven plain BST has identical map semantics.
    #[test]
    fn nbbst_equals_model(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let t = nbbst::NbBst::<u64, u64>::new();
        let mut model = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => prop_assert_eq!(t.insert(k as u64, v as u64), model.insert(k as u64, v as u64)),
                Op::Remove(k) => prop_assert_eq!(t.remove(&(k as u64)), model.remove(&(k as u64))),
                Op::Get(k) => prop_assert_eq!(t.get(&(k as u64)), model.get(&(k as u64)).copied()),
                _ => {}
            }
        }
        prop_assert_eq!(t.collect(), model.into_iter().collect::<Vec<_>>());
    }

    /// Baselines: skip list, lock-AVL, STM RBT, global-lock RBT all agree
    /// with the model (and with each other, transitively).
    #[test]
    fn baselines_equal_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let sl = nbskiplist::SkipListMap::<u64, u64>::new();
        let avl = lockavl::LockAvl::<u64, u64>::new();
        let stm = tinystm::RbStm::<u64, u64>::new();
        let glb = seqrbt::RbGlobal::<u64, u64>::new();
        let mut model = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let expect = model.insert(k as u64, v as u64);
                    prop_assert_eq!(sl.insert(k as u64, v as u64), expect);
                    prop_assert_eq!(avl.insert(k as u64, v as u64), expect);
                    prop_assert_eq!(stm.insert(k as u64, v as u64), expect);
                    prop_assert_eq!(glb.insert(k as u64, v as u64), expect);
                }
                Op::Remove(k) => {
                    let expect = model.remove(&(k as u64));
                    prop_assert_eq!(sl.remove(&(k as u64)), expect);
                    prop_assert_eq!(avl.remove(&(k as u64)), expect);
                    prop_assert_eq!(stm.remove(&(k as u64)), expect);
                    prop_assert_eq!(glb.remove(&(k as u64)), expect);
                }
                Op::Get(k) => {
                    let expect = model.get(&(k as u64)).copied();
                    prop_assert_eq!(sl.get(&(k as u64)), expect);
                    prop_assert_eq!(avl.get(&(k as u64)), expect);
                    prop_assert_eq!(stm.get(&(k as u64)), expect);
                    prop_assert_eq!(glb.get(&(k as u64)), expect);
                }
                _ => {}
            }
        }
        avl.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// The sequential red-black tree keeps its invariants under any
    /// sequence (black-height equality, no red-red, BST order).
    #[test]
    fn seqrbt_invariants(ops in proptest::collection::vec(op_strategy(), 1..500)) {
        let mut t = seqrbt::RbTree::<u64, u64>::new();
        let mut model = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => { prop_assert_eq!(t.insert(k as u64, v as u64), model.insert(k as u64, v as u64)); }
                Op::Remove(k) => { prop_assert_eq!(t.remove(&(k as u64)), model.remove(&(k as u64))); }
                _ => {}
            }
        }
        t.check_invariants().map_err(TestCaseError::fail)?;
        prop_assert_eq!(t.collect(), model.into_iter().collect::<Vec<_>>());
    }
}
