//! A many-thread "service" over the sharded façade: worker threads drain
//! batched requests (lookups, upserts, deletes) against a
//! `ShardedMap` whose boundary table was *learned* from a sample of the
//! service's key distribution — the deployment shape `docs/SHARDING.md`
//! prescribes for skewed keyspaces.
//!
//! Each worker builds a request batch, then executes it through the
//! trait-level batched entry points: the façade sorts the batch, groups
//! it by shard, and hands each group whole to the shard's own batch
//! implementation — reads run under one amortized epoch pin per group,
//! writes take the chromatic sorted-bulk path with chunked pins.
//!
//! ```sh
//! cargo run --release --example sharded_service
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::{rngs::StdRng, Rng, SeedableRng};
use sharded::{ConcurrentMap, ShardedMap};

/// The service's key distribution is skewed: 80% of traffic hits a small
/// "hot" ID band, 20% a long sparse tail — uniform splitting of the raw
/// keyspace would route ~everything to shard 0.
fn sample_key(rng: &mut StdRng) -> u64 {
    if rng.gen_range(0..10) < 8 {
        rng.gen_range(0..100_000) // hot band
    } else {
        100_000 + rng.gen_range(0..1_000_000) * 1_000 // sparse tail
    }
}

fn main() {
    let workers = 8;
    // Suite-construction knobs (NBTREE_SHARDS here) arrive through the
    // typed config, parsed once at startup.
    let shards = workload::SuiteConfig::from_env().shards();
    let batch_size = 64;
    let run_for = Duration::from_millis(
        std::env::var("NBTREE_BENCH_SECS")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(|s| (s * 1000.0) as u64)
            .unwrap_or(1000),
    );

    // Learn split points from a traffic sample, then shard the chromatic
    // tree behind them.
    let mut rng = StdRng::seed_from_u64(7);
    let sample: Vec<u64> = (0..10_000).map(|_| sample_key(&mut rng)).collect();
    let map: Arc<ShardedMap<Box<dyn ConcurrentMap>>> =
        Arc::new(ShardedMap::from_sample(shards, &sample, |_| {
            workload::make_map("chromatic", &workload::SuiteConfig::default()).expect("registered")
        }));
    println!(
        "sharded service: {shards} chromatic shards, learned boundaries {:?}",
        map.boundaries()
    );

    // Prefill through one big batch per shard-count chunk.
    let prefill: Vec<(u64, u64)> = sample.iter().map(|&k| (k, k)).collect();
    map.insert_batch(&prefill);

    let stop = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    std::thread::scope(|s| {
        for w in 0..workers {
            let map = Arc::clone(&map);
            let stop = Arc::clone(&stop);
            let served = Arc::clone(&served);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + w);
                let mut reads = Vec::with_capacity(batch_size);
                let mut writes = Vec::with_capacity(batch_size / 4);
                let mut deletes = Vec::with_capacity(batch_size / 8);
                while !stop.load(Ordering::Relaxed) {
                    // A service tick: mostly reads, some upserts, few
                    // deletes — batched per kind.
                    reads.clear();
                    writes.clear();
                    deletes.clear();
                    for _ in 0..batch_size {
                        reads.push(sample_key(&mut rng));
                    }
                    for _ in 0..batch_size / 4 {
                        writes.push((sample_key(&mut rng), w));
                    }
                    for _ in 0..batch_size / 8 {
                        deletes.push(sample_key(&mut rng));
                    }
                    let hits = map.get_batch(&reads).iter().flatten().count();
                    map.insert_batch(&writes);
                    map.remove_batch(&deletes);
                    std::hint::black_box(hits);
                    served.fetch_add(
                        (reads.len() + writes.len() + deletes.len()) as u64,
                        Ordering::Relaxed,
                    );
                }
                // Going idle: release this worker's cached epoch pin.
                llxscx::guard_cache::flush();
            });
        }
        std::thread::sleep(run_for);
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = started.elapsed();
    let total = served.load(Ordering::Relaxed);

    println!(
        "served {total} requests from {workers} workers in {elapsed:.2?} \
         ({:.2} Mops/s)",
        total as f64 / elapsed.as_secs_f64() / 1e6
    );
    let sizes: Vec<usize> = map.shards().map(|s| s.len()).collect();
    println!("final size {} across shards {sizes:?}", map.len());
}
