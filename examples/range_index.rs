//! An ordered-index scenario: timestamps → event ids, queried by ordered
//! navigation (successor chains) and atomic window snapshots
//! (`ChromaticTree::range`) while writers append and expire entries
//! concurrently — the kind of ordered-dictionary use that hash maps cannot
//! serve and the paper's VLX-based queries (§5.5) target.
//!
//! Run with `cargo run --release --example range_index`.

use nbtree::ChromaticTree;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn main() {
    let index = Arc::new(ChromaticTree::<u64, u64>::new());
    let clock = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        // Writer: appends events at increasing timestamps, expires old ones.
        {
            let index = Arc::clone(&index);
            let clock = Arc::clone(&clock);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let t = clock.fetch_add(1, Ordering::Relaxed);
                    index.insert(t, t * 10);
                    if t > 10_000 {
                        index.remove(&(t - 10_000));
                    }
                }
            });
        }
        // Readers: scan a window with successor chains; the VLX-validated
        // successor guarantees each hop is an atomic adjacent-pair read.
        for _ in 0..2 {
            let index = Arc::clone(&index);
            let clock = Arc::clone(&clock);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut scanned = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let now = clock.load(Ordering::Relaxed);
                    let from = now.saturating_sub(100);
                    let mut cur = from;
                    let mut hops = 0;
                    while let Some((k, v)) = index.successor(&cur) {
                        assert_eq!(v, k * 10, "index maps t -> 10t");
                        assert!(k > cur, "successor strictly increases");
                        cur = k;
                        hops += 1;
                        if hops >= 32 {
                            break;
                        }
                    }
                    scanned += hops;
                }
                println!("reader scanned {scanned} window entries");
            });
        }
        // Snapshot reader: one VLX-validated range() per window — the whole
        // window is a single atomic snapshot, so timestamps are contiguous
        // up to the expiry frontier and values are consistent.
        {
            let index = Arc::clone(&index);
            let clock = Arc::clone(&clock);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut windows = 0u64;
                let mut entries = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let now = clock.load(Ordering::Relaxed);
                    let from = now.saturating_sub(100);
                    let snap = index.range(from..=now);
                    for w in snap.windows(2) {
                        assert!(w[0].0 < w[1].0, "snapshot sorted");
                    }
                    for (k, v) in &snap {
                        assert_eq!(*v, k * 10, "index maps t -> 10t");
                    }
                    windows += 1;
                    entries += snap.len() as u64;
                }
                println!("snapshot reader took {windows} windows ({entries} entries)");
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(800));
        stop.store(true, Ordering::Relaxed);
    });

    let report = index.audit();
    println!(
        "final index: {} keys, height {}, oldest {:?}, newest {:?}",
        report.keys,
        report.height,
        index.first().map(|kv| kv.0),
        index.last().map(|kv| kv.0)
    );
    assert!(report.is_valid());
}
