//! Mini-shootout across every structure in the suite on one workload cell
//! (the 20i-10d moderate-contention mix), printing a Figure-8-style row.
//!
//! Run with `cargo run --release --example shootout`.

use std::time::Duration;
use workload::{measure, Mix, SuiteConfig, ALL_MAPS};

fn main() {
    let mix = Mix::updates(20, 10);
    let range = 10_000;
    let cfg = SuiteConfig::from_env().for_key_range(range);
    let threads = std::thread::available_parallelism()
        .map(|x| x.get())
        .unwrap_or(4);
    println!("20i-10d, key range [0,{range}), {threads} threads, 0.5s per structure:");
    for name in ALL_MAPS {
        let (mops, _) = measure(
            name,
            &cfg,
            threads,
            mix,
            range,
            Duration::from_millis(500),
            1,
            42,
        );
        println!("  {name:<12} {mops:>8.3} Mops/s");
    }
}
