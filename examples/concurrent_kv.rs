//! A concurrent key-value workload in the style of the paper's evaluation:
//! mixed readers and writers over a shared dictionary, with throughput and
//! structural statistics reported — the "moderate contention" scenario the
//! paper's introduction motivates (session stores, runtime indexes).
//!
//! Run with `cargo run --release --example concurrent_kv`.

use nbtree::ChromaticTree;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let tree = Arc::new(ChromaticTree::with_allowed_violations(6)); // "Chromatic6"
    let range = 100_000u64;

    // Prefill to steady state (half the key range).
    let mut rng = StdRng::seed_from_u64(1);
    let mut n = 0;
    while n < range / 2 {
        let k = rng.gen_range(0..range);
        if tree.insert(k, k).is_none() {
            n += 1;
        }
    }

    let threads = std::thread::available_parallelism()
        .map(|x| x.get())
        .unwrap_or(4);
    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..threads {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            let ops = Arc::clone(&ops);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(tid as u64);
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let k = rng.gen_range(0..range);
                    match rng.gen_range(0..10) {
                        0..=1 => {
                            tree.insert(k, k);
                        }
                        2 => {
                            tree.remove(&k);
                        }
                        _ => {
                            tree.get(&k);
                        }
                    }
                    local += 1;
                }
                ops.fetch_add(local, Ordering::Relaxed);
            });
        }
        std::thread::sleep(Duration::from_secs(1));
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = started.elapsed();
    let total = ops.load(Ordering::Relaxed);
    println!(
        "{} threads, {:.2} Mops/s ({} ops in {:?})",
        threads,
        total as f64 / elapsed.as_secs_f64() / 1e6,
        total,
        elapsed
    );
    let stats = tree.stats();
    println!(
        "rebalancing steps: {} ({:.4}/op), cleanup passes: {}, retries: {}+{}",
        stats.total_steps(),
        stats.total_steps() as f64 / total as f64,
        stats.cleanup_passes(),
        stats.insert_retries(),
        stats.delete_retries()
    );
    let report = tree.audit();
    println!(
        "final: {} keys, height {}, {} residual violations (k = 6 tolerates them)",
        report.keys,
        report.height,
        report.violations()
    );
}
