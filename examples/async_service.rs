//! The async batched front end, end to end: async client tasks on the
//! hand-rolled `service::exec::Pool` submit point ops to a
//! `BatchedService` over the chromatic tree and `await` their responses;
//! the service's flusher turns the concurrent trickle into
//! `insert_batch`/`remove_batch`/`get_batch` calls — the batch entry
//! points the PPoPP'14 structures amortize traversals and epoch pins
//! under — and the final stats show how large the manufactured batches
//! actually got.
//!
//! ```sh
//! cargo run --release --example async_service
//! ```

use std::sync::Arc;
use std::time::Duration;

use service::{exec, BatchedService, FlushPolicy, Op, ServiceConfig};

fn main() {
    let tasks: u64 = 16;
    let ops_per_task: u64 = 2_000;
    let keyspace: u64 = 8_192;

    // The service owns the map; clients only ever see response futures.
    let map = workload::make_map("chromatic", &workload::SuiteConfig::default())
        .expect("chromatic is registered");
    let svc = Arc::new(BatchedService::start(
        map,
        ServiceConfig::new(FlushPolicy::new(64, Duration::from_micros(200))),
    ));

    // Async clients: each task submits a stripe of inserts, reads a few
    // back, deletes every third key — awaiting each response through the
    // oneshot future. A completion oneshot per task lets main block
    // until all of them finish (the pool drops pending tasks on drop,
    // so join through channels, not timing).
    let pool = exec::Pool::new(4);
    let mut done = Vec::new();
    for t in 0..tasks {
        let svc = Arc::clone(&svc);
        let (tx, rx) = service::oneshot::channel::<u64>();
        done.push(rx);
        pool.spawn(async move {
            let base = t * keyspace;
            let mut hits = 0u64;
            for i in 0..ops_per_task {
                let k = base + (i * 37) % keyspace;
                svc.submit(Op::Insert(k, t)).expect("open").await;
                if i % 4 == 0 {
                    hits += svc.submit(Op::Get(k)).expect("open").await.is_some() as u64;
                }
                if i % 3 == 0 {
                    svc.submit(Op::Remove(k)).expect("open").await;
                }
            }
            tx.send(hits);
        });
    }
    let hits: u64 = done.into_iter().map(exec::block_on).sum();
    drop(pool);

    let mut svc = Arc::into_inner(svc).expect("all clients done");
    svc.shutdown();
    let stats = svc.stats();
    println!(
        "{} tasks x {} ops: {} submitted, {} completed, {} read-back hits",
        tasks, ops_per_task, stats.submitted, stats.completed, hits
    );
    println!(
        "{} flushes ({} size, {} deadline, {} drain), mean batch {:.1}, final size {}",
        stats.flushes,
        stats.size_flushes,
        stats.deadline_flushes,
        stats.drain_flushes,
        stats.batched_ops as f64 / stats.flushes.max(1) as f64,
        workload::ConcurrentMap::len(svc.map()),
    );
}
