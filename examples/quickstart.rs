//! Quickstart: the non-blocking chromatic tree as an ordered map.
//!
//! Run with `cargo run --release --example quickstart`.

use nbtree::ChromaticTree;
use std::sync::Arc;

fn main() {
    // A lock-free linearizable ordered dictionary (paper §5).
    let tree = Arc::new(ChromaticTree::new());

    tree.insert("apple", 3);
    tree.insert("banana", 7);
    tree.insert("cherry", 11);
    println!("banana -> {:?}", tree.get(&"banana"));
    println!("after apple comes {:?}", tree.successor(&"apple"));
    println!("before cherry comes {:?}", tree.predecessor(&"cherry"));

    // Shared freely across threads: every operation is lock-free.
    std::thread::scope(|s| {
        for tid in 0..4 {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                for i in 0..1000 {
                    let key: &'static str = Box::leak(format!("k{tid}-{i}").into_boxed_str());
                    tree.insert(key, i);
                }
            });
        }
    });
    println!("keys after concurrent inserts: {}", tree.len());

    // The structure is a valid chromatic tree at every quiescent point;
    // with the default policy it is an exact red-black tree.
    let report = tree.audit();
    println!(
        "height = {}, violations = {}, valid = {}",
        report.height,
        report.violations(),
        report.is_valid()
    );
}
