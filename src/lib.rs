//! Umbrella crate re-exporting the non-blocking tree suite.
//!
//! See the individual crates for documentation:
//! - [`llxscx`]: LLX/SCX/VLX primitives (the PODC'13 substrate)
//! - [`nbtree`]: tree update template + non-blocking chromatic tree (the paper's contribution)
//! - [`nbbst`], [`ravl`]: other trees built with the template
//! - [`nbskiplist`], [`seqrbt`], [`tinystm`], [`lockavl`]: experimental baselines
//! - [`hashmap`]: concurrent hopscotch hash map (the point-op tier)
//! - [`sharded`]: range-partitioned sharding façade with batched operations
//! - [`service`]: async batched request/response front end
//! - [`workload`]: benchmark harness
pub use hashmap;
pub use llxscx;
pub use lockavl;
pub use nbbst;
pub use nbskiplist;
pub use nbtree;
pub use ravl;
pub use seqrbt;
pub use service;
pub use sharded;
pub use tinystm;
pub use workload;
