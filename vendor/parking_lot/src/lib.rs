//! Non-poisoning locks, API-compatible with the subset of
//! [`parking_lot`](https://docs.rs/parking_lot) this workspace uses.
//!
//! This is a **vendored offline stand-in** (the build environment has no
//! crates.io access). It wraps the standard-library primitives and strips
//! lock poisoning — which is exactly the parking_lot behavior the callers
//! rely on: `lock()` / `read()` / `write()` return guards directly, and a
//! panicked holder does not wedge the lock.

#![warn(missing_docs)]

use std::fmt;
use std::sync::TryLockError;

/// A mutual-exclusion lock that does not poison.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Ignores poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock that does not poison.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Tries to acquire read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Tries to acquire write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1; // parking_lot semantics: not poisoned
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
