//! Pseudo-random number generation, API-compatible with the subset of
//! [`rand` 0.8](https://docs.rs/rand/0.8) this workspace uses.
//!
//! This is a **vendored offline stand-in** (the build environment has no
//! crates.io access): [`SeedableRng::seed_from_u64`], [`Rng::gen_range`]
//! over half-open integer ranges, [`Rng::gen_bool`], and the
//! [`rngs::StdRng`] / [`rngs::SmallRng`] types. The generators are
//! xoshiro256++ ([`rngs::StdRng`]) and SplitMix64 ([`rngs::SmallRng`]) —
//! different algorithms from the real crate (so seeded streams differ),
//! but the workspace only relies on determinism and uniformity, not on
//! matching the reference streams.

#![warn(missing_docs)]

use std::ops::Range;

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling conveniences over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from the half-open `range`.
    ///
    /// # Panics
    ///
    /// If the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// If `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 uniform mantissa bits, exactly like rand's `gen::<f64>() < p`.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Deterministically builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator from OS-provided entropy (here: the system
    /// clock and a per-call counter — sufficient for randomized level
    /// choices, not for cryptography).
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::time::{SystemTime, UNIX_EPOCH};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Self::seed_from_u64(nanos ^ COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed))
    }
}

/// SplitMix64: seeds the other generators and backs [`rngs::SmallRng`].
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The concrete generator types.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's general-purpose generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// A small, fast generator: SplitMix64.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }
}

/// Integer types that support uniform range sampling.
pub trait SampleUniform: Sized {
    /// Draws a uniform sample from `range` using `rng`.
    fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Uniform `u64` in `[0, n)` by rejection sampling (no modulo bias).
fn uniform_u64<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "empty range in gen_range");
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let x = rng.next_u64();
        if x <= zone {
            return x % n;
        }
    }
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = (range.end as u64) - (range.start as u64);
                range.start + uniform_u64(rng, span) as $t
            }
        }
    )*};
}
impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = (range.end as $u).wrapping_sub(range.start as $u) as u64;
                range.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_signed!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = a.gen_range(0..100u64);
            assert_eq!(x, b.gen_range(0..100u64));
            assert!(x < 100);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "suspicious coin: {heads}");
    }

    #[test]
    fn signed_ranges() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_range(-5..5i32);
            assert!((-5..5).contains(&x));
        }
    }
}
