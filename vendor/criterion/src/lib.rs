//! A wall-clock micro-benchmark harness, API-compatible with the subset of
//! [`criterion`](https://docs.rs/criterion) this workspace uses.
//!
//! This is a **vendored offline stand-in** (the build environment has no
//! crates.io access). It performs a warm-up, then timed sampling, and
//! prints mean ns/iteration per benchmark — no statistics beyond the mean,
//! no plots, no baseline comparison. The bench sources compile unchanged
//! against the real crate when it becomes available.

#![warn(missing_docs)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
    default_warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_measurement_time: Duration::from_millis(500),
            default_warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            warm_up_time: self.default_warm_up_time,
            _criterion: self,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let (sample_size, measurement_time, warm_up_time) = (
            self.default_sample_size,
            self.default_measurement_time,
            self.default_warm_up_time,
        );
        run_benchmark(&id.into().0, sample_size, measurement_time, warm_up_time, f);
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples to take.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time to spend measuring each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Time to spend warming up each benchmark before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        run_benchmark(
            &full,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            f,
        );
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (report flushing in real criterion; a no-op here).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    iters_per_sample: u64,
    total: Duration,
    total_iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly, timing each batch.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        self.total += start.elapsed();
        self.total_iters += self.iters_per_sample;
    }
}

fn run_benchmark<F>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // Warm-up: also calibrates how many iterations fit in one sample.
    let mut calib = Bencher {
        iters_per_sample: 1,
        total: Duration::ZERO,
        total_iters: 0,
    };
    let warm_start = Instant::now();
    while warm_start.elapsed() < warm_up_time {
        f(&mut calib);
        if calib.total_iters > u64::MAX / 4 {
            break;
        }
        calib.iters_per_sample = calib.iters_per_sample.saturating_mul(2);
    }
    let per_iter = if calib.total_iters > 0 && !calib.total.is_zero() {
        calib.total.as_secs_f64() / calib.total_iters as f64
    } else {
        1e-9
    };
    let budget = measurement_time.as_secs_f64() / sample_size.max(1) as f64;
    let iters = ((budget / per_iter) as u64).clamp(1, 1 << 40);

    let mut b = Bencher {
        iters_per_sample: iters,
        total: Duration::ZERO,
        total_iters: 0,
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    let mean_ns = if b.total_iters > 0 {
        b.total.as_nanos() as f64 / b.total_iters as f64
    } else {
        f64::NAN
    };
    println!(
        "{name:<50} {mean_ns:>12.1} ns/iter ({} iters)",
        b.total_iters
    );
}

/// Declares a group function running each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; ignore them.
            $( $group(); )+
        }
    };
}
