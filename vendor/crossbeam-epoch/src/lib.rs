//! Epoch-based memory reclamation, API-compatible with the subset of
//! [`crossbeam-epoch`](https://docs.rs/crossbeam-epoch) this workspace uses.
//!
//! This is a **vendored offline stand-in**: the build environment has no
//! access to crates.io, so the workspace ships a small, self-contained
//! implementation of the same interface. It can be deleted (together with
//! the `[workspace.dependencies]` path entries) the moment the real crate
//! is available; no source file outside `vendor/` names this crate as
//! anything other than `crossbeam_epoch`.
//!
//! # Algorithm
//!
//! The classic three-epoch scheme:
//!
//! * A global epoch counter advances only when every currently *pinned*
//!   participant has observed the current epoch.
//! * [`pin`] marks the calling thread as pinned at the global epoch and
//!   returns a [`Guard`]; loads performed under the guard may safely
//!   dereference pointers unlinked by other threads.
//! * [`Guard::defer_unchecked`] / [`Guard::defer_destroy`] queue a closure
//!   tagged with the current global epoch `e`; it runs once the global
//!   epoch reaches `e + 2`, at which point no thread that could have
//!   observed the retired pointer is still pinned.
//!
//! Atomics carry pointer *tags* in the alignment bits, exactly like the
//! real crate ([`Shared::tag`] / [`Shared::with_tag`]).
//!
//! Two fast paths keep the hot layers cheap:
//!
//! * **Nested pins** only touch a thread-local depth counter — no atomics.
//!   Amortized-pinning layers (e.g. `llxscx::guard_cache`) exploit this by
//!   holding one outer guard per thread so that per-operation pins become
//!   re-entries.
//! * **Deferred functions are batched thread-locally** (`DEFER_BATCH`
//!   entries) and appended to the global queue under a single lock
//!   acquisition, instead of locking per retirement. The batch is flushed
//!   on collection, on the periodic unpin-triggered pass, via
//!   [`flush_and_collect`], and by the thread-exit destructor.

#![warn(missing_docs)]

use std::cell::{Cell, RefCell};
use std::fmt;
use std::marker::PhantomData;
use std::mem;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A participant is not pinned.
const UNPINNED: usize = usize::MAX;
/// Run a garbage collection pass every this many unpins.
const COLLECT_INTERVAL: usize = 64;
/// Deferred functions are buffered thread-locally and pushed to the global
/// queue in batches of this size, so the hot path does not take the global
/// garbage lock on every retire.
const DEFER_BATCH: usize = 32;

struct Participant {
    /// The epoch this thread is pinned at, or [`UNPINNED`].
    epoch: AtomicUsize,
}

/// A queued deferred function. The closure is only run by the collector
/// after the epoch gap proves exclusive access, which is what makes the
/// (unsafe, caller-certified) cross-thread send sound.
struct Deferred(Box<dyn FnOnce()>);
unsafe impl Send for Deferred {}

struct Global {
    epoch: AtomicUsize,
    participants: Mutex<Vec<Arc<Participant>>>,
    garbage: Mutex<Vec<(usize, Deferred)>>,
    /// Lower bound on the retire epoch of everything in `garbage`
    /// (`usize::MAX` when empty). Lets `collect` skip the O(len) retain
    /// scan when nothing can be ripe — without it, a stalled epoch (e.g. a
    /// descheduled pinned thread on an oversubscribed host) makes every
    /// collection pass rescan an ever-growing queue quadratically.
    garbage_min_epoch: AtomicUsize,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        epoch: AtomicUsize::new(0),
        participants: Mutex::new(Vec::new()),
        garbage: Mutex::new(Vec::new()),
        garbage_min_epoch: AtomicUsize::new(usize::MAX),
    })
}

impl Global {
    /// Advances the global epoch if every pinned participant is current,
    /// pruning participants whose threads have exited.
    fn try_advance(&self) {
        let cur = self.epoch.load(Ordering::SeqCst);
        let mut parts = match self.participants.try_lock() {
            Ok(p) => p,
            Err(_) => return, // someone else is advancing
        };
        parts.retain(|p| Arc::strong_count(p) > 1 || p.epoch.load(Ordering::SeqCst) != UNPINNED);
        for p in parts.iter() {
            let e = p.epoch.load(Ordering::SeqCst);
            if e != UNPINNED && e != cur {
                return;
            }
        }
        let _ = self
            .epoch
            .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst);
    }

    /// Runs every deferred function whose tagged epoch is at least two
    /// epochs behind the global epoch.
    fn collect(&self) {
        self.try_advance();
        let cur = self.epoch.load(Ordering::SeqCst);
        // O(1) ripeness check: when even the oldest queued entry cannot run
        // yet, skip the scan entirely.
        if self
            .garbage_min_epoch
            .load(Ordering::SeqCst)
            .saturating_add(2)
            > cur
        {
            return;
        }
        let ready: Vec<Deferred> = {
            let mut garbage = match self.garbage.try_lock() {
                Ok(g) => g,
                Err(_) => return,
            };
            let mut ready = Vec::new();
            let mut min = usize::MAX;
            garbage.retain_mut(|(e, d)| {
                if *e + 2 <= cur {
                    ready.push(Deferred(mem::replace(&mut d.0, Box::new(|| ()))));
                    false
                } else {
                    min = min.min(*e);
                    true
                }
            });
            // Published under the garbage lock, like every other update.
            self.garbage_min_epoch.store(min, Ordering::SeqCst);
            ready
        };
        for d in ready {
            (d.0)();
        }
    }
}

struct LocalHandle {
    participant: Arc<Participant>,
    pin_depth: Cell<usize>,
    unpin_count: Cell<usize>,
    /// Locally buffered deferred functions (tagged with their retire
    /// epoch), flushed to the global queue in batches.
    deferred: RefCell<Vec<(usize, Deferred)>>,
}

impl LocalHandle {
    /// Moves the local deferred batch to the global queue under one lock.
    fn flush_deferred(&self) {
        let mut local = self.deferred.borrow_mut();
        if local.is_empty() {
            return;
        }
        let batch_min = local.iter().map(|(e, _)| *e).min().unwrap_or(usize::MAX);
        let g = global();
        let mut garbage = g.garbage.lock().unwrap();
        garbage.append(&mut local);
        let cur_min = g.garbage_min_epoch.load(Ordering::SeqCst);
        g.garbage_min_epoch
            .store(cur_min.min(batch_min), Ordering::SeqCst);
    }
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        // The thread exits: its buffered retirements must survive it.
        self.flush_deferred();
        self.participant.epoch.store(UNPINNED, Ordering::SeqCst);
    }
}

thread_local! {
    static LOCAL: LocalHandle = {
        let participant = Arc::new(Participant {
            epoch: AtomicUsize::new(UNPINNED),
        });
        global().participants.lock().unwrap().push(Arc::clone(&participant));
        LocalHandle {
            participant,
            pin_depth: Cell::new(0),
            unpin_count: Cell::new(0),
            deferred: RefCell::new(Vec::new()),
        }
    };
}

/// A witness that the current thread is pinned (or, for
/// [`unprotected`], a promise of exclusive access).
///
/// Shared pointers loaded under a guard remain valid until the guard is
/// dropped: deferred destruction waits out every guard pinned at retire
/// time.
pub struct Guard {
    /// `false` for the `unprotected()` guard, which defers nothing and
    /// runs deferred closures immediately.
    pinned: bool,
    _not_send: PhantomData<*mut ()>,
}

/// Pins the current thread and returns a [`Guard`].
///
/// Nested pins are cheap: only the outermost pin/unpin touches the global
/// epoch state.
#[inline]
pub fn pin() -> Guard {
    LOCAL.with(|local| {
        let depth = local.pin_depth.get();
        local.pin_depth.set(depth + 1);
        if depth == 0 {
            let g = global();
            // Publish our epoch, then re-check: a concurrent advance between
            // the load and the store would otherwise go unnoticed.
            loop {
                let e = g.epoch.load(Ordering::SeqCst);
                local.participant.epoch.store(e, Ordering::SeqCst);
                if g.epoch.load(Ordering::SeqCst) == e {
                    break;
                }
            }
        }
    });
    Guard {
        pinned: true,
        _not_send: PhantomData,
    }
}

/// Returns a dummy guard that does **not** pin the thread.
///
/// # Safety
///
/// The caller must guarantee no other thread can access the data protected
/// by this guard (e.g. inside `Drop` of the owning structure). Deferred
/// functions run immediately.
pub unsafe fn unprotected() -> &'static Guard {
    struct SyncGuard(Guard);
    // SAFETY: the unprotected guard carries no thread-local state; its only
    // method behavior is "run deferred functions immediately".
    unsafe impl Sync for SyncGuard {}
    static UNPROTECTED: SyncGuard = SyncGuard(Guard {
        pinned: false,
        _not_send: PhantomData,
    });
    &UNPROTECTED.0
}

impl Guard {
    /// Defers `f` until no thread pinned at or before the current epoch
    /// remains pinned.
    ///
    /// # Safety
    ///
    /// `f` must be safe to call from another thread once the epoch gap has
    /// passed (the usual use is freeing memory unlinked before this call).
    pub unsafe fn defer_unchecked<F: FnOnce() + 'static>(&self, f: F) {
        if !self.pinned {
            f();
            return;
        }
        let g = global();
        let e = g.epoch.load(Ordering::SeqCst);
        // Buffer locally; the global garbage lock is only taken once per
        // DEFER_BATCH retirements (or at unpin/flush/thread-exit).
        let mut entry = Some((e, Deferred(Box::new(f))));
        let buffered = LOCAL.try_with(|local| {
            // `try_borrow_mut` guards against re-entrant defers from a
            // deferred closure running inside a flush.
            if let Ok(mut buf) = local.deferred.try_borrow_mut() {
                buf.push(entry.take().expect("entry consumed twice"));
                buf.len()
            } else {
                0
            }
        });
        match (buffered, entry) {
            // Batch full: hand the whole buffer to the global queue.
            (Ok(n), None) if n >= DEFER_BATCH => {
                let _ = LOCAL.try_with(|local| local.flush_deferred());
            }
            (_, Some(entry)) => {
                // TLS torn down or buffer busy: push directly.
                let mut garbage = g.garbage.lock().unwrap();
                garbage.push(entry);
                let cur_min = g.garbage_min_epoch.load(Ordering::SeqCst);
                g.garbage_min_epoch.store(cur_min.min(e), Ordering::SeqCst);
            }
            _ => {}
        }
    }

    /// Defers dropping the heap allocation behind `ptr`.
    ///
    /// # Safety
    ///
    /// `ptr` must have been allocated via `Owned`/`Box` and must be
    /// unreachable to threads that pin after this call; it must be retired
    /// exactly once.
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
        unsafe fn dropper<T>(raw: usize) {
            drop(Box::from_raw(raw as *mut T));
        }
        // Erase `T` through a fn pointer so the deferred closure is
        // `'static` regardless of `T`'s bounds.
        let f: unsafe fn(usize) = dropper::<T>;
        let raw = ptr.as_raw() as usize;
        self.defer_unchecked(move || unsafe { f(raw) });
    }

    /// Runs a collection cycle, executing any deferred functions whose
    /// epoch gap has passed. Flushes the calling thread's deferred batch
    /// first so its own retirements are eligible.
    pub fn flush(&self) {
        flush_and_collect();
    }
}

/// Flushes the calling thread's deferred batch to the global queue and
/// runs a collection cycle. The standalone form of [`Guard::flush`] used
/// by amortized-pinning layers that collect *between* cached pins.
pub fn flush_and_collect() {
    let _ = LOCAL.try_with(|local| local.flush_deferred());
    global().collect();
}

impl Drop for Guard {
    fn drop(&mut self) {
        if !self.pinned {
            return;
        }
        // `try_with`: a guard cached in another thread-local may be dropped
        // after LOCAL's destructor already ran; the participant was then
        // unpinned (and the batch flushed) by `LocalHandle::drop` itself.
        let _ = LOCAL.try_with(|local| {
            let depth = local.pin_depth.get() - 1;
            local.pin_depth.set(depth);
            if depth == 0 {
                local.participant.epoch.store(UNPINNED, Ordering::SeqCst);
                let n = local.unpin_count.get() + 1;
                local.unpin_count.set(n);
                if n % COLLECT_INTERVAL == 0 {
                    local.flush_deferred();
                    global().collect();
                }
            }
        });
    }
}

/// Mask of the pointer bits available for tags: the low bits guaranteed
/// zero by `T`'s alignment.
fn low_bits<T>() -> usize {
    mem::align_of::<T>() - 1
}

fn decompose<T>(data: usize) -> (*const T, usize) {
    (
        (data & !low_bits::<T>()) as *const T,
        data & low_bits::<T>(),
    )
}

/// Types that can be converted into a tagged pointer word and back; the
/// bound on [`Atomic::store`] and [`Atomic::compare_exchange`] new values.
pub trait Pointer<T> {
    /// Consumes `self`, returning the tagged pointer word.
    fn into_usize(self) -> usize;
    /// Rebuilds `Self` from a tagged pointer word.
    ///
    /// # Safety
    ///
    /// `data` must have come from `into_usize` of the same `Self` type and
    /// ownership must transfer (for `Owned`, exactly one reconstruction).
    unsafe fn from_usize(data: usize) -> Self;
}

/// An atomic, taggable pointer to `T`, the links out of which lock-free
/// structures are built.
pub struct Atomic<T> {
    data: AtomicUsize,
    _marker: PhantomData<*mut T>,
}

unsafe impl<T: Send + Sync> Send for Atomic<T> {}
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// A null pointer.
    pub fn null() -> Self {
        Atomic {
            data: AtomicUsize::new(0),
            _marker: PhantomData,
        }
    }

    /// Allocates `value` on the heap and points at it.
    pub fn new(value: T) -> Self {
        Self::from(Owned::new(value))
    }

    /// Loads the current (tagged) pointer.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            data: self.data.load(ord),
            _marker: PhantomData,
        }
    }

    /// Stores a new (tagged) pointer.
    pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
        self.data.store(new.into_usize(), ord);
    }

    /// Single-word CAS. On failure the error carries both the value
    /// actually found and ownership of the attempted new value.
    pub fn compare_exchange<'g, P: Pointer<T>>(
        &self,
        current: Shared<'_, T>,
        new: P,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
        let new_data = new.into_usize();
        match self
            .data
            .compare_exchange(current.data, new_data, success, failure)
        {
            Ok(_) => Ok(Shared {
                data: new_data,
                _marker: PhantomData,
            }),
            Err(found) => Err(CompareExchangeError {
                current: Shared {
                    data: found,
                    _marker: PhantomData,
                },
                // SAFETY: round-trip of the `new` we just consumed; the CAS
                // failed so ownership never transferred to the atomic.
                new: unsafe { P::from_usize(new_data) },
            }),
        }
    }
}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T> From<Owned<T>> for Atomic<T> {
    fn from(owned: Owned<T>) -> Self {
        Atomic {
            data: AtomicUsize::new(owned.into_usize()),
            _marker: PhantomData,
        }
    }
}

impl<T> fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (raw, tag) = decompose::<T>(self.data.load(Ordering::SeqCst));
        f.debug_struct("Atomic")
            .field("raw", &raw)
            .field("tag", &tag)
            .finish()
    }
}

/// The error returned by a failed [`Atomic::compare_exchange`].
pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
    /// The value the atomic actually held.
    pub current: Shared<'g, T>,
    /// Ownership of the proposed new value, handed back to the caller.
    pub new: P,
}

/// An owned heap allocation, the `Box` of this crate.
pub struct Owned<T> {
    data: usize,
    _marker: PhantomData<Box<T>>,
}

impl<T> Owned<T> {
    /// Allocates `value` on the heap.
    pub fn new(value: T) -> Self {
        Owned {
            data: Box::into_raw(Box::new(value)) as usize,
            _marker: PhantomData,
        }
    }

    /// Converts into a [`Shared`], transferring the allocation to the
    /// epoch-managed heap.
    pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            data: self.into_usize(),
            _marker: PhantomData,
        }
    }

    /// Converts back into a `Box`.
    pub fn into_box(self) -> Box<T> {
        let (raw, _) = decompose::<T>(self.into_usize());
        // SAFETY: `Owned` always holds a unique Box allocation.
        unsafe { Box::from_raw(raw as *mut T) }
    }

    /// Returns the same allocation with the tag bits set to `tag`.
    pub fn with_tag(self, tag: usize) -> Self {
        let data = self.into_usize();
        Owned {
            data: (data & !low_bits::<T>()) | (tag & low_bits::<T>()),
            _marker: PhantomData,
        }
    }
}

impl<T> Pointer<T> for Owned<T> {
    fn into_usize(self) -> usize {
        let data = self.data;
        mem::forget(self);
        data
    }
    unsafe fn from_usize(data: usize) -> Self {
        Owned {
            data,
            _marker: PhantomData,
        }
    }
}

impl<T> Deref for Owned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        let (raw, _) = decompose::<T>(self.data);
        // SAFETY: `Owned` holds a live unique allocation.
        unsafe { &*raw }
    }
}

impl<T> DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        let (raw, _) = decompose::<T>(self.data);
        // SAFETY: `Owned` holds a live unique allocation.
        unsafe { &mut *(raw as *mut T) }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        let (raw, _) = decompose::<T>(self.data);
        // SAFETY: `Owned` holds a live unique allocation.
        unsafe { drop(Box::from_raw(raw as *mut T)) }
    }
}

impl<T: fmt::Debug> fmt::Debug for Owned<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A tagged shared pointer valid for the lifetime of a [`Guard`].
pub struct Shared<'g, T> {
    data: usize,
    _marker: PhantomData<(&'g (), *const T)>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null pointer (tag 0).
    pub fn null() -> Self {
        Shared {
            data: 0,
            _marker: PhantomData,
        }
    }

    /// Whether the pointer part (ignoring the tag) is null.
    pub fn is_null(&self) -> bool {
        decompose::<T>(self.data).0.is_null()
    }

    /// The raw pointer with the tag stripped.
    pub fn as_raw(&self) -> *const T {
        decompose::<T>(self.data).0
    }

    /// Dereferences the pointer.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and the pointee alive for `'g` (which
    /// epoch reclamation guarantees for pointers loaded under the guard).
    pub unsafe fn deref(&self) -> &'g T {
        &*self.as_raw()
    }

    /// `Some(&T)` unless null.
    ///
    /// # Safety
    ///
    /// As for [`deref`](Self::deref).
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        self.as_raw().as_ref()
    }

    /// Reclaims ownership of the allocation.
    ///
    /// # Safety
    ///
    /// The caller must have unique access; no other thread may reach this
    /// pointer any more.
    pub unsafe fn into_owned(self) -> Owned<T> {
        debug_assert!(!self.is_null(), "into_owned on a null Shared");
        Owned {
            data: self.data,
            _marker: PhantomData,
        }
    }

    /// The tag stored in the alignment bits.
    pub fn tag(&self) -> usize {
        decompose::<T>(self.data).1
    }

    /// The same pointer with the tag bits set to `tag`.
    pub fn with_tag(&self, tag: usize) -> Shared<'g, T> {
        Shared {
            data: (self.data & !low_bits::<T>()) | (tag & low_bits::<T>()),
            _marker: PhantomData,
        }
    }
}

impl<T> Pointer<T> for Shared<'_, T> {
    fn into_usize(self) -> usize {
        self.data
    }
    unsafe fn from_usize(data: usize) -> Self {
        Shared {
            data,
            _marker: PhantomData,
        }
    }
}

impl<T> From<*const T> for Shared<'_, T> {
    fn from(raw: *const T) -> Self {
        Shared {
            data: raw as usize,
            _marker: PhantomData,
        }
    }
}

impl<T> PartialEq for Shared<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}
impl<T> Eq for Shared<'_, T> {}

impl<T> fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (raw, tag) = decompose::<T>(self.data);
        f.debug_struct("Shared")
            .field("raw", &raw)
            .field("tag", &tag)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip() {
        let guard = &pin();
        let p = Owned::new(42u64).into_shared(guard);
        assert_eq!(p.tag(), 0);
        let t = p.with_tag(1);
        assert_eq!(t.tag(), 1);
        assert_eq!(t.as_raw(), p.as_raw());
        assert_eq!(unsafe { *t.deref() }, 42);
        unsafe { drop(p.into_owned()) };
    }

    #[test]
    fn cas_failure_returns_ownership() {
        let guard = &pin();
        let a = Atomic::new(1u64);
        let cur = a.load(Ordering::SeqCst, guard);
        let stale = Shared::null();
        let attempt = Owned::new(2u64);
        let err = a
            .compare_exchange(stale, attempt, Ordering::SeqCst, Ordering::SeqCst, guard)
            .unwrap_err();
        assert_eq!(err.current, cur);
        drop(err.new); // ownership came back; no leak, no double free
        unsafe { drop(a.load(Ordering::SeqCst, guard).into_owned()) };
    }

    #[test]
    fn deferred_destruction_runs() {
        use std::sync::atomic::AtomicBool;
        static RAN: AtomicBool = AtomicBool::new(false);
        {
            let guard = pin();
            unsafe { guard.defer_unchecked(|| RAN.store(true, Ordering::SeqCst)) };
        }
        // Repeated pin/unpin cycles advance the epoch and run the closure.
        for _ in 0..COLLECT_INTERVAL * 4 {
            pin().flush();
        }
        assert!(RAN.load(Ordering::SeqCst));
    }
}
