//! The [`Arbitrary`] trait and [`any`].

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, RngCore};
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates a uniform value of the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy generating any value of `T`; see [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`: uniform over the whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_bool(0.5)
    }
}
