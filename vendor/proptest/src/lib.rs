//! Property-based testing, API-compatible with the subset of
//! [`proptest`](https://docs.rs/proptest) this workspace uses.
//!
//! This is a **vendored offline stand-in** (the build environment has no
//! crates.io access). It supports the [`proptest!`] macro with a
//! `#![proptest_config(..)]` header, [`prop_oneof!`], `prop_map`, tuple
//! strategies, [`arbitrary::any`], [`collection::vec`], and the
//! `prop_assert*` macros. Failing inputs are reported via `Debug`; there
//! is **no shrinking** — a failure prints the raw generated case.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy) { .. }` becomes
/// a `#[test]` (the attribute is written by the caller and passed through)
/// that runs the body against `Config::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@body ($config) $($rest)*);
    };
    (
        @body ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($arg:ident in $strategy:expr) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                $crate::test_runner::run(
                    &config,
                    stringify!($name),
                    &($strategy),
                    |$arg| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@body ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// A strategy choosing uniformly among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(::std::boxed::Box::new($strategy)
                as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// Asserts a condition inside a property test, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: `{:?}` == `{:?}`",
                    left,
                    right
                );
            }
        }
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left != *right,
                    "assertion failed: `{:?}` != `{:?}`",
                    left,
                    right
                );
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn tuples_and_maps(pair in (any::<u16>(), any::<u16>()).prop_map(|(a, b)| (a % 7, b))) {
            prop_assert!(pair.0 < 7);
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(any::<u8>(), 1..10)) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.len() < 10);
        }

        #[test]
        fn oneof_covers_arms(x in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(x == 1u8 || x == 2u8);
        }
    }

    #[test]
    fn failure_is_reported() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run(
                &ProptestConfig::with_cases(4),
                "always_fails",
                &any::<u8>(),
                |_| Err(TestCaseError::fail("nope")),
            );
        });
        assert!(result.is_err());
    }
}
