//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng;

/// A generator of test-case values.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy just produces a value from a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategies behind references generate what the referent generates.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Chooses uniformly among boxed strategies; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Wraps the given arms. Panics if empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident / $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
