//! Strategies for collections.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A strategy producing `Vec`s of `element` with a length drawn uniformly
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(
        size.start < size.end,
        "empty size range for collection::vec"
    );
    VecStrategy { element, size }
}

/// The result of [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
