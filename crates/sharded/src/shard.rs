//! The range-partitioned façade: a boundary table routing to per-shard
//! map instances, plus sorted-and-grouped batched entry points.

use crate::map::ConcurrentMap;

/// A range-partitioned façade over `S` independent map instances.
///
/// The keyspace is split by a *boundary table* of `S - 1` sorted split
/// points: shard `i` owns keys in `[boundaries[i-1], boundaries[i])`
/// (shard 0 from the smallest key, the last shard to `u64::MAX`). `S` is
/// a power of two. Because the boundary table is immutable after
/// construction, routing is a wait-free binary search that never
/// synchronizes with other threads — all synchronization happens inside
/// the shard the operation lands on, where contention is `1/S`-th of the
/// unsharded structure's.
///
/// # Consistency scope
///
/// Point operations (`insert` / `remove` / `get`) are exactly as
/// consistent as the underlying shard type: each key maps to one shard,
/// so per-key linearizability of the shard is per-key linearizability of
/// the façade. `range` stitches the per-shard scans together in shard
/// order: each *shard's* slice of the result is an atomic snapshot (when
/// the shard's own `range` is atomic, as for the VLX-validated trees),
/// but slices from different shards may reflect different instants — the
/// same "per-key/per-segment linearizable, not globally atomic" scope the
/// suite's skip list documents for its scans. Callers that need an
/// atomic scan across a boundary must keep the interval inside one shard
/// (see [`ShardedMap::shard_of`]) or use an unsharded structure.
///
/// # Batched operations
///
/// The façade overrides the trait-level
/// [`insert_batch`](ConcurrentMap::insert_batch),
/// [`remove_batch`](ConcurrentMap::remove_batch) and
/// [`get_batch`](ConcurrentMap::get_batch): a batch is sorted and grouped
/// by shard, and each group runs whole through the **shard's own** batch
/// entry point — so a shard type with a native bulk path (the chromatic
/// tree's sorted-bulk insert with its chunked weighted epoch pins,
/// `llxscx::guard_cache::with_guard_weighted`) gets the entire group to
/// amortize over. Batches are *not* atomic: each element linearizes
/// individually, in ascending key order per shard (elements with equal
/// keys keep their batch order).
///
/// # Example
///
/// Any [`ConcurrentMap`] can be sharded — here a locked `BTreeMap`:
///
/// ```
/// use sharded::{ConcurrentMap, ShardedMap};
/// use std::collections::BTreeMap;
/// use std::sync::Mutex;
///
/// #[derive(Default)]
/// struct Locked(Mutex<BTreeMap<u64, u64>>);
///
/// impl ConcurrentMap for Locked {
///     fn name(&self) -> &'static str { "locked" }
///     fn insert(&self, k: u64, v: u64) -> Option<u64> { self.0.lock().unwrap().insert(k, v) }
///     fn remove(&self, k: &u64) -> Option<u64> { self.0.lock().unwrap().remove(k) }
///     fn get(&self, k: &u64) -> Option<u64> { self.0.lock().unwrap().get(k).copied() }
///     fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
///         self.0.lock().unwrap().range(lo..=hi).map(|(k, v)| (*k, *v)).collect()
///     }
///     fn len(&self) -> usize { self.0.lock().unwrap().len() }
/// }
///
/// // Four shards, keyspace [0, 400) split uniformly: [0,100), [100,200), ...
/// let map = ShardedMap::with_span(4, 400, |_| Locked::default());
/// assert_eq!(map.shard_of(99), 0);
/// assert_eq!(map.shard_of(100), 1);
///
/// // Point ops route by the boundary table; batches group by shard.
/// let displaced = map.insert_batch(&[(1, 10), (150, 20), (399, 30)]);
/// assert_eq!(displaced, vec![None, None, None]);
/// assert_eq!(map.get(&150), Some(20));
///
/// // A cross-shard scan stitches the per-shard slices in key order.
/// assert_eq!(map.range(0, 400), vec![(1, 10), (150, 20), (399, 30)]);
/// ```
pub struct ShardedMap<M> {
    shards: Box<[M]>,
    /// `shards.len() - 1` sorted split points; `boundaries[i]` is the
    /// smallest key owned by shard `i + 1`.
    boundaries: Box<[u64]>,
    /// Registry name reported by [`ConcurrentMap::name`]; `"sharded"`
    /// unless overridden with [`named`](Self::named). Heterogeneous
    /// compositions (the `"hybrid"` registry entry, a façade over
    /// hash+tree shards) need their own name in figures and oracles.
    name: &'static str,
}

impl<M> ShardedMap<M> {
    /// Builds a façade from an explicit boundary table. `boundaries` must
    /// be strictly increasing and imply a power-of-two shard count
    /// (`boundaries.len() + 1`); `factory(i)` builds shard `i`.
    ///
    /// # Panics
    ///
    /// If the shard count is not a power of two or the boundaries are not
    /// strictly increasing.
    pub fn with_boundaries(boundaries: Vec<u64>, mut factory: impl FnMut(usize) -> M) -> Self {
        let shards = boundaries.len() + 1;
        assert!(
            shards.is_power_of_two(),
            "shard count {shards} is not a power of two"
        );
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "boundary table is not strictly increasing: {boundaries:?}"
        );
        ShardedMap {
            shards: (0..shards).map(&mut factory).collect(),
            boundaries: boundaries.into_boxed_slice(),
            name: "sharded",
        }
    }

    /// Overrides the name this façade reports through
    /// [`ConcurrentMap::name`] (builder-style). Registry entries that
    /// compose the façade over something other than the default shard
    /// type — like `"hybrid"` — use this so figures, oracles and error
    /// messages name the composition, not the plumbing.
    pub fn named(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    /// `shards` instances (a power of two) splitting the *full* `u64`
    /// keyspace uniformly.
    ///
    /// Keys drawn from a small interval all land in shard 0 under this
    /// table; use [`with_span`](Self::with_span) or
    /// [`from_sample`](Self::from_sample) when the key universe is known
    /// or sampled.
    pub fn new(shards: usize, factory: impl FnMut(usize) -> M) -> Self {
        assert!(
            shards.is_power_of_two(),
            "shard count {shards} is not a power of two"
        );
        let shift = 64 - shards.trailing_zeros();
        let boundaries = (1..shards as u64).map(|i| i << shift).collect();
        Self::with_boundaries(boundaries, factory)
    }

    /// `shards` instances (a power of two) splitting `[0, span)`
    /// uniformly; keys at or above `span` land in the last shard.
    ///
    /// # Panics
    ///
    /// If `span < shards as u64` (the table could not be strictly
    /// increasing) or `shards` is not a power of two.
    pub fn with_span(shards: usize, span: u64, factory: impl FnMut(usize) -> M) -> Self {
        assert!(
            span >= shards as u64,
            "span {span} cannot be split into {shards} non-empty shards"
        );
        let boundaries = (1..shards as u64)
            .map(|i| ((i as u128 * span as u128) / shards as u128) as u64)
            .collect();
        Self::with_boundaries(boundaries, factory)
    }

    /// Learned split points: boundaries are the `1/S .. (S-1)/S` quantiles
    /// of `sample` (e.g. the keys a service expects to store, or the
    /// prefill sample of a benchmark), so each shard receives an equal
    /// share of the *observed* distribution rather than of the raw
    /// keyspace. Falls back to [`new`](Self::new)'s uniform table when the
    /// sample has fewer than `shards` distinct keys.
    pub fn from_sample(shards: usize, sample: &[u64], factory: impl FnMut(usize) -> M) -> Self {
        let mut distinct = sample.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        if distinct.len() < shards {
            return Self::new(shards, factory);
        }
        // Quantile positions are strictly increasing (consecutive indices
        // differ by ⌊len/S⌋ ≥ 1) into a strictly increasing array, so the
        // boundary table is strictly increasing by construction.
        let boundaries = (1..shards)
            .map(|j| distinct[j * distinct.len() / shards])
            .collect();
        Self::with_boundaries(boundaries, factory)
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The boundary table: `boundaries()[i]` is the smallest key of shard
    /// `i + 1`.
    pub fn boundaries(&self) -> &[u64] {
        &self.boundaries
    }

    /// Index of the shard owning `k`: a wait-free search of the immutable
    /// boundary table.
    ///
    /// For the shard counts the suite actually deploys (≤ 16 shards, so
    /// ≤ 15 boundaries) a branchless linear count beats binary search:
    /// the comparisons pipeline with no data-dependent branches, where
    /// `partition_point` takes a misprediction per probe on random keys.
    /// Both forms compute the number of boundaries ≤ `k`, which on a
    /// strictly increasing table is the same index.
    #[inline]
    pub fn shard_of(&self, k: u64) -> usize {
        if self.boundaries.len() <= 16 {
            self.boundaries.iter().map(|&b| usize::from(b <= k)).sum()
        } else {
            self.boundaries.partition_point(|&b| b <= k)
        }
    }

    /// The shard instance at `idx` (for per-shard inspection — stats,
    /// audits, targeted stress).
    pub fn shard(&self, idx: usize) -> &M {
        &self.shards[idx]
    }

    /// Iterates the shards in key order.
    pub fn shards(&self) -> impl Iterator<Item = &M> {
        self.shards.iter()
    }
}

impl<M: ConcurrentMap> ShardedMap<M> {
    /// Shared batch plumbing behind the trait-level
    /// [`insert_batch`](ConcurrentMap::insert_batch) /
    /// [`remove_batch`](ConcurrentMap::remove_batch) /
    /// [`get_batch`](ConcurrentMap::get_batch) overrides: stable-sorts
    /// element indices by `(shard, key)`, gathers each same-shard run into
    /// a contiguous group (already in ascending key order, input-order
    /// ties), executes the whole group through the *shard's own* batch
    /// entry point, and scatters the per-element results back to input
    /// positions.
    ///
    /// Delegating the group (instead of looping point ops over it) is
    /// what stacks the two amortization levels: the façade contributes
    /// shard grouping, and a shard type with a real bulk path — the
    /// chromatic tree's sorted-bulk insert — contributes search-path
    /// prefix reuse and chunked weighted epoch pins on top. Pin
    /// management deliberately stays with the shard implementation: an
    /// earlier design held one façade-level pin across the whole group,
    /// and the resulting batch-long reclamation stall (a garbage wave of
    /// hundreds of nodes re-entering the allocator cold at the group
    /// boundary) cost more than the saved pin traffic.
    fn run_grouped<T: Copy>(
        &self,
        batch: &[T],
        key_of: impl Fn(&T) -> u64,
        run: impl Fn(&M, &[T]) -> Vec<Option<u64>>,
    ) -> Vec<Option<u64>> {
        // Route every element exactly once (the sort below would otherwise
        // rerun the boundary-table binary search O(n log n) times through
        // its comparator, on the hot path batching exists to slim down).
        let mut order: Vec<(usize, u64, usize)> = batch
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let k = key_of(t);
                (self.shard_of(k), k, i)
            })
            .collect();
        // Stable sort on (shard, key): the index tiebreaker is implicit in
        // stability, so equal keys keep input order and duplicate-key
        // batches have deterministic (input-order) semantics.
        order.sort_by_key(|&(shard, k, _)| (shard, k));
        let mut out = vec![None; batch.len()];
        let mut group: Vec<T> = Vec::new();
        let mut start = 0;
        while start < order.len() {
            let shard_idx = order[start].0;
            let mut end = start + 1;
            while end < order.len() && order[end].0 == shard_idx {
                end += 1;
            }
            group.clear();
            group.extend(order[start..end].iter().map(|&(_, _, i)| batch[i]));
            let results = run(&self.shards[shard_idx], &group);
            // The trait contract: one result per element, in input order.
            // A shard impl that returns a short vector must fail loudly
            // here, not silently scatter `None` into the unpaired tail.
            assert_eq!(
                results.len(),
                end - start,
                "shard batch op returned {} results for {} elements",
                results.len(),
                end - start
            );
            for (&(_, _, i), r) in order[start..end].iter().zip(results) {
                out[i] = r;
            }
            start = end;
        }
        out
    }
}

impl<M: ConcurrentMap> ConcurrentMap for ShardedMap<M> {
    fn name(&self) -> &'static str {
        self.name
    }
    fn insert(&self, k: u64, v: u64) -> Option<u64> {
        self.shards[self.shard_of(k)].insert(k, v)
    }
    fn remove(&self, k: &u64) -> Option<u64> {
        self.shards[self.shard_of(*k)].remove(k)
    }
    fn get(&self, k: &u64) -> Option<u64> {
        self.shards[self.shard_of(*k)].get(k)
    }
    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        // Shards partition the keyspace in key order, so concatenating the
        // per-shard scans in shard order yields a sorted, duplicate-free
        // result. Atomicity scope: per shard, not across shards (see the
        // type-level docs).
        let mut out = Vec::new();
        if lo > hi {
            return out;
        }
        for idx in self.shard_of(lo)..=self.shard_of(hi) {
            out.extend(self.shards[idx].range(lo, hi));
        }
        out
    }
    fn range_tier(&self) -> crate::RangeTier {
        // Stitching per-shard scans weakens an atomic shard to
        // per-shard atomicity; an already-weaker shard tier passes
        // through unchanged (the façade can't strengthen it).
        match self.shards[0].range_tier() {
            crate::RangeTier::Atomic => crate::RangeTier::PerShardAtomic,
            tier => tier,
        }
    }
    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }
    fn insert_batch(&self, batch: &[(u64, u64)]) -> Vec<Option<u64>> {
        self.run_grouped(batch, |(k, _)| *k, |shard, group| shard.insert_batch(group))
    }
    fn remove_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        self.run_grouped(keys, |k| *k, |shard, group| shard.remove_batch(group))
    }
    fn get_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        self.run_grouped(keys, |k| *k, |shard, group| shard.get_batch(group))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    /// Test shard: a locked BTreeMap (sequentially exact, so the façade's
    /// routing/merging logic is isolated from tree concurrency).
    #[derive(Default)]
    struct Locked(Mutex<BTreeMap<u64, u64>>);

    impl ConcurrentMap for Locked {
        fn name(&self) -> &'static str {
            "locked"
        }
        fn insert(&self, k: u64, v: u64) -> Option<u64> {
            self.0.lock().unwrap().insert(k, v)
        }
        fn remove(&self, k: &u64) -> Option<u64> {
            self.0.lock().unwrap().remove(k)
        }
        fn get(&self, k: &u64) -> Option<u64> {
            self.0.lock().unwrap().get(k).copied()
        }
        fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
            self.0
                .lock()
                .unwrap()
                .range(lo..=hi)
                .map(|(k, v)| (*k, *v))
                .collect()
        }
        fn len(&self) -> usize {
            self.0.lock().unwrap().len()
        }
    }

    fn locked_shards(n: usize, span: u64) -> ShardedMap<Locked> {
        ShardedMap::with_span(n, span, |_| Locked::default())
    }

    #[test]
    fn uniform_span_boundaries_and_routing() {
        let m = locked_shards(4, 400);
        assert_eq!(m.boundaries(), &[100, 200, 300]);
        assert_eq!(m.shard_of(0), 0);
        assert_eq!(m.shard_of(99), 0);
        assert_eq!(m.shard_of(100), 1);
        assert_eq!(m.shard_of(399), 3);
        // Keys beyond the span still route (to the last shard).
        assert_eq!(m.shard_of(u64::MAX), 3);
    }

    #[test]
    fn full_keyspace_boundaries_are_shifted_powers() {
        let m: ShardedMap<Locked> = ShardedMap::new(2, |_| Locked::default());
        assert_eq!(m.boundaries(), &[1u64 << 63]);
        let m: ShardedMap<Locked> = ShardedMap::new(1, |_| Locked::default());
        assert_eq!(m.boundaries(), &[] as &[u64]);
        assert_eq!(m.shard_of(u64::MAX), 0);
    }

    #[test]
    fn learned_boundaries_equalize_a_skewed_sample() {
        // 75% of the sample in [0, 100), the rest spread to 1e6: uniform
        // splitting would put nearly everything in shard 0.
        let mut sample: Vec<u64> = (0..300).collect();
        sample.extend((0..100).map(|i| 10_000 + i * 9_900));
        let m = ShardedMap::from_sample(4, &sample, |_| Locked::default());
        for &k in &sample {
            m.insert(k, k);
        }
        let sizes: Vec<usize> = m.shards().map(|s| s.len()).collect();
        let (min, max) = (
            *sizes.iter().min().unwrap() as f64,
            *sizes.iter().max().unwrap() as f64,
        );
        assert!(
            max / min < 2.0,
            "learned split points left shards unbalanced: {sizes:?}"
        );
    }

    #[test]
    fn degenerate_sample_falls_back_to_uniform() {
        let m = ShardedMap::from_sample(4, &[7, 7, 7], |_| Locked::default());
        let uniform: ShardedMap<Locked> = ShardedMap::new(4, |_| Locked::default());
        assert_eq!(m.boundaries(), uniform.boundaries());
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn non_power_of_two_shard_count_is_rejected() {
        let _ = locked_shards(3, 300);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_boundaries_are_rejected() {
        let _: ShardedMap<Locked> =
            ShardedMap::with_boundaries(vec![5, 5, 9], |_| Locked::default());
    }

    #[test]
    fn point_ops_and_len_route_correctly() {
        let m = locked_shards(8, 800);
        for k in (0..800).step_by(7) {
            assert_eq!(m.insert(k, k * 2), None);
        }
        for k in (0..800).step_by(7) {
            assert_eq!(m.get(&k), Some(k * 2));
        }
        assert_eq!(m.len(), (0..800).step_by(7).count());
        assert!(!m.is_empty());
        assert_eq!(m.remove(&0), Some(0));
        assert_eq!(m.remove(&0), None);
        // Every inserted key landed in the shard the table names.
        for k in (7..800).step_by(7) {
            assert_eq!(m.shard(m.shard_of(k)).get(&k), Some(k * 2));
        }
    }

    #[test]
    fn cross_shard_range_is_sorted_and_complete() {
        let m = locked_shards(4, 400);
        for k in 0..400 {
            m.insert(k, k);
        }
        let got = m.range(50, 350);
        assert_eq!(got.len(), 301);
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(got.first(), Some(&(50, 50)));
        assert_eq!(got.last(), Some(&(350, 350)));
        // Inverted and empty windows.
        assert_eq!(m.range(10, 5), vec![]);
        let m2 = locked_shards(4, 400);
        assert_eq!(m2.range(0, 399), vec![]);
    }

    #[test]
    fn batches_match_sequential_application_in_input_order() {
        let m = locked_shards(4, 400);
        let model = Locked::default();
        // Duplicate keys in one batch: input order must be preserved.
        let batch = vec![(10, 1), (350, 2), (10, 3), (120, 4), (10, 5)];
        let got = m.insert_batch(&batch);
        let expect: Vec<_> = batch.iter().map(|&(k, v)| model.insert(k, v)).collect();
        assert_eq!(got, expect);
        assert_eq!(m.get(&10), Some(5), "last duplicate must win");

        let keys = vec![10, 11, 350, 120];
        assert_eq!(
            m.get_batch(&keys),
            keys.iter().map(|k| model.get(k)).collect::<Vec<_>>()
        );
        let removals = vec![10, 10, 350];
        assert_eq!(
            m.remove_batch(&removals),
            removals.iter().map(|k| model.remove(k)).collect::<Vec<_>>()
        );
        assert_eq!(m.len(), model.len());
    }

    #[test]
    fn empty_batches_are_noops() {
        let m = locked_shards(2, 100);
        assert_eq!(m.insert_batch(&[]), vec![]);
        assert_eq!(m.remove_batch(&[]), vec![]);
        assert_eq!(m.get_batch(&[]), vec![]);
    }
}
