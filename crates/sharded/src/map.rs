//! The object-safe `u64 → u64` concurrent-map interface shared by the
//! whole suite.
//!
//! The trait historically lived in the `workload` crate next to the
//! structure adapters; it moved down here so the sharding façade
//! ([`ShardedMap`](crate::ShardedMap)) can *implement* it without a
//! `workload ↔ sharded` dependency cycle. `workload` re-exports it under
//! the old path, so `workload::ConcurrentMap` keeps working.

/// Object-safe concurrent map interface used by the harness. Keys and
/// values are fixed to `u64` as in the paper's experiments.
pub trait ConcurrentMap: Send + Sync {
    /// Structure name as used in figures.
    fn name(&self) -> &'static str;
    /// Insert, returning the displaced value.
    fn insert(&self, k: u64, v: u64) -> Option<u64>;
    /// Remove, returning the removed value.
    fn remove(&self, k: &u64) -> Option<u64>;
    /// Lookup.
    fn get(&self, k: &u64) -> Option<u64>;
    /// Ordered scan of `[lo, hi]` (inclusive), sorted by key.
    ///
    /// Consistency is structure-dependent (and part of what the range
    /// workload measures): the template trees (`chromatic`, `nbbst`,
    /// `ravl`) return VLX-validated atomic snapshots, `lockavl` snapshots
    /// its persistent root, `rbstm` runs a read-only transaction and
    /// `rbglobal` holds the global lock; `skiplist` returns a non-atomic
    /// (per-key linearizable) scan, like `ConcurrentSkipListMap`, and
    /// `sharded` stitches per-shard atomic scans into a per-shard
    /// linearizable result (see the `sharded` crate docs).
    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)>;
    /// O(n) size snapshot.
    fn len(&self) -> usize;
    /// Whether the map holds no keys (same caveats as [`len`](Self::len)).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Boxed maps forward to their contents, so `ShardedMap<Box<dyn
/// ConcurrentMap>>` composes the façade over any registered structure.
impl<M: ConcurrentMap + ?Sized> ConcurrentMap for Box<M> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn insert(&self, k: u64, v: u64) -> Option<u64> {
        (**self).insert(k, v)
    }
    fn remove(&self, k: &u64) -> Option<u64> {
        (**self).remove(k)
    }
    fn get(&self, k: &u64) -> Option<u64> {
        (**self).get(k)
    }
    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        (**self).range(lo, hi)
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn is_empty(&self) -> bool {
        (**self).is_empty()
    }
}
