//! The object-safe `u64 → u64` concurrent-map interface shared by the
//! whole suite.
//!
//! The trait historically lived in the `workload` crate next to the
//! structure adapters; it moved down here so the sharding façade
//! ([`ShardedMap`](crate::ShardedMap)) can *implement* it without a
//! `workload ↔ sharded` dependency cycle. `workload` re-exports it under
//! the old path, so `workload::ConcurrentMap` keeps working.

/// How much atomicity a structure's [`range`](ConcurrentMap::range)
/// guarantees — the contract the model oracles are allowed to assert.
///
/// The suite long had exactly one implicit tier ("atomic snapshot"),
/// with the skip list grandfathered in by never being sequentially
/// distinguishable from one. Making the tier explicit lets
/// `workload::check_against_model` assert exactly what each structure
/// promises, so a new per-key-linearizable structure (the hash tier,
/// the hybrid shard) doesn't inherit a too-strong assertion it would
/// only pass by accident.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RangeTier {
    /// The scan is a single atomic snapshot (the VLX-validated trees,
    /// the lock- and STM-based baselines).
    Atomic,
    /// Each shard's slice of the scan is atomic, but slices from
    /// different shards may reflect different instants (the sharded
    /// façade over atomic shards).
    PerShardAtomic,
    /// Only per-key linearizable: sorted, duplicate-free, no phantoms,
    /// and no missed key that was present for the whole scan — but keys
    /// may be observed at different instants (skip list, hash map,
    /// hybrid).
    PerKeyLinearizable,
}

/// Object-safe concurrent map interface used by the harness. Keys and
/// values are fixed to `u64` as in the paper's experiments.
pub trait ConcurrentMap: Send + Sync {
    /// Structure name as used in figures.
    fn name(&self) -> &'static str;
    /// Insert, returning the displaced value.
    fn insert(&self, k: u64, v: u64) -> Option<u64>;
    /// Remove, returning the removed value.
    fn remove(&self, k: &u64) -> Option<u64>;
    /// Lookup.
    fn get(&self, k: &u64) -> Option<u64>;
    /// Ordered scan of `[lo, hi]` (inclusive), sorted by key.
    ///
    /// Consistency is structure-dependent (and part of what the range
    /// workload measures): the template trees (`chromatic`, `nbbst`,
    /// `ravl`) return VLX-validated atomic snapshots, `lockavl` snapshots
    /// its persistent root, `rbstm` runs a read-only transaction and
    /// `rbglobal` holds the global lock; `skiplist` returns a non-atomic
    /// (per-key linearizable) scan, like `ConcurrentSkipListMap`, and
    /// `sharded` stitches per-shard atomic scans into a per-shard
    /// linearizable result (see the `sharded` crate docs).
    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)>;
    /// The atomicity scope of [`range`](Self::range); what the model
    /// oracles may assert about a scan. Defaults to the **weakest** tier
    /// so a new structure must opt *in* to the strong assertion, never
    /// inherit it (see [`RangeTier`]).
    fn range_tier(&self) -> RangeTier {
        RangeTier::PerKeyLinearizable
    }
    /// O(n) size snapshot.
    fn len(&self) -> usize;
    /// Whether the map holds no keys (same caveats as [`len`](Self::len)).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a whole batch, returning the displaced value per element in
    /// input order.
    ///
    /// **Semantics (all implementations):** a batch is *not* a
    /// transaction. Each element linearizes individually, and the result
    /// vector is what sequential input-order application would return —
    /// in particular, duplicate keys behave as if inserted one at a time
    /// in batch order (the last duplicate wins). Implementations are free
    /// to reorder *execution* (the sharded façade groups by shard, the
    /// chromatic tree bulk-inserts in ascending key order) as long as the
    /// per-element results match input-order application; concurrent
    /// readers may observe a batch partially applied, in whatever order
    /// the implementation executes.
    ///
    /// The default implementation applies the batch one element at a
    /// time. Structures with a cheaper bulk path override it: the sharded
    /// façade runs each per-shard group under one amortized epoch pin,
    /// and the chromatic tree adds a sorted-bulk insert that reuses the
    /// shared search-path prefix between consecutive keys.
    fn insert_batch(&self, batch: &[(u64, u64)]) -> Vec<Option<u64>> {
        batch.iter().map(|&(k, v)| self.insert(k, v)).collect()
    }

    /// Removes a whole batch of keys, returning the removed value per key
    /// in input order. Semantics as in
    /// [`insert_batch`](Self::insert_batch): per-element linearization,
    /// results equal to sequential input-order application.
    fn remove_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        keys.iter().map(|k| self.remove(k)).collect()
    }

    /// Looks up a whole batch of keys, returning the value per key in
    /// input order. Semantics as in
    /// [`insert_batch`](Self::insert_batch).
    fn get_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        keys.iter().map(|k| self.get(k)).collect()
    }
}

/// Boxed maps forward to their contents, so `ShardedMap<Box<dyn
/// ConcurrentMap>>` composes the façade over any registered structure.
impl<M: ConcurrentMap + ?Sized> ConcurrentMap for Box<M> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn insert(&self, k: u64, v: u64) -> Option<u64> {
        (**self).insert(k, v)
    }
    fn remove(&self, k: &u64) -> Option<u64> {
        (**self).remove(k)
    }
    fn get(&self, k: &u64) -> Option<u64> {
        (**self).get(k)
    }
    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        (**self).range(lo, hi)
    }
    fn range_tier(&self) -> RangeTier {
        (**self).range_tier()
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn is_empty(&self) -> bool {
        (**self).is_empty()
    }
    // The batch methods have defaults, but a box must still forward them
    // explicitly — otherwise `Box<ChromaticShard>` would silently run the
    // per-element default instead of the tree's sorted-bulk override.
    fn insert_batch(&self, batch: &[(u64, u64)]) -> Vec<Option<u64>> {
        (**self).insert_batch(batch)
    }
    fn remove_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        (**self).remove_batch(keys)
    }
    fn get_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        (**self).get_batch(keys)
    }
}

/// `Arc`'d maps forward too: shared-ownership front ends (the batched
/// service, the harness's `all_maps`) hand the same structure to many
/// clients without re-boxing.
impl<M: ConcurrentMap + ?Sized> ConcurrentMap for std::sync::Arc<M> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn insert(&self, k: u64, v: u64) -> Option<u64> {
        (**self).insert(k, v)
    }
    fn remove(&self, k: &u64) -> Option<u64> {
        (**self).remove(k)
    }
    fn get(&self, k: &u64) -> Option<u64> {
        (**self).get(k)
    }
    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        (**self).range(lo, hi)
    }
    fn range_tier(&self) -> RangeTier {
        (**self).range_tier()
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn is_empty(&self) -> bool {
        (**self).is_empty()
    }
    // As for `Box`: forward the batch methods explicitly so structure
    // overrides are not shadowed by the per-element defaults.
    fn insert_batch(&self, batch: &[(u64, u64)]) -> Vec<Option<u64>> {
        (**self).insert_batch(batch)
    }
    fn remove_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        (**self).remove_batch(keys)
    }
    fn get_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        (**self).get_batch(keys)
    }
}
