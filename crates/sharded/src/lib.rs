//! # Range-partitioned sharding with batched operations
//!
//! The PPoPP'14 trees are presented as *building blocks* for larger
//! systems. This crate is the first such system layer in the suite: a
//! façade that splits the keyspace across `S` independent map instances
//! behind an immutable boundary table, so `S` mostly-disjoint working
//! sets stop contending on one root, one balancing scheme and one epoch
//! of garbage.
//!
//! Three pieces:
//!
//! * [`ConcurrentMap`] — the suite-wide object-safe map interface
//!   (relocated here from `workload`, which re-exports it, so the façade
//!   can implement the same trait it composes over).
//! * [`ShardedMap`] — the façade: power-of-two shard counts, uniform or
//!   *learned* split points ([`ShardedMap::from_sample`]), wait-free
//!   boundary-table routing, and cross-shard `range` stitching with a
//!   documented per-shard atomicity scope.
//! * Batched entry points ([`ShardedMap::insert_batch`] /
//!   [`remove_batch`](ShardedMap::remove_batch) /
//!   [`get_batch`](ShardedMap::get_batch)) — sort, group by shard, and
//!   execute each group under a single amortized epoch pin
//!   (`llxscx::guard_cache::with_guard_weighted`), turning per-operation
//!   pin traffic into per-batch traffic without starving reclamation.
//!
//! Shard counts come from the caller or from the `NBTREE_SHARDS`
//! environment override ([`shards_from_env`]). See `docs/SHARDING.md` in
//! the repository for the full design chapter.

#![warn(missing_docs)]

pub mod map;
pub mod shard;

pub use map::ConcurrentMap;
pub use shard::ShardedMap;

/// Shard count from the `NBTREE_SHARDS` environment variable, rounded up
/// to a power of two and clamped to `[1, 1024]`; `default` (also rounded)
/// when unset or unparsable.
///
/// The env override exists so benchmarks and services can re-shard a
/// deployment without a rebuild, mirroring the `NBTREE_BENCH_*` knob
/// family.
pub fn shards_from_env(default: usize) -> usize {
    std::env::var("NBTREE_SHARDS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .unwrap_or(default)
        .clamp(1, 1024)
        .next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_shards_round_to_power_of_two() {
        // The suite must not mutate the environment (tests share a
        // process), so only exercise the default/rounding path here; the
        // parse path is the same `clamp` + `next_power_of_two` pipeline.
        if std::env::var_os("NBTREE_SHARDS").is_some() {
            return; // an outer harness pinned the knob; nothing to check
        }
        assert_eq!(shards_from_env(8), 8);
        assert_eq!(shards_from_env(5), 8);
        assert_eq!(shards_from_env(0), 1);
        assert_eq!(shards_from_env(9999), 1024);
    }
}
