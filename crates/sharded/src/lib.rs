//! # Range-partitioned sharding with batched operations
//!
//! The PPoPP'14 trees are presented as *building blocks* for larger
//! systems. This crate is the first such system layer in the suite: a
//! façade that splits the keyspace across `S` independent map instances
//! behind an immutable boundary table, so `S` mostly-disjoint working
//! sets stop contending on one root, one balancing scheme and one epoch
//! of garbage.
//!
//! Three pieces:
//!
//! * [`ConcurrentMap`] — the suite-wide object-safe map interface
//!   (relocated here from `workload`, which re-exports it, so the façade
//!   can implement the same trait it composes over). The trait is
//!   **batch-first**: `insert_batch` / `remove_batch` / `get_batch` are
//!   trait methods with per-element defaults, so any map in the suite can
//!   be driven by whole request groups and structures with a real bulk
//!   path override them.
//! * [`ShardedMap`] — the façade: power-of-two shard counts, uniform or
//!   *learned* split points ([`ShardedMap::from_sample`]), wait-free
//!   boundary-table routing, and cross-shard `range` stitching with a
//!   documented per-shard atomicity scope.
//! * The façade's batch overrides — sort, group by shard, and execute
//!   each group whole through the *shard's own* batch entry point, so a
//!   shard with a native bulk path (the chromatic tree's sorted-bulk
//!   insert, with weighted epoch pins chunked at the repin cadence via
//!   `llxscx::guard_cache::with_guard_weighted`) amortizes over the
//!   entire group without starving reclamation.
//!
//! Shard counts and the boundary-table span are plumbed in by the caller
//! — deployments use `workload::SuiteConfig` (parsed from the
//! environment once at binary startup) rather than reading env vars at
//! construction time. See `docs/SHARDING.md` in the repository for the
//! full design chapter.

#![warn(missing_docs)]

pub mod map;
pub mod shard;

pub use map::{ConcurrentMap, RangeTier};
pub use shard::ShardedMap;
