//! Property-based oracle for the sharded façade over real chromatic-tree
//! shards: arbitrary interleavings of point ops, batched ops and range
//! scans match a sequential `BTreeMap` replay, with keys and windows
//! biased to *straddle shard boundaries* — the routing and stitching edge
//! cases (a key exactly at a boundary, a scan whose endpoints sit in
//! different shards, a batch that splits into per-shard groups).

use std::collections::BTreeMap;

use proptest::prelude::*;
use sharded::{ConcurrentMap, ShardedMap};

/// Local adapter (the orphan rule requires one in this test crate) over
/// the real chromatic tree, so the proptest exercises the actual template
/// trees rather than a stand-in.
struct Chromatic(nbtree::ChromaticTree<u64, u64>);

impl ConcurrentMap for Chromatic {
    fn name(&self) -> &'static str {
        "chromatic"
    }
    fn insert(&self, k: u64, v: u64) -> Option<u64> {
        self.0.insert(k, v)
    }
    fn remove(&self, k: &u64) -> Option<u64> {
        self.0.remove(k)
    }
    fn get(&self, k: &u64) -> Option<u64> {
        self.0.get(k)
    }
    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        self.0.range(lo..=hi)
    }
    fn len(&self) -> usize {
        self.0.len()
    }
}

const SHARDS: usize = 4;
const SPAN: u64 = 256; // boundaries at 64, 128, 192

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
    /// `[lo, lo + width]` — widths up to SPAN/2 cross 1–3 boundaries.
    Range(u64, u64),
    InsertBatch(Vec<(u64, u64)>),
    RemoveBatch(Vec<u64>),
    GetBatch(Vec<u64>),
}

/// Keys cluster around shard boundaries (±2) half the time, uniform over
/// the span (and slightly beyond it) otherwise. (The vendored proptest
/// has no range strategies, hence the modular-arithmetic idiom.)
fn key_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        (any::<u64>(), any::<u64>()).prop_map(|(b, d)| {
            let boundary = (1 + b % (SHARDS as u64 - 1)) * (SPAN / SHARDS as u64);
            (boundary + d % 5).saturating_sub(2)
        }),
        any::<u64>().prop_map(|k| k % (SPAN + 16)),
    ]
}

fn batch_keys() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(key_strategy(), 0..24)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (key_strategy(), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        key_strategy().prop_map(Op::Remove),
        key_strategy().prop_map(Op::Get),
        (key_strategy(), any::<u64>()).prop_map(|(lo, w)| Op::Range(lo, w % (SPAN / 2))),
        proptest::collection::vec((key_strategy(), any::<u64>()), 0..24).prop_map(Op::InsertBatch),
        batch_keys().prop_map(Op::RemoveBatch),
        batch_keys().prop_map(Op::GetBatch),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batched semantics are "sequential application in input order" (the
    /// façade stable-sorts, so same-key elements keep batch order), which
    /// is exactly how the model replays them.
    #[test]
    fn sharded_chromatic_equals_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let map = ShardedMap::with_span(SHARDS, SPAN, |_| {
            Chromatic(nbtree::ChromaticTree::new())
        });
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(map.insert(*k, *v), model.insert(*k, *v));
                }
                Op::Remove(k) => prop_assert_eq!(map.remove(k), model.remove(k)),
                Op::Get(k) => prop_assert_eq!(map.get(k), model.get(k).copied()),
                Op::Range(lo, w) => {
                    let hi = lo.saturating_add(*w);
                    let expect: Vec<(u64, u64)> =
                        model.range(*lo..=hi).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(map.range(*lo, hi), expect);
                }
                Op::InsertBatch(batch) => {
                    let expect: Vec<_> =
                        batch.iter().map(|&(k, v)| model.insert(k, v)).collect();
                    prop_assert_eq!(map.insert_batch(batch), expect);
                }
                Op::RemoveBatch(keys) => {
                    let expect: Vec<_> = keys.iter().map(|k| model.remove(k)).collect();
                    prop_assert_eq!(map.remove_batch(keys), expect);
                }
                Op::GetBatch(keys) => {
                    let expect: Vec<_> = keys.iter().map(|k| model.get(k).copied()).collect();
                    prop_assert_eq!(map.get_batch(keys), expect);
                }
            }
        }
        // Closing checks: sizes, full-universe stitching, and shard
        // residency all agree with the model.
        prop_assert_eq!(map.len(), model.len());
        let expect: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(map.range(0, u64::MAX), expect);
        for idx in 0..map.shard_count() {
            for (k, _) in map.shard(idx).range(0, u64::MAX) {
                prop_assert_eq!(map.shard_of(k), idx);
            }
        }
    }

    /// Boundary keys route deterministically: a key equal to a boundary
    /// belongs to the *upper* shard, one below it to the lower.
    #[test]
    fn boundary_keys_route_to_the_upper_shard(raw in any::<u64>()) {
        let b = 1 + (raw % (SHARDS as u64 - 1)) as usize;
        let map = ShardedMap::with_span(SHARDS, SPAN, |_| {
            Chromatic(nbtree::ChromaticTree::new())
        });
        let boundary = map.boundaries()[b - 1];
        prop_assert_eq!(map.shard_of(boundary), b);
        prop_assert_eq!(map.shard_of(boundary - 1), b - 1);
        map.insert(boundary, 1);
        map.insert(boundary - 1, 2);
        prop_assert_eq!(map.shard(b).get(&boundary), Some(1));
        prop_assert_eq!(map.shard(b - 1).get(&(boundary - 1)), Some(2));
    }
}
