//! Amortized epoch pinning: a thread-local cached [`Guard`].
//!
//! Every public tree operation used to pin and unpin the epoch (`&pin()`
//! per attempt): several sequentially-consistent atomics plus, every 64th
//! unpin, a global collection pass — pure overhead on the read path, where
//! the paper's searches perform *no* synchronization at all. This module
//! keeps one long-lived `Guard` per thread and hands out cheap re-entries:
//!
//! * [`with_guard`] runs a closure under the cached guard. While the cache
//!   is warm this costs a thread-local access and two counter bumps — the
//!   inner `pin()` that callees may still perform is a depth increment
//!   (the vendored crossbeam-epoch's nested-pin fast path).
//! * Every [`REPIN_OPS`]-th call the cached guard is dropped, the thread's
//!   deferred-function batch is flushed, a collection pass runs, and a
//!   fresh pin is taken. This bounds both garbage accumulation and how far
//!   this thread can hold the global epoch back.
//!
//! # Liveness caveat
//!
//! A thread that stops calling [`with_guard`] *while its cache is warm*
//! keeps the epoch pinned until it either calls again or exits (thread exit
//! drops the cache). Long-lived threads that go idle between bursts of
//! tree operations can call [`flush`] to release the cached pin eagerly.
//! This is the standard trade of amortized pinning; the repin interval
//! keeps the window small under load, and the throughput win on read-heavy
//! workloads (where pinning was the dominant cost) is what the paper's
//! "no synchronization on searches" design intends.
//!
//! The closure-passing shape is load-bearing for safety: handles and shared
//! pointers borrow the `&Guard`, so they cannot outlive one `with_guard`
//! call — exactly the linking discipline [`LlxHandle`](crate::LlxHandle)
//! already enforces — and a repin can never invalidate a live snapshot.

use std::cell::{Cell, RefCell};

use crossbeam_epoch::{pin, Guard};

/// Calls between forced repins of the cached guard. 64 matches the epoch
/// collector's historical collection cadence (one pass per 64 unpins), so
/// batching pins does not starve reclamation relative to the old scheme.
pub const REPIN_OPS: u32 = 64;

struct GuardCache {
    guard: RefCell<Option<Guard>>,
    uses: Cell<u32>,
}

thread_local! {
    static CACHE: GuardCache = const {
        GuardCache {
            guard: RefCell::new(None),
            uses: Cell::new(0),
        }
    };
}

/// Runs `f` under this thread's cached epoch guard, repinning (and
/// collecting) every [`REPIN_OPS`] calls.
///
/// Re-entrant calls (an operation invoked from inside `with_guard`) and
/// calls during thread teardown fall back to a plain short-lived pin.
#[inline]
pub fn with_guard<R>(f: impl FnOnce(&Guard) -> R) -> R {
    with_guard_weighted(1, f)
}

/// [`with_guard`] with an explicit *weight*: the call counts as `weight`
/// operations toward the [`REPIN_OPS`] repin cadence.
///
/// This is the substrate for batched entry points (`sharded`'s
/// `insert_batch`/`remove_batch`/`get_batch`): a batch of `n` operations
/// executes under ONE pin — every nested `with_guard` the per-operation
/// code performs takes the cheap re-entrant path, a depth increment on the
/// already-pinned epoch — but still advances the cadence by `n`, so a
/// weighted caller crosses the repin boundary as often *per operation* as
/// an unweighted one. The precise guarantee: a repin-and-collect happens
/// on the first call after the counter reaches [`REPIN_OPS`], so the
/// reclamation lag is bounded by `REPIN_OPS` operations *plus one batch*
/// (the pin necessarily spans the whole closure — garbage deferred inside
/// a batch of `n > REPIN_OPS` operations waits for that batch to end, and
/// the post-repin counter saturates at `REPIN_OPS`, making the next batch
/// repin again immediately). Weighting only the counter (not the pin) is
/// what makes batching an amortization rather than an unbounded
/// reclamation stall.
#[inline]
pub fn with_guard_weighted<R>(weight: u32, f: impl FnOnce(&Guard) -> R) -> R {
    // Probe accessibility first so `f` is moved into exactly one path.
    // Thread-local storage already torn down (destructor context)?
    if CACHE.try_with(|_| ()).is_err() {
        return f(&pin());
    }
    CACHE.with(|cache| {
        match cache.guard.try_borrow_mut() {
            Ok(mut slot) => {
                let uses = cache.uses.get();
                if uses >= REPIN_OPS {
                    // Drop the cached pin so the global epoch can advance
                    // past this thread, flush our deferred batch, collect,
                    // and repin fresh.
                    *slot = None;
                    crossbeam_epoch::flush_and_collect();
                    cache.uses.set(weight.min(REPIN_OPS));
                } else {
                    cache.uses.set(uses.saturating_add(weight));
                }
                f(slot.get_or_insert_with(pin))
            }
            // Re-entrant use of the cache: the outer call holds the borrow.
            // Nested pins are cheap, so just take a fresh one.
            Err(_) => f(&pin()),
        }
    })
}

/// Drops this thread's cached guard (if any), flushes its deferred batch
/// and runs a collection pass. Call before parking a long-lived thread
/// that performed tree operations and will now go idle.
pub fn flush() {
    let _ = CACHE.try_with(|cache| {
        if let Ok(mut slot) = cache.guard.try_borrow_mut() {
            *slot = None;
            cache.uses.set(0);
        }
    });
    crossbeam_epoch::flush_and_collect();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_guard_spans_calls_and_repins() {
        // Warm the cache, then verify a value deferred under one call is
        // not executed while the cache is warm but is executed after enough
        // calls to cross a repin boundary (plus collection passes).
        use std::sync::atomic::{AtomicBool, Ordering};
        static RAN: AtomicBool = AtomicBool::new(false);
        // SAFETY: the deferred closure only touches a `'static` atomic.
        // SEQCST: test-only; SC keeps the interleaving argument trivial.
        with_guard(|g| unsafe { g.defer_unchecked(|| RAN.store(true, Ordering::SeqCst)) });
        for _ in 0..(REPIN_OPS * 8) {
            with_guard(|_| ());
        }
        flush();
        // Other test threads may be pinned; drive a few extra collections.
        for _ in 0..64 {
            flush();
        }
        // SEQCST: test-only; SC keeps the interleaving argument trivial.
        assert!(RAN.load(Ordering::SeqCst));
    }

    #[test]
    fn reentrant_with_guard_falls_back() {
        let out = with_guard(|_outer| with_guard(|_inner| 42));
        assert_eq!(out, 42);
    }

    #[test]
    fn weighted_calls_advance_the_repin_cadence() {
        // Garbage deferred under a weighted call must be reclaimed after a
        // handful of further weighted calls: a weight-64 batch counts as 64
        // operations, so two batches cross the repin boundary — whereas 8
        // *unweighted* calls would leave the cadence counter at 8 and the
        // cached pin warm. (The actual free also needs the global epoch to
        // advance twice, hence the trailing flush loop, same as the
        // unweighted test above.)
        use std::sync::atomic::{AtomicBool, Ordering};
        static RAN_W: AtomicBool = AtomicBool::new(false);
        // SAFETY: the deferred closure only touches a `'static` atomic.
        with_guard_weighted(REPIN_OPS, |g| unsafe {
            // SEQCST: test-only; SC keeps the interleaving argument trivial.
            g.defer_unchecked(|| RAN_W.store(true, Ordering::SeqCst))
        });
        for _ in 0..8 {
            with_guard_weighted(REPIN_OPS, |_| ());
        }
        flush();
        for _ in 0..64 {
            flush();
        }
        // SEQCST: test-only; SC keeps the interleaving argument trivial.
        assert!(RAN_W.load(Ordering::SeqCst));
    }

    #[test]
    fn weight_saturates_instead_of_overflowing() {
        for _ in 0..4 {
            with_guard_weighted(u32::MAX, |_| ());
        }
        flush();
    }
}
