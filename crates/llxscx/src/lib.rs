//! # LLX / SCX / VLX: multi-word synchronization primitives from single-word CAS
//!
//! This crate implements the *load-link extended* (LLX), *store-conditional
//! extended* (SCX) and *validate-extended* (VLX) primitives of Brown, Ellen
//! and Ruppert, "Pragmatic primitives for non-blocking data structures"
//! (PODC 2013). They are the substrate for the *tree update template* of
//! "A General Technique for Non-blocking Trees" (PPoPP 2014), implemented in
//! the `nbtree` crate.
//!
//! ## Data-records
//!
//! The primitives operate on **Data-records**: heap nodes with a fixed set of
//! *mutable* fields (child pointers, at most [`MAX_ARITY`]) and arbitrarily
//! many *immutable* fields (keys, values, weights, ...). A type opts in by
//! implementing [`Record`] and embedding a [`RecordHeader`], which carries
//! the per-node synchronization metadata: an `info` pointer to the last
//! [SCX-record](descriptor::ScxRecord) that froze the node, and a `marked`
//! bit indicating the node is *finalized* (logically deleted).
//!
//! ## Semantics (informal)
//!
//! * [`llx`] attempts to snapshot the mutable fields of a record. It returns
//!   [`Llx::Snapshot`] with an [`LlxHandle`], [`Llx::Fail`] if a concurrent
//!   SCX interfered, or [`Llx::Finalized`] if the record was removed.
//! * [`scx`] takes a sequence `V` of handles (from *linked* LLXs, i.e. the
//!   most recent LLX on each record by this thread under the same epoch
//!   guard), a subset `R ⊆ V` to finalize, a mutable field of one record in
//!   `V`, and a new value. It atomically (at its linearization point) stores
//!   the new value and finalizes `R`, provided none of the records in `V`
//!   changed since their linked LLXs; otherwise it fails.
//! * [`vlx`] returns `true` only if none of the records in `V` changed since
//!   their linked LLXs; it can be used to obtain an atomic snapshot of
//!   several records.
//!
//! Linking is enforced *statically*: an [`LlxHandle`] borrows the epoch
//! [`Guard`] it was created under, so a handle cannot
//! outlive the guard, and `scx`/`vlx` demand handles tied to the same guard.
//! This replaces the per-process "last LLX table" of the paper.
//!
//! ## Progress and the caller's obligations
//!
//! The implementation is lock-free: helping ensures that whenever primitives
//! are performed infinitely often, some SCX succeeds. The *caller* must obey
//! the constraints of the PPoPP paper for this to hold:
//!
//! 1. every SCX stores a value the field never previously contained (use
//!    freshly allocated nodes — template postcondition PC7);
//! 2. in quiescent periods, all `V` sequences are sorted consistently with a
//!    fixed tree traversal (PC8);
//! 3. records are finalized exactly when they are removed from the tree
//!    (constraint 3).
//!
//! ## Memory reclamation
//!
//! The PODC/PPoPP papers assume a garbage collector. We substitute
//! epoch-based reclamation (crossbeam-epoch) plus reference counting of
//! SCX-records: a descriptor is freed once no node's `info` points at it and
//! no live descriptor lists it as an expected `info` value. Nodes finalized
//! by a committed SCX are retired by the unique thread that wins the
//! commit transition. See [`reclaim`] for the full argument.

#![warn(missing_docs)]

pub mod descriptor;
pub mod guard_cache;
pub mod ops;
pub mod pool;
pub mod reclaim;
pub mod record;
pub mod slab;

pub use descriptor::ScxRecord;
pub use guard_cache::{with_guard, with_guard_weighted};
pub use ops::{llx, scx, vlx, Llx, LlxHandle, ScxArgs};
pub use record::{Record, RecordHeader, MAX_ARITY, MAX_V};

pub use crossbeam_epoch as epoch;
pub use crossbeam_epoch::{pin, Atomic, Guard, Owned, Shared};
