//! The [`Record`] trait and per-node synchronization header.

use std::sync::atomic::{AtomicBool, Ordering};

use crossbeam_epoch::{Atomic, Guard, Shared};

use crate::descriptor::{state_of, ScxRecord, ABORTED, COMMITTED};

/// Maximum number of mutable (child-pointer) fields a [`Record`] may have.
///
/// The PPoPP 2014 data structures are binary trees (arity 2); we allow up to
/// 4 so that k-ary experiments fit without changing the descriptor layout.
pub const MAX_ARITY: usize = 4;

/// Maximum length of the `V` sequence passed to [`scx`](crate::scx).
///
/// The largest `V` in the chromatic tree (rebalancing step W4) has six
/// records; 8 leaves headroom and lets `R` be encoded as a `u8` bitmask.
pub const MAX_V: usize = 8;

/// Synchronization metadata embedded in every Data-record.
///
/// `info` points to the SCX-record that last froze this node (or null if the
/// node was never involved in an SCX). A node is *frozen* while
/// `info.state == InProgress`: its mutable fields may only be changed on
/// behalf of that SCX. `marked` is set when the node is finalized by a
/// committed SCX; a finalized node's mutable fields never change again.
pub struct RecordHeader<N> {
    pub(crate) info: Atomic<ScxRecord<N>>,
    pub(crate) marked: AtomicBool,
}

impl<N> RecordHeader<N> {
    /// A fresh header: never frozen, not finalized.
    pub fn new() -> Self {
        RecordHeader {
            info: Atomic::null(),
            marked: AtomicBool::new(false),
        }
    }

    /// Whether the node has been finalized (removed from the tree).
    ///
    /// This is a racy read intended for assertions and introspection; the
    /// synchronized way to observe finalization is [`Llx::Finalized`](crate::Llx).
    pub fn is_marked(&self) -> bool {
        // SEQCST: LLX/SCX proof assumes one total order over info/mark/child updates (paper §4).
        self.marked.load(Ordering::SeqCst)
    }
}

impl<N> Default for RecordHeader<N> {
    fn default() -> Self {
        Self::new()
    }
}

/// A Data-record on which LLX/SCX/VLX operate.
///
/// Implementors embed a [`RecordHeader`] and expose their mutable fields as
/// `crossbeam_epoch::Atomic<Self>` child pointers, indexed `0..Self::ARITY`.
/// All other fields must be immutable after construction (the template makes
/// a new copy of a node to change immutable data).
///
/// # Safety contract (logical, not `unsafe`)
///
/// `child(i)` must return the same `&Atomic` for the same `i` for the
/// lifetime of the record, and `header()` must return the embedded header.
///
/// The `'static` bound exists because each SCX checks its descriptor out of
/// a per-thread, per-record-type pool keyed by `TypeId` (see
/// [`pool`](crate::pool)); records own their keys/values anyway, so the
/// bound costs implementors nothing in practice.
pub trait Record: Sized + Send + Sync + 'static {
    /// Number of mutable child-pointer fields (at most [`MAX_ARITY`]).
    const ARITY: usize;

    /// The embedded synchronization header.
    fn header(&self) -> &RecordHeader<Self>;

    /// The `i`-th mutable field, `i < Self::ARITY`.
    fn child(&self, i: usize) -> &Atomic<Self>;
}

/// Reads the state a record presents to an [`llx`](crate::llx): the observed
/// `info` descriptor and whether it is quiescent (not frozen).
///
/// Returns `(info, state)`; a null `info` is treated as `ABORTED`
/// (quiescent), matching the paper's convention for never-frozen nodes.
#[inline]
pub(crate) fn load_info<'g, N: Record>(
    node: &N,
    guard: &'g Guard,
) -> (Shared<'g, ScxRecord<N>>, u8) {
    // SEQCST: LLX/SCX proof assumes one total order over info/mark/child updates (paper §4).
    let info = node.header().info.load(Ordering::SeqCst, guard);
    (info, state_of(info))
}

/// Whether `state` permits reading a consistent snapshot (the record is not
/// currently frozen by an in-progress SCX).
#[inline]
pub(crate) fn quiescent(state: u8, marked: bool) -> bool {
    state == ABORTED || (state == COMMITTED && !marked)
}
