//! The LLX, SCX and VLX operations.

use std::sync::atomic::Ordering;

use crossbeam_epoch::{Guard, Pointer, Shared};

use crate::descriptor::{state_of, ScxPayload, ScxRecord, ABORTED, COMMITTED, IN_PROGRESS};
use crate::pool;
use crate::reclaim::{defer_dec_refs, defer_dispose_record, inc_refs};
use crate::record::{load_info, quiescent, Record, MAX_ARITY, MAX_V};

/// Result of an [`llx`].
pub enum Llx<'g, N: Record> {
    /// The record was quiescent; its mutable fields were snapshotted.
    Snapshot(LlxHandle<'g, N>),
    /// A concurrent SCX interfered; the caller should retry its update.
    Fail,
    /// The record has been finalized (removed from the structure).
    Finalized,
}

impl<'g, N: Record> Llx<'g, N> {
    /// Unwraps the snapshot, panicking on `Fail`/`Finalized`. Test helper.
    pub fn unwrap(self) -> LlxHandle<'g, N> {
        match self {
            Llx::Snapshot(h) => h,
            Llx::Fail => panic!("LLX failed"),
            Llx::Finalized => panic!("LLX returned Finalized"),
        }
    }

    /// `Some(handle)` for a snapshot, `None` otherwise.
    pub fn ok(self) -> Option<LlxHandle<'g, N>> {
        match self {
            Llx::Snapshot(h) => Some(h),
            _ => None,
        }
    }
}

/// A successful LLX: the record, the descriptor observed in its `info`
/// field, and a snapshot of its mutable fields.
///
/// The handle borrows the epoch [`Guard`] it was created under, which
/// enforces the paper's *linking* discipline: an SCX/VLX can only consume
/// handles produced under the same pin, so the observed `info` values are
/// still protected when the freezing CASes run.
pub struct LlxHandle<'g, N: Record> {
    /// The record that was snapshotted.
    pub node: Shared<'g, N>,
    pub(crate) info: Shared<'g, ScxRecord<N>>,
    pub(crate) children: [Shared<'g, N>; MAX_ARITY],
}

impl<'g, N: Record> Clone for LlxHandle<'g, N> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'g, N: Record> Copy for LlxHandle<'g, N> {}

impl<'g, N: Record> LlxHandle<'g, N> {
    /// The snapshotted value of mutable field `i`.
    pub fn child(&self, i: usize) -> Shared<'g, N> {
        debug_assert!(i < N::ARITY);
        self.children[i]
    }

    /// Convenience for binary trees: snapshot of field 0.
    pub fn left(&self) -> Shared<'g, N> {
        self.children[0]
    }

    /// Convenience for binary trees: snapshot of field 1.
    pub fn right(&self) -> Shared<'g, N> {
        self.children[1]
    }

    /// The snapshotted record, dereferenced.
    pub fn node_ref(&self) -> &'g N {
        // SAFETY: a snapshot is only produced for a record that was in the
        // structure at the LLX's linearization point; it stays allocated for
        // the guard's lifetime (frees are epoch-deferred).
        unsafe { self.node.deref() }
    }
}

/// Load-link extended (PODC'13, Figure 1).
///
/// Attempts to snapshot the mutable fields of `node`. Helps any in-progress
/// SCX it encounters before reporting `Fail`/`Finalized`, which is what
/// makes the ensemble lock-free.
pub fn llx<'g, N: Record>(node: Shared<'g, N>, guard: &'g Guard) -> Llx<'g, N> {
    // SAFETY: caller obtained `node` from the structure under `guard`.
    let n = unsafe { node.deref() };
    let header = n.header();
    // SEQCST: LLX/SCX proof assumes one total order over info/mark/child updates (paper §4).
    let marked1 = header.marked.load(Ordering::SeqCst);
    let (rinfo, state) = load_info(n, guard);
    // Second `marked` read, *after* the info load (PODC'13 Fig. 1 lines
    // 2–5). The quiescence test must use this one: finalization sets
    // `marked` before the descriptor's state becomes `Committed`, so a
    // terminal state combined with a `marked` read that *follows* it
    // proves the record was not in that SCX's removed set. Testing the
    // pre-info read instead admits a torn interleaving — `marked` read
    // false, the SCX commits (marking the record), `info` then reads the
    // terminal descriptor — that snapshots an already-finalized record.
    // A later SCX linked to such a snapshot freezes and mutates a record
    // that is no longer in the structure: its update lands in a detached
    // subtree and the records it finalizes there may still be reachable
    // through the replacing copy, wedging every future LLX on them.
    // SEQCST: LLX/SCX proof assumes one total order over info/mark/child updates (paper §4).
    let marked2 = header.marked.load(Ordering::SeqCst);

    if quiescent(state, marked2) {
        // Read the mutable fields, then confirm `info` is unchanged: any SCX
        // that modifies a field must first freeze the record by installing a
        // fresh descriptor, so an unchanged `info` certifies the snapshot.
        let mut children = [Shared::null(); MAX_ARITY];
        for (i, slot) in children.iter_mut().enumerate().take(N::ARITY) {
            // SEQCST: LLX/SCX proof assumes one total order over info/mark/child updates (paper §4).
            *slot = n.child(i).load(Ordering::SeqCst, guard);
        }
        // SEQCST: LLX/SCX proof assumes one total order over info/mark/child updates (paper §4).
        if header.info.load(Ordering::SeqCst, guard) == rinfo {
            return Llx::Snapshot(LlxHandle {
                node,
                info: rinfo,
                children,
            });
        }
    }

    // The record is frozen or finalized. Re-read the descriptor's state (it
    // may have advanced) and help if it is still in progress.
    let state_now = state_of(rinfo);
    let done = state_now == COMMITTED
        || (state_now == IN_PROGRESS && {
            // SAFETY: rinfo non-null (IN_PROGRESS), protected by `guard`.
            unsafe { help(rinfo, guard) }
        });
    if done && marked1 {
        return Llx::Finalized;
    }
    // SEQCST: LLX/SCX proof assumes one total order over info/mark/child updates (paper §4).
    let cur = header.info.load(Ordering::SeqCst, guard);
    if state_of(cur) == IN_PROGRESS {
        // SAFETY: non-null (IN_PROGRESS), protected by `guard`.
        unsafe { help(cur, guard) };
    }
    Llx::Fail
}

/// Arguments for [`scx`], mirroring `SCX(V, R, fld, new)` from the paper.
pub struct ScxArgs<'a, 'g, N: Record> {
    /// The `V` sequence: handles from linked LLXs, ordered per template
    /// postcondition PC8 (a fixed tree-traversal order).
    pub v: &'a [LlxHandle<'g, N>],
    /// Bitmask over `v` selecting `R`, the records to finalize (PC2).
    pub finalize: u8,
    /// Index into `v` of the record whose field is modified (PC3).
    pub fld_record: usize,
    /// Which mutable field of that record is modified.
    pub fld_idx: usize,
    /// The new value. Must never have been stored in the field before
    /// (constraint 1; use a freshly allocated record — PC7).
    pub new: Shared<'g, N>,
}

/// Store-conditional extended (PODC'13, Figure 1).
///
/// Returns `true` if the SCX took effect: atomically, each record in `V` was
/// unchanged since its linked LLX, the designated field was updated to
/// `new`, and every record in `R` was finalized (and retired through the
/// epoch collector). Returns `false` if some record changed first.
pub fn scx<'g, N: Record>(args: &ScxArgs<'_, 'g, N>, guard: &'g Guard) -> bool {
    let len = args.v.len();
    assert!(
        len > 0 && len <= MAX_V,
        "SCX V-sequence length {len} out of range"
    );
    assert!(args.fld_record < len, "fld_record out of range");
    assert!(args.fld_idx < N::ARITY, "fld_idx out of range");
    debug_assert!(
        (args.finalize as usize) < (1usize << len),
        "finalize mask selects records outside V"
    );

    let mut v = [std::ptr::null::<N>(); MAX_V];
    // Expected `info` words *including their sequence tags*: a stale
    // expectation naming a reused descriptor carries the old incarnation's
    // tag and can never win a freezing CAS against the new one.
    let mut info_fields = [0usize; MAX_V];
    for (i, h) in args.v.iter().enumerate() {
        v[i] = h.node.as_raw();
        info_fields[i] = h.info.into_usize();
        debug_assert!(!v[i].is_null(), "V contains a null record");
    }
    let old = args.v[args.fld_record].children[args.fld_idx];

    // Check a descriptor out of the calling thread's pool instead of
    // allocating (the dominant update-path cost once the protocol is
    // cheap). We own it exclusively until the first freezing CAS: refs is
    // zero and the new incarnation has never been published.
    let desc_ptr = pool::acquire::<N>();
    // SAFETY: exclusive access (see above); payload writes cannot race.
    let desc_s: Shared<'g, ScxRecord<N>> = unsafe {
        let d = &*desc_ptr;
        debug_assert_eq!(d.refs.load(Ordering::Relaxed), 0, "reused live descriptor");
        // Relaxed suffices: the freezing CAS that publishes the descriptor
        // is SeqCst, so helpers that discover it observe these writes.
        d.state.store(IN_PROGRESS, Ordering::Relaxed);
        d.all_frozen.store(false, Ordering::Relaxed);
        *d.payload.get() = ScxPayload {
            len,
            v,
            info_fields,
            finalize_mask: args.finalize,
            fld_node: v[args.fld_record],
            fld_idx: args.fld_idx,
            old: old.as_raw(),
            new: args.new.as_raw(),
        };
        // Publish under the current incarnation's tag (`with_tag` keeps the
        // low bits the 128-byte alignment frees up).
        Shared::from(desc_ptr as *const ScxRecord<N>).with_tag(d.seq.load(Ordering::Relaxed))
    };

    // Note what is *not* here: the expected descriptors in `info_fields`
    // are NOT kept alive by a reference count. The pre-reuse design pinned
    // every expected descriptor for as long as this one lived, which chains
    // descriptors together (A is named by B, B by C, ...) and in steady
    // state leaks one descriptor per committed SCX — the head of the chain
    // always has a live install, so the chain never collapses. With pooling
    // the expectation is protected differently: a freezing CAS compares the
    // whole tagged word, and reusing a descriptor bumps its incarnation
    // tag, so a stale expectation fails on the tag instead of relying on
    // the expected descriptor still being allocated (see `reclaim` docs).

    // SAFETY: desc published by this thread, protected by `guard`.
    let ok = unsafe { help(desc_s, guard) };
    if !ok {
        // If the descriptor was never installed anywhere, no other thread
        // ever saw it (helpers only discover descriptors via info fields),
        // so the initiator may return it to the pool directly.
        // SAFETY: refs counts installs; during our pin any install's
        // deferred decrement cannot yet have run, so refs == 0 certifies
        // "never installed".
        unsafe {
            let d = &*desc_ptr;
            // SEQCST: LLX/SCX proof assumes one total order over info/mark/child updates (paper §4).
            if d.refs.load(Ordering::SeqCst) == 0 {
                pool::release(desc_ptr);
            }
        }
    }
    ok
}

/// Validate extended: `true` iff no record in `handles` has changed since
/// its linked LLX. Helps conflicting in-progress SCXs before failing.
///
/// This is the read-side counterpart of [`scx`]: it establishes that the
/// whole set of snapshots was simultaneously valid at one instant (the last
/// `info` load of the loop below) *without freezing anything*, which is what
/// makes multi-node reads — successor/predecessor walks and whole-subtree
/// range scans — linearizable at zero cost to writers.
///
/// Incarnation awareness: the comparison is on the whole tagged word, not
/// the descriptor address. A pooled descriptor that was recycled between the
/// LLX and this VLX comes back with a bumped incarnation tag (see
/// [`pool`]), so address reuse alone can never make a stale snapshot
/// validate — the same sequence-number argument that protects the freezing
/// CAS in the SCX helper.
///
/// # Example
///
/// An atomic two-record read: LLX both records, then one VLX certifies
/// that the pair of snapshots was simultaneously valid. An SCX on either
/// record in between invalidates the set as a whole.
///
/// ```
/// use llxscx::{llx, scx, vlx, pin, Atomic, Owned, Record, RecordHeader, ScxArgs};
///
/// struct N { header: RecordHeader<N>, kids: [Atomic<N>; 2] }
/// impl Record for N {
///     const ARITY: usize = 2;
///     fn header(&self) -> &RecordHeader<Self> { &self.header }
///     fn child(&self, i: usize) -> &Atomic<Self> { &self.kids[i] }
/// }
/// fn node() -> Owned<N> {
///     Owned::new(N { header: RecordHeader::new(), kids: [Atomic::null(), Atomic::null()] })
/// }
///
/// let guard = &pin();
/// let a = node().into_shared(guard);
/// let b = node().into_shared(guard);
/// let (ha, hb) = (llx(a, guard).unwrap(), llx(b, guard).unwrap());
/// // Nothing changed since the LLXs: the snapshot pair is atomic.
/// assert!(vlx(&[ha, hb], guard));
///
/// // A committed SCX on `a` fails any V-sequence containing `ha` ...
/// let fresh = node().into_shared(guard);
/// assert!(scx(&ScxArgs { v: &[ha], finalize: 0, fld_record: 0, fld_idx: 0, new: fresh }, guard));
/// assert!(!vlx(&[ha, hb], guard));
/// // ... while `b`'s untouched snapshot alone still validates.
/// assert!(vlx(&[hb], guard));
/// # unsafe {
/// #     llxscx::reclaim::dispose_record(fresh.as_raw());
/// #     llxscx::reclaim::dispose_record(b.as_raw());
/// #     llxscx::reclaim::dispose_record(a.as_raw());
/// # }
/// ```
pub fn vlx<'g, N: Record>(handles: &[LlxHandle<'g, N>], guard: &'g Guard) -> bool {
    for h in handles {
        // SAFETY: handle's record is protected by `guard`.
        let n = unsafe { h.node.deref() };
        // SEQCST: LLX/SCX proof assumes one total order over info/mark/child updates (paper §4).
        let cur = n.header().info.load(Ordering::SeqCst, guard);
        if cur != h.info {
            if state_of(cur) == IN_PROGRESS {
                // SAFETY: non-null (IN_PROGRESS), protected by `guard`.
                unsafe { help(cur, guard) };
            }
            return false;
        }
    }
    true
}

/// Completes (or aborts) the SCX described by `desc`, on behalf of any
/// thread. Returns `true` iff the SCX committed.
///
/// # Safety
/// `desc` must be non-null and protected by `guard`.
pub(crate) unsafe fn help<N: Record>(desc_s: Shared<'_, ScxRecord<N>>, guard: &Guard) -> bool {
    let desc = desc_s.deref();
    // SAFETY: the payload is immutable while the descriptor is reachable
    // (checkout requires refs == 0, which cannot hold while we help).
    let p = desc.payload();

    // Freezing phase: install `desc` into each V-record's info field, in
    // order, expecting the value its linked LLX observed. Both the expected
    // and the installed word carry incarnation tags, so expectations from a
    // descriptor's previous life fail here (the sequence-number check).
    for i in 0..p.len {
        let node = &*p.v[i];
        let expect: Shared<'_, ScxRecord<N>> = Shared::from_usize(p.info_fields[i]);
        // SEQCST: LLX/SCX proof assumes one total order over info/mark/child updates (paper §4).
        match node.header().info.compare_exchange(
            expect,
            desc_s,
            Ordering::SeqCst,
            Ordering::SeqCst,
            guard,
        ) {
            Ok(_) => {
                inc_refs(desc_s.as_raw());
                if !expect.is_null() {
                    // The replaced descriptor loses one install reference.
                    defer_dec_refs(expect.as_raw(), guard);
                }
            }
            Err(e) => {
                if e.current != desc_s {
                    // Frozen for someone else, or already past us. If every
                    // record was frozen at some point, the SCX already
                    // succeeded (another helper finished); otherwise it can
                    // never complete and must abort. `all_frozen` is written
                    // before any record in V can be re-frozen (a record is
                    // only released by reaching a terminal state, which
                    // happens after `all_frozen` on the commit path), so
                    // this read is conclusive.
                    // SEQCST: LLX/SCX proof assumes one total order over info/mark/child updates (paper §4).
                    if desc.all_frozen.load(Ordering::SeqCst) {
                        return true;
                    }
                    // SEQCST: LLX/SCX proof assumes one total order over info/mark/child updates (paper §4).
                    let _ = desc.state.compare_exchange(
                        IN_PROGRESS,
                        ABORTED,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    );
                    return desc.load_state() == COMMITTED;
                }
                // else: another helper already froze this record for `desc`.
            }
        }
    }

    // SEQCST: LLX/SCX proof assumes one total order over info/mark/child updates (paper §4).
    desc.all_frozen.store(true, Ordering::SeqCst);
    // Mark (finalize) every record in R. Idempotent across helpers.
    for i in 0..p.len {
        if p.finalize_mask & (1 << i) != 0 {
            // SEQCST: LLX/SCX proof assumes one total order over info/mark/child updates (paper §4).
            (*p.v[i]).header().marked.store(true, Ordering::SeqCst);
        }
    }
    // The update CAS. Only the first helper's CAS succeeds: `old` was a
    // fresh allocation when installed and is never re-stored (constraint 1).
    let parent = &*p.fld_node;
    // SEQCST: LLX/SCX proof assumes one total order over info/mark/child updates (paper §4).
    let _ = parent.child(p.fld_idx).compare_exchange(
        Shared::from(p.old as *const _),
        Shared::from(p.new as *const _),
        Ordering::SeqCst,
        Ordering::SeqCst,
        guard,
    );
    // Commit. Exactly one helper wins the transition and retires R: the
    // finalized records are now unreachable from the entry point (the update
    // CAS happened before the state CAS), so epoch deferral makes the frees
    // safe for concurrent traversals still holding pre-commit guards.
    if desc
        .state
        // SEQCST: LLX/SCX proof assumes one total order over info/mark/child updates (paper §4).
        .compare_exchange(IN_PROGRESS, COMMITTED, Ordering::SeqCst, Ordering::SeqCst)
        .is_ok()
    {
        for i in 0..p.len {
            if p.finalize_mask & (1 << i) != 0 {
                defer_dispose_record(p.v[i], guard);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordHeader;
    use crossbeam_epoch::{pin, Atomic, Owned};

    struct TestNode {
        header: RecordHeader<TestNode>,
        children: [Atomic<TestNode>; 2],
        key: u64,
    }

    impl TestNode {
        fn new(key: u64) -> Owned<TestNode> {
            Owned::new(TestNode {
                header: RecordHeader::new(),
                children: [Atomic::null(), Atomic::null()],
                key,
            })
        }
    }

    impl Record for TestNode {
        const ARITY: usize = 2;
        fn header(&self) -> &RecordHeader<Self> {
            &self.header
        }
        fn child(&self, i: usize) -> &Atomic<Self> {
            &self.children[i]
        }
    }

    #[test]
    fn llx_snapshot_of_quiescent_record() {
        let guard = &pin();
        let root = TestNode::new(1).into_shared(guard);
        let h = llx(root, guard).unwrap();
        assert!(h.left().is_null());
        assert!(h.right().is_null());
        assert_eq!(h.node_ref().key, 1);
        // SAFETY: `root` was never published to another thread; test-local teardown.
        unsafe { crate::reclaim::dispose_record(root.as_raw()) };
    }

    #[test]
    fn scx_swings_pointer_and_finalizes() {
        let guard = &pin();
        let root = TestNode::new(0).into_shared(guard);
        let a = TestNode::new(1).into_shared(guard);
        // SAFETY: `root` is a live test-local allocation under `guard`.
        // SEQCST: test-only; SC keeps the interleaving argument trivial.
        unsafe { root.deref() }.children[0].store(a, Ordering::SeqCst);

        let hr = llx(root, guard).unwrap();
        let ha = llx(a, guard).unwrap();
        let fresh = TestNode::new(2).into_shared(guard);
        let ok = scx(
            &ScxArgs {
                v: &[hr, ha],
                finalize: 0b10, // finalize `a`
                fld_record: 0,
                fld_idx: 0,
                new: fresh,
            },
            guard,
        );
        assert!(ok);
        // SAFETY: `root` stays allocated for the whole test under `guard`.
        // SEQCST: test-only; SC keeps the interleaving argument trivial.
        let now = unsafe { root.deref() }.children[0].load(Ordering::SeqCst, guard);
        assert_eq!(now, fresh);
        // `a` is finalized: LLX reports it.
        assert!(matches!(llx(a, guard), Llx::Finalized));
        // Stale handle on root no longer validates.
        assert!(!vlx(&[hr], guard));
        // SAFETY: test-local nodes; nothing else references them after the asserts.
        unsafe {
            crate::reclaim::dispose_record(fresh.as_raw());
            crate::reclaim::dispose_record(root.as_raw());
        }
    }

    #[test]
    fn scx_fails_on_stale_handle() {
        let guard = &pin();
        let root = TestNode::new(0).into_shared(guard);
        let h1 = llx(root, guard).unwrap();
        // A first SCX consumes the handle's expected info value.
        let n1 = TestNode::new(1).into_shared(guard);
        assert!(scx(
            &ScxArgs {
                v: &[h1],
                finalize: 0,
                fld_record: 0,
                fld_idx: 0,
                new: n1
            },
            guard
        ));
        // Re-using the stale handle must fail.
        let n2 = TestNode::new(2).into_shared(guard);
        assert!(!scx(
            &ScxArgs {
                v: &[h1],
                finalize: 0,
                fld_record: 0,
                fld_idx: 0,
                new: n2
            },
            guard
        ));
        // SAFETY: `root` stays allocated for the whole test under `guard`.
        // SEQCST: test-only; SC keeps the interleaving argument trivial.
        let now = unsafe { root.deref() }.children[0].load(Ordering::SeqCst, guard);
        assert_eq!(now, n1);
        // SAFETY: test-local teardown; the losing SCX's nodes are unreachable.
        unsafe {
            crate::reclaim::dispose_record(n2.as_raw());
            crate::reclaim::dispose_record(n1.as_raw());
            crate::reclaim::dispose_record(root.as_raw());
        }
    }

    #[test]
    fn vlx_validates_unchanged_records() {
        let guard = &pin();
        let root = TestNode::new(0).into_shared(guard);
        let h = llx(root, guard).unwrap();
        assert!(vlx(&[h], guard));
        // SAFETY: `root` was never shared; test-local teardown.
        unsafe { crate::reclaim::dispose_record(root.as_raw()) };
    }

    #[test]
    fn llx_after_scx_sees_new_value() {
        let guard = &pin();
        let root = TestNode::new(0).into_shared(guard);
        let h = llx(root, guard).unwrap();
        let n1 = TestNode::new(7).into_shared(guard);
        assert!(scx(
            &ScxArgs {
                v: &[h],
                finalize: 0,
                fld_record: 0,
                fld_idx: 1,
                new: n1
            },
            guard
        ));
        let h2 = llx(root, guard).unwrap();
        assert_eq!(h2.right(), n1);
        assert!(h2.left().is_null());
        // SAFETY: test-local teardown of nodes this test allocated.
        unsafe {
            crate::reclaim::dispose_record(n1.as_raw());
            crate::reclaim::dispose_record(root.as_raw());
        }
    }

    /// The sequence-number check: an expectation that names the right
    /// descriptor *address* but the wrong *incarnation tag* must never win
    /// a freezing CAS. This is what makes descriptor reuse ABA-safe — a
    /// stale helper from a descriptor's previous life compares the whole
    /// tagged word, so address recycling alone cannot fool it.
    #[test]
    fn stale_incarnation_tag_cannot_freeze() {
        let guard = &pin();
        let root = TestNode::new(0).into_shared(guard);

        // Install a genuine descriptor on root so its info is non-null.
        let h0 = llx(root, guard).unwrap();
        let n1 = TestNode::new(1).into_shared(guard);
        assert!(scx(
            &ScxArgs {
                v: &[h0],
                finalize: 0,
                fld_record: 0,
                fld_idx: 0,
                new: n1
            },
            guard
        ));

        let genuine = llx(root, guard).unwrap();
        assert!(!genuine.info.is_null(), "root must carry a descriptor");

        // A handle identical to `genuine` except for the incarnation tag —
        // exactly what a helper holds after the expected descriptor was
        // returned to the pool and checked out again (seq bumped).
        let stale = LlxHandle {
            // SAFETY: same allocation as `genuine.info`, only the tag differs.
            info: unsafe { Shared::from_usize(genuine.info.into_usize() ^ 0x1) },
            ..genuine
        };
        assert_eq!(
            stale.info.as_raw(),
            genuine.info.as_raw(),
            "same allocation address"
        );
        let n2 = TestNode::new(2).into_shared(guard);
        assert!(
            !scx(
                &ScxArgs {
                    v: &[stale],
                    finalize: 0,
                    fld_record: 0,
                    fld_idx: 0,
                    new: n2
                },
                guard
            ),
            "stale incarnation froze the record (ABA on info)"
        );
        // The record is untouched and the genuine handle still works.
        // SAFETY: `root` stays allocated for the whole test under `guard`.
        // SEQCST: test-only; SC keeps the interleaving argument trivial.
        let now = unsafe { root.deref() }.children[0].load(Ordering::SeqCst, guard);
        assert_eq!(now, n1);
        let n3 = TestNode::new(3).into_shared(guard);
        assert!(scx(
            &ScxArgs {
                v: &[genuine],
                finalize: 0,
                fld_record: 0,
                fld_idx: 0,
                new: n3
            },
            guard
        ));
        // SAFETY: test-local teardown of nodes this test allocated.
        unsafe {
            crate::reclaim::dispose_record(n3.as_raw());
            crate::reclaim::dispose_record(n2.as_raw());
            crate::reclaim::dispose_record(n1.as_raw());
            crate::reclaim::dispose_record(root.as_raw());
        }
    }

    /// VLX mirror of the freeze-side ABA check: a handle naming the right
    /// descriptor address under the wrong incarnation tag must not validate,
    /// even though the record itself is untouched. Without the tagged-word
    /// comparison a recycled descriptor could certify a snapshot from its
    /// previous life as a linearizable read.
    #[test]
    fn stale_incarnation_tag_cannot_validate() {
        let guard = &pin();
        let root = TestNode::new(0).into_shared(guard);
        let h0 = llx(root, guard).unwrap();
        let n1 = TestNode::new(1).into_shared(guard);
        assert!(scx(
            &ScxArgs {
                v: &[h0],
                finalize: 0,
                fld_record: 0,
                fld_idx: 0,
                new: n1
            },
            guard
        ));
        let genuine = llx(root, guard).unwrap();
        assert!(vlx(&[genuine], guard), "fresh handle must validate");
        let stale = LlxHandle {
            // SAFETY: same allocation as `genuine.info`, only the tag differs.
            info: unsafe { Shared::from_usize(genuine.info.into_usize() ^ 0x1) },
            ..genuine
        };
        assert!(
            !vlx(&[stale], guard),
            "stale incarnation validated (ABA on info)"
        );
        // A mixed sequence fails as a whole.
        assert!(!vlx(&[genuine, stale], guard));
        // SAFETY: test-local teardown of nodes this test allocated.
        unsafe {
            crate::reclaim::dispose_record(n1.as_raw());
            crate::reclaim::dispose_record(root.as_raw());
        }
    }

    /// End-to-end reuse: cycling SCXs through one thread must recycle
    /// descriptor allocations through the pool (the update path allocates
    /// nothing in steady state), observable as a repeated descriptor
    /// address with increasing incarnation numbers.
    #[test]
    fn committed_scxs_recycle_descriptors() {
        use std::collections::HashMap;
        let root_addr = {
            let guard = &pin();
            TestNode::new(0).into_shared(guard).as_raw() as usize
        };
        // addr -> incarnations seen installed on root.
        let mut seen: HashMap<usize, Vec<usize>> = HashMap::new();
        for round in 0..600u64 {
            {
                let guard = &pin();
                let root = Shared::from(root_addr as *const TestNode);
                let h = llx(root, guard).unwrap();
                let fresh = TestNode::new(round).into_shared(guard);
                let old = h.right();
                assert!(scx(
                    &ScxArgs {
                        v: &[h],
                        finalize: 0,
                        fld_record: 0,
                        fld_idx: 1,
                        new: fresh
                    },
                    guard
                ));
                if !old.is_null() {
                    // Replaced value: retire it ourselves (not in R).
                    // SAFETY: `old` was displaced by the winning SCX; only the winner retires it.
                    unsafe { crate::reclaim::defer_dispose_record(old.as_raw(), guard) };
                }
                // SAFETY: `root` stays allocated for the whole test under `guard`.
                let cur = unsafe { root.deref() }
                    .header()
                    .info
                    // SEQCST: test-only; SC keeps the interleaving argument trivial.
                    .load(Ordering::SeqCst, guard);
                seen.entry(cur.as_raw() as usize)
                    .or_default()
                    // SAFETY: `cur` was just loaded from a live record's header under `guard`.
                    .push(unsafe { cur.deref() }.incarnation());
            }
            // Let deferred reference drops run so descriptors return to
            // the pool.
            crossbeam_epoch::flush_and_collect();
        }
        let reused = seen.values().filter(|v| v.len() > 1).count();
        assert!(
            reused > 0,
            "no descriptor allocation was ever reused across {} rounds",
            seen.len()
        );
        for incarnations in seen.values() {
            assert!(
                incarnations.windows(2).all(|w| w[0] < w[1]),
                "incarnation numbers must strictly advance per allocation: {incarnations:?}"
            );
        }
        // SAFETY: single-threaded teardown after all workers joined.
        unsafe {
            let guard = crossbeam_epoch::unprotected();
            let root = Shared::from(root_addr as *const TestNode);
            // SEQCST: test-only; SC keeps the interleaving argument trivial.
            let last = root.deref().children[1].load(Ordering::SeqCst, guard);
            if !last.is_null() {
                crate::reclaim::dispose_record(last.as_raw());
            }
            crate::reclaim::dispose_record(root_addr as *const TestNode);
        }
    }
}
