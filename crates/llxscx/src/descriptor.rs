//! SCX-records: the descriptors that coordinate multi-record updates.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU8, AtomicUsize, Ordering};

use crossbeam_epoch::Shared;

use crate::pool::PoolShared;
use crate::record::{Record, MAX_V};

/// SCX in progress: the records in `V` that point here are frozen.
pub const IN_PROGRESS: u8 = 0;
/// SCX took effect: the update CAS happened and `R` is finalized.
pub const COMMITTED: u8 = 1;
/// SCX failed: records that point here are unfrozen.
pub const ABORTED: u8 = 2;

/// The descriptor used by each invocation of [`scx`](crate::scx).
///
/// A successful freezing CAS installs a pointer to this record into the
/// `info` field of each record in `V` (in order). While `state` is
/// [`IN_PROGRESS`] those records are *frozen*: concurrent LLXs fail (after
/// helping) and concurrent SCXs cannot freeze them. The descriptor contains
/// everything needed for any thread to *help* complete the SCX, which is
/// what makes the construction lock-free.
///
/// # Reuse ("reuse, don't recycle")
///
/// Unlike the PODC'13 presentation (fresh descriptor per SCX, garbage
/// collector assumed), descriptors here are **pooled per thread** and
/// reused: each [`scx`](crate::scx) checks one out of the calling thread's
/// [`pool`](crate::pool), overwrites the payload, and returns it when its
/// reference count drops to zero. Two mechanisms make reuse safe:
///
/// * `refs` proves quiescence: it counts the records whose `info` field
///   currently points at this descriptor, and reuse happens only at zero,
///   with the final decrement epoch-deferred (see [`reclaim`](crate::reclaim)
///   for why that makes the count exact). Reuse happens exactly where the
///   old code called `free`, so it inherits the same safety argument.
/// * `seq` detects reuse: every checkout bumps the incarnation counter, and
///   every *published* pointer to the descriptor (the value installed in
///   `info` fields) carries `seq` in its alignment tag bits
///   (`align(128)` ⇒ 7 bits). A freezing CAS whose expected value names a
///   previous incarnation therefore fails on the tag even though the
///   address matches — no ABA on `info` fields.
///
/// The payload fields are immutable from the first freezing CAS that
/// publishes the descriptor until `refs` drops to zero.
///
/// # Layout
///
/// `repr(align(128))` serves two purposes: a descriptor spans exactly two
/// cache lines with no false sharing against neighbouring allocations on
/// the hot `state`/`refs` words, and the 128-byte alignment frees the low
/// 7 pointer bits for the sequence tag.
#[repr(align(128))]
pub struct ScxRecord<N> {
    /// [`IN_PROGRESS`], [`COMMITTED`] or [`ABORTED`]. Transitions out of
    /// `IN_PROGRESS` happen exactly once per incarnation, via CAS.
    pub(crate) state: AtomicU8,
    /// Set once every record in `V` has been frozen. Read by helpers whose
    /// freezing CAS failed to distinguish "SCX already done" from "must
    /// abort" (paper, Figure 1 of PODC'13).
    pub(crate) all_frozen: AtomicBool,
    /// Reference count for reclamation (not part of the PODC'13 algorithm,
    /// which assumed a garbage collector). Zero means "safe to reuse".
    pub(crate) refs: AtomicUsize,
    /// Incarnation counter, bumped by every pool checkout. The low
    /// [`SEQ_TAG_BITS`] bits ride along in every published pointer's tag.
    pub(crate) seq: AtomicUsize,
    /// Intrusive link for the owning pool's free stack; only touched while
    /// the descriptor is quiescent (`refs == 0`).
    pub(crate) free_next: AtomicPtr<ScxRecord<N>>,
    /// The pool this descriptor was allocated by (and returns to).
    pub(crate) pool: *const PoolShared<N>,
    /// The per-SCX arguments, overwritten at each checkout. Plain (non-
    /// atomic) data: written only between checkout and publication, read
    /// only between publication and the final reference drop.
    pub(crate) payload: UnsafeCell<ScxPayload<N>>,
}

/// Number of low pointer bits available for the sequence tag
/// (`log2(align_of::<ScxRecord>())`).
pub const SEQ_TAG_BITS: u32 = 7;

/// The immutable-while-published arguments of one SCX invocation.
pub(crate) struct ScxPayload<N> {
    /// Number of live entries in `v` / `info_fields`.
    pub len: usize,
    /// The records to freeze, in `V`-sequence order.
    pub v: [*const N; MAX_V],
    /// For each record in `v`, the **tagged** `info` word observed by the
    /// linked LLX — the expected value of the freezing CAS. Keeping the tag
    /// is what arms the sequence check: a stale expectation from a previous
    /// incarnation of some descriptor CASes against the wrong tag and fails.
    pub info_fields: [usize; MAX_V],
    /// Bitmask over `v` selecting `R`, the records to finalize.
    pub finalize_mask: u8,
    /// The record containing the field to modify (must be in `v`).
    pub fld_node: *const N,
    /// Which child of `fld_node` to modify.
    pub fld_idx: usize,
    /// Expected value of the field (read by the linked LLX on `fld_node`).
    pub old: *const N,
    /// New value to store.
    pub new: *const N,
}

// SAFETY: the raw pointers are owned by the epoch-managed heap; descriptors
// are shared across threads only via `Atomic` info fields and all access to
// pointees is mediated by epoch guards. Mutable state is atomic, except the
// `payload` UnsafeCell, whose writes (at pool checkout, while `refs == 0`
// and unpublished) never overlap reads (only possible between publication
// and the final, epoch-deferred reference drop) — see the reuse argument on
// [`ScxRecord`] and the timing argument in [`reclaim`](crate::reclaim).
unsafe impl<N: Record> Send for ScxRecord<N> {}
// SAFETY: same argument as `Send`.
unsafe impl<N: Record> Sync for ScxRecord<N> {}

impl<N: Record> ScxRecord<N> {
    /// A quiescent descriptor bound to `pool`, ready for its first checkout.
    pub(crate) fn new_in_pool(pool: *const PoolShared<N>) -> Self {
        ScxRecord {
            // A pooled-but-never-used descriptor must look terminal, not
            // IN_PROGRESS, in case its address leaks through debug tooling.
            state: AtomicU8::new(ABORTED),
            all_frozen: AtomicBool::new(false),
            refs: AtomicUsize::new(0),
            seq: AtomicUsize::new(0),
            free_next: AtomicPtr::new(std::ptr::null_mut()),
            pool,
            payload: UnsafeCell::new(ScxPayload {
                len: 0,
                v: [std::ptr::null(); MAX_V],
                info_fields: [0; MAX_V],
                finalize_mask: 0,
                fld_node: std::ptr::null(),
                fld_idx: 0,
                old: std::ptr::null(),
                new: std::ptr::null(),
            }),
        }
    }

    /// Shared read access to the payload.
    ///
    /// # Safety
    /// The descriptor must be published (observed via an `info` field or
    /// created by the calling thread) and protected by the caller's guard /
    /// reference, so no checkout can be overwriting the payload.
    pub(crate) unsafe fn payload(&self) -> &ScxPayload<N> {
        &*self.payload.get()
    }

    /// Current state. `Relaxed` would be unsound for the protocol; helpers
    /// rely on seeing `all_frozen`/field writes ordered before `COMMITTED`.
    pub(crate) fn load_state(&self) -> u8 {
        // SEQCST: LLX/SCX proof assumes one total order over info/mark/child updates (paper §4).
        self.state.load(Ordering::SeqCst)
    }

    /// Whether this SCX committed (for testing / introspection).
    pub fn committed(&self) -> bool {
        self.load_state() == COMMITTED
    }

    /// The current incarnation number (for testing / introspection).
    pub fn incarnation(&self) -> usize {
        self.seq.load(Ordering::Relaxed)
    }
}

/// State presented by a (possibly null) `info` pointer: a record that was
/// never frozen behaves as if its last SCX aborted.
#[inline]
pub(crate) fn state_of<N: Record>(info: Shared<'_, ScxRecord<N>>) -> u8 {
    if info.is_null() {
        ABORTED
    } else {
        // SAFETY: non-null info pointers are valid while the caller's guard
        // is pinned (descriptor reuse/frees wait for an epoch-deferred
        // reference drop).
        unsafe { info.deref() }.load_state()
    }
}
