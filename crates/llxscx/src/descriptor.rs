//! SCX-records: the descriptors that coordinate multi-record updates.

use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};

use crossbeam_epoch::Shared;

use crate::record::{Record, MAX_V};

/// SCX in progress: the records in `V` that point here are frozen.
pub const IN_PROGRESS: u8 = 0;
/// SCX took effect: the update CAS happened and `R` is finalized.
pub const COMMITTED: u8 = 1;
/// SCX failed: records that point here are unfrozen.
pub const ABORTED: u8 = 2;

/// The descriptor created by each invocation of [`scx`](crate::scx).
///
/// A successful freezing CAS installs a pointer to this record into the
/// `info` field of each record in `V` (in order). While `state` is
/// [`IN_PROGRESS`] those records are *frozen*: concurrent LLXs fail (after
/// helping) and concurrent SCXs cannot freeze them. The descriptor contains
/// everything needed for any thread to *help* complete the SCX, which is
/// what makes the construction lock-free.
///
/// All fields except `state`, `all_frozen` and `refs` are immutable after
/// construction.
///
/// # Reclamation
///
/// `refs` counts (a) records whose `info` currently points at this
/// descriptor and (b) live descriptors that list this one in `info_fields`.
/// The descriptor is freed when the count drops to zero; see
/// [`reclaim`](crate::reclaim).
pub struct ScxRecord<N> {
    /// [`IN_PROGRESS`], [`COMMITTED`] or [`ABORTED`]. Transitions out of
    /// `IN_PROGRESS` happen exactly once, via CAS.
    pub(crate) state: AtomicU8,
    /// Set once every record in `V` has been frozen. Read by helpers whose
    /// freezing CAS failed to distinguish "SCX already done" from "must
    /// abort" (paper, Figure 1 of PODC'13).
    pub(crate) all_frozen: AtomicBool,
    /// Reference count for reclamation (not part of the PODC'13 algorithm,
    /// which assumed a garbage collector).
    pub(crate) refs: AtomicUsize,
    /// Number of live entries in `v` / `info_fields`.
    pub(crate) len: usize,
    /// The records to freeze, in `V`-sequence order.
    pub(crate) v: [*const N; MAX_V],
    /// For each record in `v`, the `info` value observed by the linked LLX —
    /// the expected value of the freezing CAS.
    pub(crate) info_fields: [*const ScxRecord<N>; MAX_V],
    /// Bitmask over `v` selecting `R`, the records to finalize.
    pub(crate) finalize_mask: u8,
    /// The record containing the field to modify (must be in `v`).
    pub(crate) fld_node: *const N,
    /// Which child of `fld_node` to modify.
    pub(crate) fld_idx: usize,
    /// Expected value of the field (read by the linked LLX on `fld_node`).
    pub(crate) old: *const N,
    /// New value to store.
    pub(crate) new: *const N,
}

// SAFETY: the raw pointers are owned by the epoch-managed heap; descriptors
// are shared across threads only via `Atomic` info fields and all access to
// pointees is mediated by epoch guards. Mutable state is atomic.
unsafe impl<N: Record> Send for ScxRecord<N> {}
unsafe impl<N: Record> Sync for ScxRecord<N> {}

impl<N: Record> ScxRecord<N> {
    /// Current state. `Relaxed` would be unsound for the protocol; helpers
    /// rely on seeing `all_frozen`/field writes ordered before `COMMITTED`.
    pub(crate) fn load_state(&self) -> u8 {
        self.state.load(Ordering::SeqCst)
    }

    /// Whether this SCX committed (for testing / introspection).
    pub fn committed(&self) -> bool {
        self.load_state() == COMMITTED
    }
}

/// State presented by a (possibly null) `info` pointer: a record that was
/// never frozen behaves as if its last SCX aborted.
pub(crate) fn state_of<N: Record>(info: Shared<'_, ScxRecord<N>>) -> u8 {
    if info.is_null() {
        ABORTED
    } else {
        // SAFETY: non-null info pointers are valid while the caller's guard
        // is pinned (descriptor frees are epoch-deferred).
        unsafe { info.deref() }.load_state()
    }
}
