//! Thread-local slot caches for Data-record allocations.
//!
//! The tree update template allocates fresh records on every update (PC7)
//! and retires the replaced ones through the epoch collector — a
//! steady-state flow of same-layout allocate/free pairs. With cache-aligned
//! records (`#[repr(align(64))]`), every one of those allocations takes the
//! allocator's *aligned* slow path, which on glibc is ~5× the cost of a
//! plain small malloc and dominates the update hot path.
//!
//! This module short-circuits the flow: freed record slots are pushed onto
//! a **thread-local** freelist (the link pointer is written into the free
//! slot itself, so there is no per-slot header), and the next allocation of
//! the same layout pops one — two `Cell` operations, no atomics, no
//! allocator. Only a cache miss calls `std::alloc::alloc` and only a full
//! cache calls `std::alloc::dealloc`.
//!
//! Slots are plain global-allocator memory: a slot obtained here may be
//! freed by `Box::from_raw` (same allocator, same layout) and a `Box`
//! allocation may be released here — the two are interchangeable, so
//! callers that bypass the cache stay correct.
//!
//! Frees land on whichever thread runs the epoch-deferred disposal, not
//! necessarily the allocating thread. That is fine: the freelist is purely
//! local, so slots simply migrate between threads' caches; a skewed flow
//! (one thread only frees) is bounded by [`SLAB_CAP`] and spills to the
//! real allocator.

use std::alloc::Layout;
use std::cell::RefCell;

/// Maximum cached slots per (thread, layout). Epoch collection returns
/// retirements in bursts — on an oversubscribed host a burst spans a whole
/// scheduler rotation (tens of thousands of records) — so the cap is sized
/// for bursts, not steady state; beyond it, slots go back to the global
/// allocator. 4096 × 128-byte nodes = 512 KiB per thread, the price of
/// keeping the update path allocator-free through a worst-case burst.
pub const SLAB_CAP: usize = 4096;

struct SlabClass {
    layout: Layout,
    /// Head of the intrusive freelist: each free slot's first word holds
    /// the pointer to the next free slot.
    head: *mut u8,
    len: usize,
}

thread_local! {
    static SLABS: RefCell<Vec<SlabClass>> = const { RefCell::new(Vec::new()) };
}

impl Drop for SlabClass {
    fn drop(&mut self) {
        // Thread exit: every cached slot belongs to this thread alone.
        let mut p = self.head;
        while !p.is_null() {
            // SAFETY: `p` is a free slot we own; its first word is the link.
            unsafe {
                let next = *(p as *mut *mut u8);
                std::alloc::dealloc(p, self.layout);
                p = next;
            }
        }
    }
}

/// Allocates a slot of `layout`, reusing a thread-locally cached one when
/// available. The returned memory is uninitialized.
///
/// `layout.size()` must be at least a pointer (the freelist link lives in
/// the slot); all Data-records easily clear that bar.
pub fn alloc_slot(layout: Layout) -> *mut u8 {
    debug_assert!(layout.size() >= std::mem::size_of::<*mut u8>());
    let cached = SLABS.try_with(|slabs| {
        let mut slabs = slabs.borrow_mut();
        let class = slabs.iter_mut().find(|c| c.layout == layout)?;
        if class.head.is_null() {
            return None;
        }
        let slot = class.head;
        // SAFETY: free slots store their successor in the first word.
        class.head = unsafe { *(slot as *mut *mut u8) };
        class.len -= 1;
        Some(slot)
    });
    if let Ok(Some(slot)) = cached {
        return slot;
    }
    // Miss (or thread teardown): the real allocator.
    // SAFETY: layout is non-zero-size (checked by debug_assert + callers).
    let p = unsafe { std::alloc::alloc(layout) };
    assert!(!p.is_null(), "record allocation failed");
    p
}

/// Releases a slot of `layout` into the thread-local cache, or to the
/// global allocator when the cache is full (or TLS is tearing down).
///
/// # Safety
/// `ptr` must have been allocated with `layout` from the global allocator
/// (directly, via `Box`, or via [`alloc_slot`]) and must not be referenced
/// any more.
pub unsafe fn free_slot(ptr: *mut u8, layout: Layout) {
    let cached = SLABS.try_with(|slabs| {
        let mut slabs = slabs.borrow_mut();
        let class = match slabs.iter_mut().find(|c| c.layout == layout) {
            Some(c) => c,
            None => {
                slabs.push(SlabClass {
                    layout,
                    head: std::ptr::null_mut(),
                    len: 0,
                });
                slabs.last_mut().expect("just pushed")
            }
        };
        if class.len >= SLAB_CAP {
            return false;
        }
        *(ptr as *mut *mut u8) = class.head;
        class.head = ptr;
        class.len += 1;
        true
    });
    if !matches!(cached, Ok(true)) {
        std::alloc::dealloc(ptr, layout);
    }
}

/// Allocates `value` through the slot cache, returning an
/// [`Owned`](crossbeam_epoch::Owned)
/// indistinguishable from `Owned::new` (same allocator contract).
///
/// This is the record-construction fast path: the tree update template
/// replaces nodes on every update, and the freed slots round-trip through
/// the cache instead of the allocator's aligned slow path.
pub fn alloc_owned<T>(value: T) -> crossbeam_epoch::Owned<T> {
    let ptr = alloc_slot(Layout::new::<T>()) as *mut T;
    // SAFETY: fresh uninitialized slot of T's layout; write then hand
    // ownership to Owned (whose representation is the raw pointer).
    unsafe {
        ptr.write(value);
        <crossbeam_epoch::Owned<T> as crossbeam_epoch::Pointer<T>>::from_usize(ptr as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_round_trip_through_cache() {
        let layout = Layout::new::<[u64; 16]>();
        let a = alloc_slot(layout);
        // SAFETY: `a` came from `alloc_slot` with the same layout.
        unsafe { free_slot(a, layout) };
        let b = alloc_slot(layout);
        assert_eq!(a, b, "cache must hand back the freed slot");
        // SAFETY: `b` came from `alloc_slot` with the same layout.
        unsafe { free_slot(b, layout) };
    }

    #[test]
    fn distinct_layouts_use_distinct_classes() {
        let l1 = Layout::new::<[u64; 8]>();
        let l2 = Layout::new::<[u64; 16]>();
        let a = alloc_slot(l1);
        // SAFETY: `a` came from `alloc_slot` with layout `l1`.
        unsafe { free_slot(a, l1) };
        let b = alloc_slot(l2);
        assert_ne!(a, b);
        // SAFETY: `b` came from `alloc_slot` with layout `l2`.
        unsafe { free_slot(b, l2) };
    }

    #[test]
    fn box_interop() {
        // A Box allocation may be released into the cache and come back
        // out as a slot (same allocator, same layout).
        let boxed: *mut [u64; 16] = Box::into_raw(Box::new([7u64; 16]));
        let layout = Layout::new::<[u64; 16]>();
        // SAFETY: `boxed` came from the global allocator with exactly `layout`.
        unsafe { free_slot(boxed as *mut u8, layout) };
        let again = alloc_slot(layout);
        assert_eq!(again, boxed as *mut u8);
        // SAFETY: `again` came from `alloc_slot` with the same layout.
        unsafe { free_slot(again, layout) };
    }

    #[test]
    fn owned_from_cache_drops_cleanly() {
        let owned = alloc_owned(vec![1u8, 2, 3]);
        assert_eq!(&**owned, &[1, 2, 3]);
        drop(owned.into_box()); // Box::from_raw path — interchangeable
    }
}
