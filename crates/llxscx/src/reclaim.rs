//! Memory reclamation for records and descriptors.
//!
//! The PODC'13/PPoPP'14 papers assume garbage collection. We reproduce the
//! same safety guarantees with two cooperating mechanisms:
//!
//! 1. **Epoch-based reclamation (crossbeam-epoch)** for *when* memory may be
//!    freed: anything unlinked from the shared structure is freed only after
//!    every thread pinned at unlink time has unpinned, so concurrent
//!    traversals through removed nodes (correctness property C3 of the
//!    paper) remain safe.
//! 2. **Install counting of SCX-records** for *whether* a descriptor is
//!    still reachable: `refs(d)` counts exactly the records whose `info`
//!    field currently points at `d`. It is incremented by the helper whose
//!    freezing CAS installed `d` and decremented — epoch-deferred — when a
//!    later freezing CAS replaces `d`, or when the record itself is
//!    disposed. At zero the descriptor returns to its owner's
//!    [`pool`](crate::pool).
//!
//! **Why deferred decrements make the count exact.** An increment always
//! happens under a guard pinned when `d` was *observed* installed on some
//! record. The matching decrement (for the replacement that ends that
//! observation window) is scheduled through the epoch machinery, so it
//! executes only after every such pin has ended — i.e. after every pending
//! increment has landed. Hence when a decrement brings `refs` to zero, no
//! pinned thread can still be using a pointer to `d` that it loaded from an
//! `info` field, and the descriptor can be reclaimed on the spot.
//!
//! **Why expected values need no keep-alive references.** A live descriptor
//! `B` names, in its `info_fields`, the descriptors its linked LLXs
//! observed — helpers CAS records' `info` against those words long after
//! the LLXs. The pre-reuse design kept every named descriptor allocated by
//! counting those mentions into `refs`, which chains descriptors (`A`
//! named by `B`, `B` by `C`, ...): the head of the chain always has a live
//! install, so nothing in the chain was ever reclaimed — a leak of one
//! descriptor per committed SCX, and a pool that never received anything
//! back. Pooling replaces the keep-alive with the **incarnation tag**:
//! every published `info` word carries the descriptor's sequence number in
//! its 7 alignment bits, and a checkout bumps the sequence, so a helper's
//! stale expectation from `A`'s previous life mismatches on the tag and
//! the freezing CAS correctly fails. The compare itself touches no memory
//! behind the expected pointer, so it is safe even if `A` was reused. The
//! residual risk is the classic bounded-tag ABA: a spurious match needs the
//! same record to hold the *same allocation* at a *tag-equal incarnation*
//! (128 checkouts later) while `B` is still in progress — and an
//! overflow-freed allocation to be handed back by the allocator at the
//! same address in that window. This is the trade Brown's "Reuse, don't
//! Recycle" line of work makes explicit; widen
//! [`SEQ_TAG_BITS`](crate::descriptor::SEQ_TAG_BITS) via the descriptor
//! alignment if a deployment needs more headroom.
//!
//! **Reclaim = reuse.** Reaching `refs == 0` used to free the descriptor;
//! it now returns it to the owning thread's [`pool`](crate::pool) for
//! reuse by a later SCX, and only pool overflow actually frees memory.

use crossbeam_epoch::Guard;

use crate::descriptor::ScxRecord;
use crate::record::Record;

/// Increments the reference count of a descriptor.
///
/// # Safety
/// `d` must point to a live descriptor, and the caller must hold a guard
/// pinned since `d` was observed installed in some record's `info` field.
pub(crate) unsafe fn inc_refs<N: Record>(d: *const ScxRecord<N>) {
    // Relaxed suffices for increments (the classic `Arc::clone` argument):
    // a new reference is always minted from an existing one, so the count
    // cannot be observed at zero while an increment is pending, and no
    // other memory is published by taking a reference.
    let prev = (*d).refs.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    debug_assert!(prev < usize::MAX / 2, "descriptor refcount overflow");
}

/// Performs one decrement of `start`'s reference count, returning it to its
/// owner's pool if the count reaches zero.
///
/// # Safety
/// Must be called at most once per previous increment, and only at a time
/// when the reference being released can no longer be used to reach the
/// descriptor (in this crate: from inside an epoch-deferred closure, or for
/// a descriptor that was never published).
pub(crate) unsafe fn dec_refs<N: Record>(d: *const ScxRecord<N>) {
    // Release on the way down (the classic `Arc::drop` argument): our
    // prior uses of the descriptor must not be reordered after the
    // decrement that may hand it to a reuser.
    let prev = (*d).refs.fetch_sub(1, std::sync::atomic::Ordering::Release);
    debug_assert!(prev > 0, "descriptor refcount underflow");
    if prev == 1 {
        // Acquire pairs with every other holder's Release decrement: all
        // their uses happen-before the reuse/free below. An acquire *load*
        // rather than a standalone fence, for two reasons: (1) correctness
        // is identical — every decrement is an RMW, so each earlier Release
        // decrement's release sequence extends to the final value, and an
        // acquiring read of that value synchronizes with all of them (the
        // same reasoning std's Arc uses under ThreadSanitizer); (2) TSan
        // does not model standalone fences, so the fence form makes every
        // descriptor reuse a false-positive data race in the CI TSan job,
        // while the load form is fully visible to it. Cost: one extra
        // already-cached load on the zero-crossing path only.
        let observed = (*d).refs.load(std::sync::atomic::Ordering::Acquire);
        debug_assert_eq!(observed, 0, "racing increment on a dead descriptor");
        // The refcount-based free path is now a return-to-pool path;
        // only pool overflow actually frees memory.
        crate::pool::release(d as *mut ScxRecord<N>);
    }
}

/// Schedules an epoch-deferred decrement of `d`'s reference count.
///
/// # Safety
/// As for [`dec_refs`]; the deferral provides the "no pending increments"
/// timing argument described in the module docs.
pub(crate) unsafe fn defer_dec_refs<N: Record>(d: *const ScxRecord<N>, guard: &Guard) {
    let d = d as usize;
    guard.defer_unchecked(move || dec_refs::<N>(d as *const ScxRecord<N>));
}

/// Frees a record: releases its reference on its last descriptor (if any)
/// and drops the record's box. Child pointers are *not* followed — the tree
/// update template guarantees that every removed record is retired exactly
/// once, and fringe children remain in the tree.
///
/// # Safety
/// `ptr` must be a record allocated via `Box` that is no longer reachable by
/// any thread (typically: called from an epoch-deferred closure scheduled
/// after the record was finalized and unlinked, or during structure drop).
pub unsafe fn dispose_record<N: Record>(ptr: *const N) {
    // SEQCST: LLX/SCX proof assumes one total order over info/mark/child updates (paper §4).
    let info = (*ptr).header().info.load(
        std::sync::atomic::Ordering::SeqCst,
        crossbeam_epoch::unprotected(),
    );
    if !info.is_null() {
        dec_refs(info.as_raw());
    }
    // Release the slot through the thread-local record cache
    // ([`slab`](crate::slab)): record allocate/free pairs dominate the
    // update path, and cache-aligned records make the allocator's aligned
    // path expensive. Box-allocated records are interchangeable with slab
    // slots (same allocator, same layout).
    std::ptr::drop_in_place(ptr as *mut N);
    crate::slab::free_slot(ptr as *mut u8, std::alloc::Layout::new::<N>());
}

/// Schedules an epoch-deferred [`dispose_record`].
///
/// # Safety
/// `ptr` must have been unlinked from the shared structure (finalized) and
/// must be retired exactly once.
pub unsafe fn defer_dispose_record<N: Record>(ptr: *const N, guard: &Guard) {
    let p = ptr as usize;
    guard.defer_unchecked(move || dispose_record::<N>(p as *const N));
}
