//! Memory reclamation for records and descriptors.
//!
//! The PODC'13/PPoPP'14 papers assume garbage collection. We reproduce the
//! same safety guarantees with two cooperating mechanisms:
//!
//! 1. **Epoch-based reclamation (crossbeam-epoch)** for *when* memory may be
//!    freed: anything unlinked from the shared structure is freed only after
//!    every thread pinned at unlink time has unpinned, so concurrent
//!    traversals through removed nodes (correctness property C3 of the
//!    paper) remain safe.
//! 2. **Reference counting of SCX-records** for *whether* a descriptor is
//!    still reachable: unlike tree nodes, a descriptor is reachable from up
//!    to `|V|` records' `info` fields *and* from later descriptors'
//!    `info_fields` (helpers CAS against those expected values, so an
//!    expected descriptor must stay allocated while any descriptor naming it
//!    is alive — otherwise a recycled allocation could alias the expected
//!    pointer and a stale freezing CAS could succeed spuriously).
//!
//! `refs(d)` counts:
//! * records whose `info` currently points at `d` (incremented by the
//!   helper whose freezing CAS installed `d`; decremented — epoch-deferred —
//!   when a later freezing CAS replaces `d`, or when the record itself is
//!   disposed);
//! * live descriptors listing `d` in their `info_fields` (incremented at
//!   descriptor creation, under the same guard pin as the LLX that observed
//!   `d`; decremented when that descriptor is freed).
//!
//! **Why deferred decrements make the count exact.** An increment always
//! happens under a guard pinned when `d` was *observed* installed on some
//! record. The matching decrement (for the replacement that ends that
//! observation window) is scheduled through the epoch machinery, so it
//! executes only after every such pin has ended — i.e. after every pending
//! increment has landed. Hence when a decrement brings `refs` to zero, no
//! thread can hold or mint a reference to `d`, and it can be freed on the
//! spot, cascading into the `info_fields` it referenced (iteratively, to
//! bound stack depth).

use crossbeam_epoch::Guard;

use crate::descriptor::ScxRecord;
use crate::record::Record;

/// Increments the reference count of a descriptor.
///
/// # Safety
/// `d` must point to a live descriptor, and the caller must hold a guard
/// pinned since `d` was observed installed in some record's `info` field.
pub(crate) unsafe fn inc_refs<N: Record>(d: *const ScxRecord<N>) {
    let prev = (*d).refs.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    debug_assert!(prev < usize::MAX / 2, "descriptor refcount overflow");
}

/// Performs one decrement of `start`'s reference count, freeing it (and
/// cascading into the descriptors it references) if the count reaches zero.
///
/// # Safety
/// Must be called at most once per previous increment, and only at a time
/// when the reference being released can no longer be used to reach the
/// descriptor (in this crate: from inside an epoch-deferred closure, or for
/// a descriptor that was never published).
pub(crate) unsafe fn dec_refs<N: Record>(start: *const ScxRecord<N>) {
    let mut pending: Vec<*const ScxRecord<N>> = vec![start];
    while let Some(d) = pending.pop() {
        let prev = (*d).refs.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
        debug_assert!(prev > 0, "descriptor refcount underflow");
        if prev == 1 {
            let desc = Box::from_raw(d as *mut ScxRecord<N>);
            for i in 0..desc.len {
                let f = desc.info_fields[i];
                if !f.is_null() {
                    pending.push(f);
                }
            }
            drop(desc);
        }
    }
}

/// Schedules an epoch-deferred decrement of `d`'s reference count.
///
/// # Safety
/// As for [`dec_refs`]; the deferral provides the "no pending increments"
/// timing argument described in the module docs.
pub(crate) unsafe fn defer_dec_refs<N: Record>(d: *const ScxRecord<N>, guard: &Guard) {
    let d = d as usize;
    guard.defer_unchecked(move || dec_refs::<N>(d as *const ScxRecord<N>));
}

/// Frees a record: releases its reference on its last descriptor (if any)
/// and drops the record's box. Child pointers are *not* followed — the tree
/// update template guarantees that every removed record is retired exactly
/// once, and fringe children remain in the tree.
///
/// # Safety
/// `ptr` must be a record allocated via `Box` that is no longer reachable by
/// any thread (typically: called from an epoch-deferred closure scheduled
/// after the record was finalized and unlinked, or during structure drop).
pub unsafe fn dispose_record<N: Record>(ptr: *const N) {
    let info = (*ptr).header().info.load(
        std::sync::atomic::Ordering::SeqCst,
        crossbeam_epoch::unprotected(),
    );
    if !info.is_null() {
        dec_refs(info.as_raw());
    }
    drop(Box::from_raw(ptr as *mut N));
}

/// Schedules an epoch-deferred [`dispose_record`].
///
/// # Safety
/// `ptr` must have been unlinked from the shared structure (finalized) and
/// must be retired exactly once.
pub unsafe fn defer_dispose_record<N: Record>(ptr: *const N, guard: &Guard) {
    let p = ptr as usize;
    guard.defer_unchecked(move || dispose_record::<N>(p as *const N));
}
