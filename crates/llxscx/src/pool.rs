//! Per-thread SCX-descriptor pools.
//!
//! Brown's follow-up line of work on descriptor-based primitives ("Reuse,
//! don't Recycle", DISC'15) observes that descriptor *allocation* dominates
//! the update path once the protocol itself is cheap. This module removes
//! that cost: every thread keeps a small pool of [`ScxRecord`]s per record
//! type, [`scx`](crate::scx) checks one out instead of heap-allocating, and
//! the reclamation path in [`reclaim`](crate::reclaim) returns descriptors
//! to their owning pool instead of freeing them. Only pool overflow (more
//! than `POOL_CAP` descriptors simultaneously returned) actually frees
//! memory — and that release happens on the same epoch-deferred path that
//! used to free every descriptor.
//!
//! # Structure
//!
//! A pool is a Treiber stack of quiescent descriptors; the owner's
//! *teardown flag* rides in the head word's low bits (descriptors are
//! 128-byte aligned) and the depth bound is a relaxed side counter:
//!
//! * **Checkout** (`acquire`) happens only on the owning thread (it is the
//!   thread-local fast path of `scx`), so the stack has a *single consumer*
//!   and the classic Treiber-pop ABA cannot occur: nodes are only ever
//!   removed by us, so the head we read cannot be popped and re-pushed
//!   behind our back.
//! * **Return** (`release`) can happen on *any* thread — the final
//!   reference drop runs inside an epoch-deferred closure executed by
//!   whichever thread performs the collection — so pushes are multi-producer
//!   CAS pushes. A push that observes the stack full (`POOL_CAP`) or
//!   closed (the `DEAD` bit) frees the descriptor instead.
//!
//! # Lifetime
//!
//! A pool must outlive its owner thread: descriptors checked out by a dying
//! thread can still be referenced from `info` fields of live trees. On
//! exit the owner *closes* the stack by swapping the head for the `DEAD`
//! marker — an atomic capture, so a racing return either lands before the
//! swap (and is freed with the captured list) or observes `DEAD` and frees
//! its descriptor itself; none are stranded. The `allocs` counter (touched
//! only on the allocate/free slow paths, never per-SCX) tracks outstanding
//! allocations plus the owner's own reference; whoever drops it to zero
//! frees the `PoolShared`.

use std::any::TypeId;
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::descriptor::ScxRecord;
use crate::record::Record;

/// Maximum number of quiescent descriptors parked per (thread, record
/// type).
///
/// An SCX holds at most one descriptor in flight per thread, but returns
/// arrive in epoch-deferred batches — on an oversubscribed host a batch
/// spans a whole scheduler rotation — so the cap is sized for bursts
/// (4096 × 256-byte descriptors = 1 MiB per thread, worst case).
pub(crate) const POOL_CAP: usize = 4096;

/// Head-word bit set when the owner thread exited and closed the stack
/// (descriptors are 128-byte aligned, so the low bits of the head are
/// free).
const DEAD: usize = 0x1;
/// The pointer part of the head word.
const PTR_MASK: usize = !0x7f;

/// Shared part of a per-thread descriptor pool; heap-allocated, freed by
/// the last party (owner thread or returning descriptor) to let go.
pub(crate) struct PoolShared<N> {
    /// Treiber stack head: descriptor pointer | [`DEAD`].
    head: AtomicUsize,
    /// Approximate stack depth, maintained Relaxed next to the push/pop
    /// CASes; only used to bound the stack, so transient skew is harmless.
    stacked: AtomicUsize,
    /// Outstanding descriptor allocations + 1 for the owner thread.
    /// Touched only on allocate/free slow paths, never per checkout.
    allocs: AtomicUsize,
    _marker: std::marker::PhantomData<*const N>,
}

impl<N: Record> PoolShared<N> {
    fn new() -> Self {
        PoolShared {
            head: AtomicUsize::new(0),
            stacked: AtomicUsize::new(0),
            // The owner thread's reference.
            allocs: AtomicUsize::new(1),
            _marker: std::marker::PhantomData,
        }
    }
}

/// One registered pool in the thread-local registry, with a type-erased
/// "owner exited" hook so the registry itself needs no generics.
struct PoolEntry {
    type_id: TypeId,
    pool: *const (),
    on_owner_exit: unsafe fn(*const ()),
}

impl Drop for PoolEntry {
    fn drop(&mut self) {
        // SAFETY: `pool` was created by `registered_pool::<N>` with the
        // matching `on_owner_exit = owner_exit::<N>`.
        unsafe { (self.on_owner_exit)(self.pool) }
    }
}

thread_local! {
    static POOLS: RefCell<Vec<PoolEntry>> = const { RefCell::new(Vec::new()) };
}

/// Releases one `allocs` reference; the zero-crossing party frees the pool.
///
/// # Safety
/// The caller gives up one counted reference to `pool` and must not touch
/// the pool through this pointer afterwards.
unsafe fn drop_alloc_ref<N: Record>(pool: *const PoolShared<N>) {
    // AcqRel: the release half publishes our last use of the pool, the
    // acquire half (on the zero crossing) orders it before the free.
    if (*pool).allocs.fetch_sub(1, Ordering::AcqRel) == 1 {
        drop(Box::from_raw(pool as *mut PoolShared<N>));
    }
}

/// Owner-thread exit: close the stack (atomic swap to `DEAD`), free the
/// captured descriptors, and drop the owner's pool reference.
///
/// # Safety
/// `pool` must be the `PoolShared<N>` this thread registered at
/// construction; called exactly once, from the owner's TLS destructor.
unsafe fn owner_exit<N: Record>(pool: *const ()) {
    let pool = pool as *const PoolShared<N>;
    let captured = (*pool).head.swap(DEAD, Ordering::AcqRel);
    let mut p = (captured & PTR_MASK) as *mut ScxRecord<N>;
    while !p.is_null() {
        let next = (*p).free_next.load(Ordering::Relaxed);
        drop(Box::from_raw(p));
        drop_alloc_ref(pool);
        p = next;
    }
    drop_alloc_ref(pool);
}

/// The calling thread's pool for record type `N`, registered on first use.
fn registered_pool<N: Record>() -> *const PoolShared<N> {
    POOLS.with(|pools| {
        let mut pools = pools.borrow_mut();
        let tid = TypeId::of::<N>();
        if let Some(e) = pools.iter().find(|e| e.type_id == tid) {
            return e.pool as *const PoolShared<N>;
        }
        let pool = Box::into_raw(Box::new(PoolShared::<N>::new())) as *const PoolShared<N>;
        pools.push(PoolEntry {
            type_id: tid,
            pool: pool as *const (),
            on_owner_exit: owner_exit::<N>,
        });
        pool
    })
}

/// Point-in-time statistics of the calling thread's descriptor pool for
/// one record type — the observable face of the reuse machinery (useful
/// in tests and leak hunts; the counters are maintained on the slow
/// paths only, so reading them costs nothing on the SCX fast path).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Quiescent descriptors currently parked in the pool.
    pub pooled: usize,
    /// Descriptors allocated through this pool and not yet freed
    /// (parked + checked out + still referenced by the structure).
    pub allocated: usize,
}

/// Statistics of the calling thread's pool for record type `N`
/// (registering the pool if this thread has not used one yet).
///
/// # Example
///
/// Steady-state updates allocate **no** descriptors: after a warm-up
/// SCX, cycling further SCXs recycles the same allocation through the
/// pool.
///
/// ```
/// use llxscx::{llx, scx, pin, Atomic, Owned, Record, RecordHeader, ScxArgs};
///
/// struct N { header: RecordHeader<N>, kids: [Atomic<N>; 2] }
/// impl Record for N {
///     const ARITY: usize = 2;
///     fn header(&self) -> &RecordHeader<Self> { &self.header }
///     fn child(&self, i: usize) -> &Atomic<Self> { &self.kids[i] }
/// }
/// fn node() -> Owned<N> {
///     Owned::new(N { header: RecordHeader::new(), kids: [Atomic::null(), Atomic::null()] })
/// }
///
/// let root = {
///     let guard = &pin();
///     node().into_shared(guard).as_raw()
/// };
/// for _ in 0..300u64 {
///     {
///         let guard = &pin();
///         let root = llxscx::Shared::from(root);
///         let h = llx(root, guard).unwrap();
///         let fresh = node().into_shared(guard);
///         let old = h.right();
///         let args = ScxArgs { v: &[h], finalize: 0, fld_record: 0, fld_idx: 1, new: fresh };
///         assert!(scx(&args, guard));
///         if !old.is_null() {
///             // The replaced child is ours to retire (it was not in R).
///             unsafe { llxscx::reclaim::defer_dispose_record(old.as_raw(), guard) };
///         }
///     }
///     // Let the epoch-deferred reference drops run so descriptors
///     // return to the pool.
///     llxscx::epoch::flush_and_collect();
/// }
/// let stats = llxscx::pool::local_stats::<N>();
/// assert!(stats.allocated <= 8, "descriptors were not reused: {stats:?}");
/// assert!(stats.pooled >= 1);
/// ```
pub fn local_stats<N: Record>() -> PoolStats {
    let pool = registered_pool::<N>();
    // SAFETY: the pool outlives its owner thread (us).
    unsafe {
        PoolStats {
            pooled: (*pool).stacked.load(Ordering::Relaxed),
            // `allocs` counts outstanding allocations + 1 owner reference.
            allocated: (*pool).allocs.load(Ordering::Relaxed).saturating_sub(1),
        }
    }
}

/// Checks a quiescent descriptor out of the calling thread's pool,
/// allocating a fresh one only when the pool is empty. Bumps the
/// incarnation counter (`seq`); the caller must tag every published pointer
/// with the new value.
///
/// The returned descriptor has `refs == 0` and is exclusively owned by the
/// caller until a freezing CAS publishes it. Fast path: one CAS.
pub(crate) fn acquire<N: Record>() -> *mut ScxRecord<N> {
    let pool = registered_pool::<N>();
    // SAFETY: `pool` stays alive while the owner thread does (its `allocs`
    // reference is only dropped by the POOLS destructor), and only the
    // owner pops, so popped nodes are exclusively ours.
    unsafe {
        let desc = loop {
            let h = (*pool).head.load(Ordering::Acquire);
            let ptr = (h & PTR_MASK) as *mut ScxRecord<N>;
            if ptr.is_null() {
                // Pool miss: allocate (slow path — the only place the
                // `allocs` counter is touched during normal operation).
                (*pool).allocs.fetch_add(1, Ordering::Relaxed);
                break Box::into_raw(Box::new(ScxRecord::new_in_pool(pool)));
            }
            let next = (*ptr).free_next.load(Ordering::Relaxed) as usize;
            // Single consumer: `ptr` cannot have been popped and re-pushed
            // between the load and this CAS, so `next` is still current.
            if (*pool)
                .head
                .compare_exchange(h, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                (*pool).stacked.fetch_sub(1, Ordering::Relaxed);
                break ptr;
            }
        };
        // New incarnation: stale expected-values carrying the old tag can
        // no longer freeze records for this descriptor. Plain load/store —
        // we own the quiescent descriptor exclusively.
        let seq = (*desc).seq.load(Ordering::Relaxed);
        (*desc).seq.store(seq.wrapping_add(1), Ordering::Relaxed);
        desc
    }
}

/// Returns a quiescent (`refs == 0`) descriptor to its owning pool, or
/// frees it when the pool is full or closed. Fast path: one CAS.
///
/// # Safety
/// The caller must hold the *last* reference: `refs == 0` and no thread can
/// reach the descriptor any more (same precondition the free path had).
pub(crate) unsafe fn release<N: Record>(desc: *mut ScxRecord<N>) {
    let pool = (*desc).pool;
    let mut h = (*pool).head.load(Ordering::Relaxed);
    loop {
        if h & DEAD != 0 || (*pool).stacked.load(Ordering::Relaxed) >= POOL_CAP {
            // Owner exited or pool full: free. This is the only path that
            // frees descriptor memory, and it runs where the pre-pool code
            // freed *every* descriptor (typically inside an epoch-deferred
            // closure). The `DEAD` bit makes teardown race-free: a return
            // either lands before the owner's closing swap (and is freed
            // with the captured list) or sees `DEAD` here.
            drop(Box::from_raw(desc));
            drop_alloc_ref(pool);
            return;
        }
        (*desc)
            .free_next
            .store((h & PTR_MASK) as *mut ScxRecord<N>, Ordering::Relaxed);
        // Release: the consumer's acquiring pop (or the owner's closing
        // swap) must see our `free_next` store.
        match (*pool).head.compare_exchange_weak(
            h,
            desc as usize,
            Ordering::Release,
            Ordering::Relaxed,
        ) {
            Ok(_) => {
                (*pool).stacked.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(cur) => h = cur,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordHeader;
    use crossbeam_epoch::Atomic;

    struct PoolNode {
        header: RecordHeader<PoolNode>,
        children: [Atomic<PoolNode>; 2],
    }
    impl Record for PoolNode {
        const ARITY: usize = 2;
        fn header(&self) -> &RecordHeader<Self> {
            &self.header
        }
        fn child(&self, i: usize) -> &Atomic<Self> {
            &self.children[i]
        }
    }

    #[test]
    fn acquire_release_reuses_allocation() {
        let d1 = acquire::<PoolNode>();
        // SAFETY: `d1` came from `acquire` and has not been released.
        let seq1 = unsafe { (*d1).seq.load(Ordering::Relaxed) };
        // SAFETY: `d1` is a live descriptor this test checked out.
        unsafe { release(d1) };
        let d2 = acquire::<PoolNode>();
        // SAFETY: `d2` came from `acquire` and has not been released.
        let seq2 = unsafe { (*d2).seq.load(Ordering::Relaxed) };
        assert_eq!(d1, d2, "pool should hand back the parked descriptor");
        assert_eq!(seq2, seq1 + 1, "every checkout bumps the incarnation");
        // SAFETY: `d2` is live and released exactly once.
        unsafe { release(d2) };
    }

    #[test]
    fn cross_thread_release_lands_in_owner_pool() {
        let d = acquire::<PoolNode>() as usize;
        // SAFETY: `d` is a live descriptor; this is its only release.
        std::thread::spawn(move || unsafe { release(d as *mut ScxRecord<PoolNode>) })
            .join()
            .unwrap();
        let d2 = acquire::<PoolNode>();
        assert_eq!(d2 as usize, d, "cross-thread return reaches the owner");
        // SAFETY: `d2` is live and released exactly once.
        unsafe { release(d2) };
    }

    #[test]
    fn overflow_frees_instead_of_stacking() {
        // Check out CAP + 8 descriptors, then return them all: the pool
        // keeps CAP and frees the rest; refills must reuse parked memory.
        let descs: Vec<*mut ScxRecord<PoolNode>> = (0..POOL_CAP + 8).map(|_| acquire()).collect();
        for &d in &descs {
            // SAFETY: each descriptor from `acquire` is released exactly once.
            unsafe { release(d) };
        }
        let again: Vec<*mut ScxRecord<PoolNode>> = (0..POOL_CAP).map(|_| acquire()).collect();
        for &d in &again {
            assert!(descs.contains(&d), "refill must reuse parked memory");
            // SAFETY: each descriptor from `acquire` is released exactly once.
            unsafe { release(d) };
        }
    }

    #[test]
    fn owner_exit_frees_parked_and_accepts_stragglers() {
        // A descriptor checked out by a thread that exits must still be
        // returnable afterwards (it is freed, not stranded).
        let d = std::thread::spawn(|| {
            let keep = acquire::<PoolNode>();
            let parked = acquire::<PoolNode>();
            // SAFETY: `parked` is live; released once, before the owner exits.
            unsafe { release(parked) }; // parked in the pool at exit
            keep as usize
        })
        .join()
        .unwrap();
        // The owner is gone; this return must take the DEAD path.
        // SAFETY: `keep` leaked past the owner's exit; this single release
        // must take the DEAD path and free it.
        unsafe { release(d as *mut ScxRecord<PoolNode>) };
    }
}
