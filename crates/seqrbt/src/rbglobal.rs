//! `RBGlobal`: the paper's coarse-grained baseline — the highly optimized
//! sequential red-black tree with every operation under one global lock.

use parking_lot::Mutex;

use crate::RbTree;

/// A thread-safe ordered map obtained by wrapping [`RbTree`] in a single
/// global mutex. Every operation — including queries — serializes, so
/// throughput is flat (or worse) in the number of threads; it exists as the
/// coarse-grained end of the experimental spectrum.
pub struct RbGlobal<K, V> {
    inner: Mutex<RbTree<K, V>>,
}

impl<K: Ord + Clone, V: Clone> Default for RbGlobal<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone, V: Clone> RbGlobal<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        RbGlobal {
            inner: Mutex::new(RbTree::new()),
        }
    }

    /// Looks up `key` (serialized on the global lock).
    pub fn get(&self, key: &K) -> Option<V> {
        self.inner.lock().get(key).cloned()
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.inner.lock().contains_key(key)
    }

    /// Inserts `key → value`; returns the previous value.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.inner.lock().insert(key, value)
    }

    /// Removes `key`; returns its value.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.inner.lock().remove(key)
    }

    /// Smallest key strictly greater than `key`.
    pub fn successor(&self, key: &K) -> Option<(K, V)> {
        self.inner
            .lock()
            .successor(key)
            .map(|(k, v)| (k.clone(), v.clone()))
    }

    /// Largest key strictly smaller than `key`.
    pub fn predecessor(&self, key: &K) -> Option<(K, V)> {
        self.inner
            .lock()
            .predecessor(key)
            .map(|(k, v)| (k.clone(), v.clone()))
    }

    /// All pairs with keys in `bounds`, sorted. Atomic by construction:
    /// the global lock is held for the whole walk (which is exactly why
    /// coarse-grained range scans don't scale).
    pub fn range<B: std::ops::RangeBounds<K>>(&self, bounds: B) -> Vec<(K, V)> {
        self.inner.lock().range(bounds)
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Sorted snapshot of the contents.
    pub fn collect(&self) -> Vec<(K, V)> {
        self.inner.lock().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn concurrent_smoke() {
        let m = Arc::new(RbGlobal::new());
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    let base = tid * 500;
                    for i in 0..500 {
                        assert_eq!(m.insert(base + i, i), None);
                    }
                    for i in (0..500).step_by(2) {
                        assert_eq!(m.remove(&(base + i)), Some(i));
                    }
                });
            }
        });
        assert_eq!(m.len(), 4 * 250);
    }
}
