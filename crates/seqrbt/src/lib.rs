//! # Sequential red-black tree and the global-lock baseline
//!
//! A classic node-oriented red-black tree ([`RbTree`]) — the stand-in for
//! `java.util.TreeMap` in the paper's Figure 9 — plus [`RbGlobal`], the
//! paper's "RBGlobal" baseline: the same tree behind a single global lock.
//!
//! The implementation is index-based (arena of nodes, `u32` links) rather
//! than `Box`-based: no unsafe, no recursion limits, good cache behaviour.

#![warn(missing_docs)]

pub mod rbglobal;
pub use rbglobal::RbGlobal;

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Color {
    Red,
    Black,
}

#[derive(Clone)]
struct RbNode<K, V> {
    key: K,
    value: V,
    left: u32,
    right: u32,
    parent: u32,
    color: Color,
}

/// A sequential ordered map: red-black tree with the standard CLRS
/// insert/delete fixups.
///
/// ```
/// let mut t = seqrbt::RbTree::new();
/// t.insert(2, "b");
/// t.insert(1, "a");
/// assert_eq!(t.get(&1), Some(&"a"));
/// assert_eq!(t.remove(&2), Some("b"));
/// ```
pub struct RbTree<K, V> {
    nodes: Vec<RbNode<K, V>>,
    free: Vec<u32>,
    root: u32,
    len: usize,
}

impl<K: Ord + Clone, V: Clone> Default for RbTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone, V: Clone> RbTree<K, V> {
    /// An empty tree.
    pub fn new() -> Self {
        RbTree {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            len: 0,
        }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn node(&self, i: u32) -> &RbNode<K, V> {
        &self.nodes[i as usize]
    }
    fn node_mut(&mut self, i: u32) -> &mut RbNode<K, V> {
        &mut self.nodes[i as usize]
    }
    fn color(&self, i: u32) -> Color {
        if i == NIL {
            Color::Black
        } else {
            self.node(i).color
        }
    }

    fn alloc(&mut self, key: K, value: V, parent: u32) -> u32 {
        let node = RbNode {
            key,
            value,
            left: NIL,
            right: NIL,
            parent,
            color: Color::Red,
        };
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = node;
            i
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    /// Looks up `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut cur = self.root;
        while cur != NIL {
            let n = self.node(cur);
            cur = match key.cmp(&n.key) {
                std::cmp::Ordering::Less => n.left,
                std::cmp::Ordering::Greater => n.right,
                std::cmp::Ordering::Equal => return Some(&n.value),
            };
        }
        None
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Smallest key strictly greater than `key`.
    pub fn successor(&self, key: &K) -> Option<(&K, &V)> {
        let mut cur = self.root;
        let mut best = NIL;
        while cur != NIL {
            let n = self.node(cur);
            if &n.key > key {
                best = cur;
                cur = n.left;
            } else {
                cur = n.right;
            }
        }
        (best != NIL).then(|| {
            let n = self.node(best);
            (&n.key, &n.value)
        })
    }

    /// Largest key strictly smaller than `key`.
    pub fn predecessor(&self, key: &K) -> Option<(&K, &V)> {
        let mut cur = self.root;
        let mut best = NIL;
        while cur != NIL {
            let n = self.node(cur);
            if &n.key < key {
                best = cur;
                cur = n.right;
            } else {
                cur = n.left;
            }
        }
        (best != NIL).then(|| {
            let n = self.node(best);
            (&n.key, &n.value)
        })
    }

    fn rotate(&mut self, x: u32, dir: usize) {
        // dir = 0: left-rotate (y = x.right rises); dir = 1: right-rotate.
        let y = if dir == 0 {
            self.node(x).right
        } else {
            self.node(x).left
        };
        debug_assert_ne!(y, NIL);
        let y_inner = if dir == 0 {
            self.node(y).left
        } else {
            self.node(y).right
        };
        // x's outer child slot takes y's inner subtree.
        if dir == 0 {
            self.node_mut(x).right = y_inner;
        } else {
            self.node_mut(x).left = y_inner;
        }
        if y_inner != NIL {
            self.node_mut(y_inner).parent = x;
        }
        let xp = self.node(x).parent;
        self.node_mut(y).parent = xp;
        if xp == NIL {
            self.root = y;
        } else if self.node(xp).left == x {
            self.node_mut(xp).left = y;
        } else {
            self.node_mut(xp).right = y;
        }
        if dir == 0 {
            self.node_mut(y).left = x;
        } else {
            self.node_mut(y).right = x;
        }
        self.node_mut(x).parent = y;
    }

    /// Inserts `key → value`; returns the previous value if present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let mut parent = NIL;
        let mut cur = self.root;
        while cur != NIL {
            parent = cur;
            let n = self.node(cur);
            cur = match key.cmp(&n.key) {
                std::cmp::Ordering::Less => n.left,
                std::cmp::Ordering::Greater => n.right,
                std::cmp::Ordering::Equal => {
                    return Some(std::mem::replace(&mut self.node_mut(cur).value, value));
                }
            };
        }
        let fresh = self.alloc(key, value, parent);
        if parent == NIL {
            self.root = fresh;
        } else if self.node(fresh).key < self.node(parent).key {
            self.node_mut(parent).left = fresh;
        } else {
            self.node_mut(parent).right = fresh;
        }
        self.len += 1;
        self.insert_fixup(fresh);
        None
    }

    fn insert_fixup(&mut self, mut z: u32) {
        while self.color(self.node(z).parent) == Color::Red {
            let zp = self.node(z).parent;
            let zpp = self.node(zp).parent;
            debug_assert_ne!(zpp, NIL, "red node without black grandparent");
            let parent_is_left = self.node(zpp).left == zp;
            let uncle = if parent_is_left {
                self.node(zpp).right
            } else {
                self.node(zpp).left
            };
            if self.color(uncle) == Color::Red {
                self.node_mut(zp).color = Color::Black;
                self.node_mut(uncle).color = Color::Black;
                self.node_mut(zpp).color = Color::Red;
                z = zpp;
            } else {
                if parent_is_left {
                    if self.node(zp).right == z {
                        z = zp;
                        self.rotate(z, 0);
                    }
                    let zp = self.node(z).parent;
                    let zpp = self.node(zp).parent;
                    self.node_mut(zp).color = Color::Black;
                    self.node_mut(zpp).color = Color::Red;
                    self.rotate(zpp, 1);
                } else {
                    if self.node(zp).left == z {
                        z = zp;
                        self.rotate(z, 1);
                    }
                    let zp = self.node(z).parent;
                    let zpp = self.node(zp).parent;
                    self.node_mut(zp).color = Color::Black;
                    self.node_mut(zpp).color = Color::Red;
                    self.rotate(zpp, 0);
                }
            }
        }
        let r = self.root;
        self.node_mut(r).color = Color::Black;
    }

    fn minimum(&self, mut x: u32) -> u32 {
        while self.node(x).left != NIL {
            x = self.node(x).left;
        }
        x
    }

    /// Replaces subtree `u` by subtree `v` in u's parent.
    fn transplant(&mut self, u: u32, v: u32) {
        let up = self.node(u).parent;
        if up == NIL {
            self.root = v;
        } else if self.node(up).left == u {
            self.node_mut(up).left = v;
        } else {
            self.node_mut(up).right = v;
        }
        if v != NIL {
            self.node_mut(v).parent = up;
        }
    }

    /// Removes `key`; returns its value if it was present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let mut z = self.root;
        while z != NIL {
            let n = self.node(z);
            z = match key.cmp(&n.key) {
                std::cmp::Ordering::Less => n.left,
                std::cmp::Ordering::Greater => n.right,
                std::cmp::Ordering::Equal => break,
            };
        }
        if z == NIL {
            return None;
        }
        let removed_value = self.node(z).value.clone();

        // CLRS delete. `fix_at`/`fix_parent` track the (possibly NIL) node
        // that replaced the spliced-out black node.
        let mut y = z;
        let mut y_color = self.node(y).color;
        let fix_at;
        let fix_parent;
        if self.node(z).left == NIL {
            fix_at = self.node(z).right;
            fix_parent = self.node(z).parent;
            self.transplant(z, fix_at);
        } else if self.node(z).right == NIL {
            fix_at = self.node(z).left;
            fix_parent = self.node(z).parent;
            self.transplant(z, fix_at);
        } else {
            y = self.minimum(self.node(z).right);
            y_color = self.node(y).color;
            fix_at = self.node(y).right;
            if self.node(y).parent == z {
                fix_parent = y;
                if fix_at != NIL {
                    self.node_mut(fix_at).parent = y;
                }
            } else {
                fix_parent = self.node(y).parent;
                self.transplant(y, fix_at);
                let zr = self.node(z).right;
                self.node_mut(y).right = zr;
                self.node_mut(zr).parent = y;
            }
            self.transplant(z, y);
            let zl = self.node(z).left;
            self.node_mut(y).left = zl;
            self.node_mut(zl).parent = y;
            self.node_mut(y).color = self.node(z).color;
        }
        self.free.push(z);
        self.len -= 1;
        if y_color == Color::Black {
            self.delete_fixup(fix_at, fix_parent);
        }
        Some(removed_value)
    }

    fn delete_fixup(&mut self, mut x: u32, mut xp: u32) {
        while x != self.root && self.color(x) == Color::Black {
            if xp == NIL {
                break;
            }
            let x_is_left = self.node(xp).left == x;
            let mut w = if x_is_left {
                self.node(xp).right
            } else {
                self.node(xp).left
            };
            if w == NIL {
                break; // defensive: malformed tree would loop forever
            }
            if self.color(w) == Color::Red {
                self.node_mut(w).color = Color::Black;
                self.node_mut(xp).color = Color::Red;
                self.rotate(xp, if x_is_left { 0 } else { 1 });
                w = if x_is_left {
                    self.node(xp).right
                } else {
                    self.node(xp).left
                };
            }
            let (w_near, w_far) = if x_is_left {
                (self.node(w).left, self.node(w).right)
            } else {
                (self.node(w).right, self.node(w).left)
            };
            if self.color(w_near) == Color::Black && self.color(w_far) == Color::Black {
                self.node_mut(w).color = Color::Red;
                x = xp;
                xp = self.node(x).parent;
            } else {
                if self.color(w_far) == Color::Black {
                    if w_near != NIL {
                        self.node_mut(w_near).color = Color::Black;
                    }
                    self.node_mut(w).color = Color::Red;
                    self.rotate(w, if x_is_left { 1 } else { 0 });
                    w = if x_is_left {
                        self.node(xp).right
                    } else {
                        self.node(xp).left
                    };
                }
                self.node_mut(w).color = self.node(xp).color;
                self.node_mut(xp).color = Color::Black;
                let w_far = if x_is_left {
                    self.node(w).right
                } else {
                    self.node(w).left
                };
                if w_far != NIL {
                    self.node_mut(w_far).color = Color::Black;
                }
                self.rotate(xp, if x_is_left { 0 } else { 1 });
                x = self.root;
                break;
            }
        }
        if x != NIL {
            self.node_mut(x).color = Color::Black;
        }
    }

    /// Sorted snapshot of the contents.
    pub fn collect(&self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack = Vec::new();
        let mut cur = self.root;
        while cur != NIL || !stack.is_empty() {
            while cur != NIL {
                stack.push(cur);
                cur = self.node(cur).left;
            }
            let n = stack.pop().unwrap();
            let node = self.node(n);
            out.push((node.key.clone(), node.value.clone()));
            cur = node.right;
        }
        out
    }

    /// All pairs with keys in `bounds`, sorted: the in-order walk of
    /// [`collect`](Self::collect) with subtree pruning on the bounds.
    /// Recursion depth is the tree height, O(log n).
    pub fn range<B: std::ops::RangeBounds<K>>(&self, bounds: B) -> Vec<(K, V)> {
        fn rec<K: Ord + Clone, V: Clone, B: std::ops::RangeBounds<K>>(
            t: &RbTree<K, V>,
            i: u32,
            bounds: &B,
            out: &mut Vec<(K, V)>,
        ) {
            use std::ops::Bound;
            if i == NIL {
                return;
            }
            let n = t.node(i);
            let descend_left = match bounds.start_bound() {
                Bound::Unbounded => true,
                Bound::Included(lo) | Bound::Excluded(lo) => lo < &n.key,
            };
            let descend_right = match bounds.end_bound() {
                Bound::Unbounded => true,
                Bound::Included(hi) | Bound::Excluded(hi) => hi > &n.key,
            };
            if descend_left {
                rec(t, n.left, bounds, out);
            }
            if bounds.contains(&n.key) {
                out.push((n.key.clone(), n.value.clone()));
            }
            if descend_right {
                rec(t, n.right, bounds, out);
            }
        }
        let mut out = Vec::new();
        rec(self, self.root, &bounds, &mut out);
        out
    }

    /// Checks the red-black invariants; returns the black height or an
    /// error description. Test/diagnostic helper.
    pub fn check_invariants(&self) -> Result<usize, String> {
        if self.root == NIL {
            return Ok(0);
        }
        if self.color(self.root) != Color::Black {
            return Err("root is red".into());
        }
        self.check_rec(self.root, None, None)
    }

    fn check_rec(&self, n: u32, lo: Option<&K>, hi: Option<&K>) -> Result<usize, String> {
        if n == NIL {
            return Ok(1);
        }
        let node = self.node(n);
        if let Some(lo) = lo {
            if &node.key <= lo {
                return Err("BST order violated (low)".into());
            }
        }
        if let Some(hi) = hi {
            if &node.key >= hi {
                return Err("BST order violated (high)".into());
            }
        }
        if node.color == Color::Red
            && (self.color(node.left) == Color::Red || self.color(node.right) == Color::Red)
        {
            return Err("red node with red child".into());
        }
        let lh = self.check_rec(node.left, lo, Some(&node.key))?;
        let rh = self.check_rec(node.right, Some(&node.key), hi)?;
        if lh != rh {
            return Err(format!("black heights differ: {lh} vs {rh}"));
        }
        Ok(lh + if node.color == Color::Black { 1 } else { 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn basic_ops() {
        let mut t = RbTree::new();
        assert_eq!(t.insert(1, 10), None);
        assert_eq!(t.insert(1, 11), Some(10));
        assert_eq!(t.get(&1), Some(&11));
        assert_eq!(t.remove(&1), Some(11));
        assert!(t.is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn random_against_model_with_invariants() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut t = RbTree::new();
        let mut model = BTreeMap::new();
        for step in 0..20_000u64 {
            let k = rng.gen_range(0..500u64);
            match rng.gen_range(0..3) {
                0 => assert_eq!(t.insert(k, step), model.insert(k, step)),
                1 => assert_eq!(t.remove(&k), model.remove(&k)),
                _ => assert_eq!(t.get(&k), model.get(&k)),
            }
            if step % 512 == 0 {
                t.check_invariants().unwrap();
            }
        }
        t.check_invariants().unwrap();
        assert_eq!(t.collect(), model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn successor_predecessor() {
        let mut t = RbTree::new();
        for k in [10u64, 20, 30] {
            t.insert(k, k);
        }
        assert_eq!(t.successor(&10), Some((&20, &20)));
        assert_eq!(t.successor(&30), None);
        assert_eq!(t.predecessor(&10), None);
        assert_eq!(t.predecessor(&25), Some((&20, &20)));
    }

    #[test]
    fn range_matches_model() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        use std::collections::BTreeMap;
        let mut rng = StdRng::seed_from_u64(43);
        let mut t = RbTree::new();
        let mut model = BTreeMap::new();
        for step in 0..2000u64 {
            let k = rng.gen_range(0..256u64);
            if rng.gen_bool(0.7) {
                t.insert(k, step);
                model.insert(k, step);
            } else {
                t.remove(&k);
                model.remove(&k);
            }
            let lo = rng.gen_range(0..256u64);
            let hi = lo + rng.gen_range(0..64u64);
            let expect: Vec<_> = model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
            assert_eq!(t.range(lo..=hi), expect, "[{lo}, {hi}]");
            let expect_ex: Vec<_> = model.range(lo..hi).map(|(k, v)| (*k, *v)).collect();
            assert_eq!(t.range(lo..hi), expect_ex);
        }
        assert_eq!(t.range(..), model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn ascending_descending_balance() {
        let mut t = RbTree::new();
        for i in 0..10_000u64 {
            t.insert(i, i);
        }
        t.check_invariants().unwrap();
        for i in (0..10_000u64).rev() {
            assert_eq!(t.remove(&i), Some(i));
        }
        t.check_invariants().unwrap();
        assert!(t.is_empty());
    }
}
