//! `RBSTM`: a red-black tree where every operation is one coarse
//! transaction (the paper's STM baseline, §6).
//!
//! Nodes live in an append-only arena of [`TVar`] cells addressed by `u32`;
//! the sequential CLRS insert/delete algorithms run unmodified inside a
//! transaction, reading and writing whole node cells. An update therefore
//! reads the entire root-to-leaf path into its read set — precisely the
//! coarse-transaction behaviour that makes STM dictionaries abort each
//! other under contention and pay instrumentation costs without it.

use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::tl2::{atomically, Retry, TVar, Tx};

const NIL: u32 = u32::MAX;

/// One arena cell: a red-black tree node (or an unused slot).
#[derive(Clone)]
pub(crate) struct Cell<K, V> {
    key: Option<K>,
    value: Option<V>,
    left: u32,
    right: u32,
    parent: u32,
    red: bool,
}

impl<K, V> Cell<K, V> {
    fn free() -> Self {
        Cell {
            key: None,
            value: None,
            left: NIL,
            right: NIL,
            parent: NIL,
            red: false,
        }
    }
}

/// The transactional cell arena: index-addressed so tree links are `u32`s.
type Arena<K, V> = RwLock<Vec<Arc<TVar<Cell<K, V>>>>>;

/// A concurrent ordered map: sequential red-black tree algorithms executed
/// under TL2 transactions.
pub struct RbStm<K, V> {
    arena: Arena<K, V>,
    root: Arc<TVar<u32>>,
    free: Mutex<Vec<u32>>,
}

impl<K, V> Default for RbStm<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> RbStm<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// An empty map.
    pub fn new() -> Self {
        RbStm {
            arena: RwLock::new(Vec::new()),
            root: TVar::new(NIL),
            free: Mutex::new(Vec::new()),
        }
    }

    fn cell(&self, i: u32) -> Arc<TVar<Cell<K, V>>> {
        self.arena.read()[i as usize].clone()
    }

    fn read(&self, tx: &mut Tx, i: u32) -> Result<Cell<K, V>, Retry> {
        tx.read(&self.cell(i))
    }

    fn write(&self, tx: &mut Tx, i: u32, c: Cell<K, V>) {
        tx.write(&self.cell(i), c);
    }

    fn is_red(&self, tx: &mut Tx, i: u32) -> Result<bool, Retry> {
        if i == NIL {
            Ok(false)
        } else {
            Ok(self.read(tx, i)?.red)
        }
    }

    fn alloc(&self) -> u32 {
        if let Some(i) = self.free.lock().pop() {
            return i;
        }
        let mut arena = self.arena.write();
        arena.push(TVar::new(Cell::free()));
        (arena.len() - 1) as u32
    }

    fn release(&self, i: u32) {
        self.free.lock().push(i);
    }

    /// Rotate around `x` (`dir = 0`: left, `dir = 1`: right), updating
    /// parent pointers; transactional port of the sequential rotation.
    fn rotate(&self, tx: &mut Tx, x: u32, dir: usize) -> Result<(), Retry> {
        let mut xc = self.read(tx, x)?;
        let y = if dir == 0 { xc.right } else { xc.left };
        let mut yc = self.read(tx, y)?;
        let y_inner = if dir == 0 { yc.left } else { yc.right };
        if dir == 0 {
            xc.right = y_inner;
        } else {
            xc.left = y_inner;
        }
        if y_inner != NIL {
            let mut ic = self.read(tx, y_inner)?;
            ic.parent = x;
            self.write(tx, y_inner, ic);
        }
        yc.parent = xc.parent;
        if xc.parent == NIL {
            tx.write(&self.root, y);
        } else {
            let p = xc.parent;
            let mut pc = self.read(tx, p)?;
            if pc.left == x {
                pc.left = y;
            } else {
                pc.right = y;
            }
            self.write(tx, p, pc);
        }
        if dir == 0 {
            yc.left = x;
        } else {
            yc.right = x;
        }
        xc.parent = y;
        self.write(tx, x, xc);
        self.write(tx, y, yc);
        Ok(())
    }

    /// Looks up `key`.
    pub fn get(&self, key: &K) -> Option<V> {
        atomically(|tx| {
            let mut cur = tx.read(&self.root)?;
            while cur != NIL {
                let c = self.read(tx, cur)?;
                match key.cmp(c.key.as_ref().expect("live node has key")) {
                    std::cmp::Ordering::Less => cur = c.left,
                    std::cmp::Ordering::Greater => cur = c.right,
                    std::cmp::Ordering::Equal => return Ok(c.value),
                }
            }
            Ok(None)
        })
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Smallest key strictly greater than `key`.
    pub fn successor(&self, key: &K) -> Option<(K, V)> {
        atomically(|tx| {
            let mut cur = tx.read(&self.root)?;
            let mut best = None;
            while cur != NIL {
                let c = self.read(tx, cur)?;
                let k = c.key.as_ref().expect("live node has key");
                if k > key {
                    best = Some((k.clone(), c.value.clone().unwrap()));
                    cur = c.left;
                } else {
                    cur = c.right;
                }
            }
            Ok(best)
        })
    }

    /// Largest key strictly smaller than `key`.
    pub fn predecessor(&self, key: &K) -> Option<(K, V)> {
        atomically(|tx| {
            let mut cur = tx.read(&self.root)?;
            let mut best = None;
            while cur != NIL {
                let c = self.read(tx, cur)?;
                let k = c.key.as_ref().expect("live node has key");
                if k < key {
                    best = Some((k.clone(), c.value.clone().unwrap()));
                    cur = c.right;
                } else {
                    cur = c.left;
                }
            }
            Ok(best)
        })
    }

    /// Inserts `key → value`; returns the previous value.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        // Pre-allocate outside the transaction so retries reuse the slot.
        let fresh = self.alloc();
        let (old, used) = atomically(|tx| {
            let mut parent = NIL;
            let mut cur = tx.read(&self.root)?;
            while cur != NIL {
                parent = cur;
                let c = self.read(tx, cur)?;
                match key.cmp(c.key.as_ref().expect("live node has key")) {
                    std::cmp::Ordering::Less => cur = c.left,
                    std::cmp::Ordering::Greater => cur = c.right,
                    std::cmp::Ordering::Equal => {
                        let mut c2 = c.clone();
                        let old = c2.value.replace(value.clone());
                        self.write(tx, cur, c2);
                        return Ok((old, false));
                    }
                }
            }
            self.write(
                tx,
                fresh,
                Cell {
                    key: Some(key.clone()),
                    value: Some(value.clone()),
                    left: NIL,
                    right: NIL,
                    parent,
                    red: true,
                },
            );
            if parent == NIL {
                tx.write(&self.root, fresh);
            } else {
                let mut pc = self.read(tx, parent)?;
                if &key < pc.key.as_ref().expect("live node has key") {
                    pc.left = fresh;
                } else {
                    pc.right = fresh;
                }
                self.write(tx, parent, pc);
            }
            self.insert_fixup(tx, fresh)?;
            Ok((None, true))
        });
        if !used {
            self.release(fresh);
        }
        old
    }

    fn insert_fixup(&self, tx: &mut Tx, mut z: u32) -> Result<(), Retry> {
        loop {
            let zc = self.read(tx, z)?;
            let zp = zc.parent;
            if zp == NIL || !self.is_red(tx, zp)? {
                break;
            }
            let zpc = self.read(tx, zp)?;
            let zpp = zpc.parent;
            // A red node always has a (black) grandparent: the root is black.
            let zppc = self.read(tx, zpp)?;
            let parent_is_left = zppc.left == zp;
            let uncle = if parent_is_left {
                zppc.right
            } else {
                zppc.left
            };
            if self.is_red(tx, uncle)? {
                let mut a = self.read(tx, zp)?;
                a.red = false;
                self.write(tx, zp, a);
                let mut b = self.read(tx, uncle)?;
                b.red = false;
                self.write(tx, uncle, b);
                let mut c = self.read(tx, zpp)?;
                c.red = true;
                self.write(tx, zpp, c);
                z = zpp;
            } else {
                let mut z2 = z;
                if parent_is_left {
                    if self.read(tx, zp)?.right == z2 {
                        z2 = zp;
                        self.rotate(tx, z2, 0)?;
                    }
                    let zp2 = self.read(tx, z2)?.parent;
                    let zpp2 = self.read(tx, zp2)?.parent;
                    let mut a = self.read(tx, zp2)?;
                    a.red = false;
                    self.write(tx, zp2, a);
                    let mut b = self.read(tx, zpp2)?;
                    b.red = true;
                    self.write(tx, zpp2, b);
                    self.rotate(tx, zpp2, 1)?;
                } else {
                    if self.read(tx, zp)?.left == z2 {
                        z2 = zp;
                        self.rotate(tx, z2, 1)?;
                    }
                    let zp2 = self.read(tx, z2)?.parent;
                    let zpp2 = self.read(tx, zp2)?.parent;
                    let mut a = self.read(tx, zp2)?;
                    a.red = false;
                    self.write(tx, zp2, a);
                    let mut b = self.read(tx, zpp2)?;
                    b.red = true;
                    self.write(tx, zpp2, b);
                    self.rotate(tx, zpp2, 0)?;
                }
                break;
            }
        }
        let r = tx.read(&self.root)?;
        if r != NIL {
            let mut rc = self.read(tx, r)?;
            if rc.red {
                rc.red = false;
                self.write(tx, r, rc);
            }
        }
        Ok(())
    }

    /// Removes `key`; returns its value.
    pub fn remove(&self, key: &K) -> Option<V> {
        let (old, freed) = atomically(|tx| {
            let mut z = tx.read(&self.root)?;
            while z != NIL {
                let c = self.read(tx, z)?;
                match key.cmp(c.key.as_ref().expect("live node has key")) {
                    std::cmp::Ordering::Less => z = c.left,
                    std::cmp::Ordering::Greater => z = c.right,
                    std::cmp::Ordering::Equal => break,
                }
            }
            if z == NIL {
                return Ok((None, Vec::new()));
            }
            let zc = self.read(tx, z)?;
            let removed = zc.value.clone();

            let (fix_at, fix_parent, y_was_black);
            if zc.left == NIL {
                fix_at = zc.right;
                fix_parent = zc.parent;
                y_was_black = !zc.red;
                self.transplant(tx, z, zc.right)?;
            } else if zc.right == NIL {
                fix_at = zc.left;
                fix_parent = zc.parent;
                y_was_black = !zc.red;
                self.transplant(tx, z, zc.left)?;
            } else {
                // y = minimum of right subtree replaces z.
                let mut y = zc.right;
                loop {
                    let yc = self.read(tx, y)?;
                    if yc.left == NIL {
                        break;
                    }
                    y = yc.left;
                }
                let yc = self.read(tx, y)?;
                y_was_black = !yc.red;
                fix_at = yc.right;
                if yc.parent == z {
                    fix_parent = y;
                    if fix_at != NIL {
                        let mut fc = self.read(tx, fix_at)?;
                        fc.parent = y;
                        self.write(tx, fix_at, fc);
                    }
                } else {
                    fix_parent = yc.parent;
                    self.transplant(tx, y, yc.right)?;
                    let zc2 = self.read(tx, z)?;
                    let mut yc2 = self.read(tx, y)?;
                    yc2.right = zc2.right;
                    self.write(tx, y, yc2);
                    let mut rc = self.read(tx, zc2.right)?;
                    rc.parent = y;
                    self.write(tx, zc2.right, rc);
                }
                self.transplant(tx, z, y)?;
                let zc3 = self.read(tx, z)?;
                let mut yc3 = self.read(tx, y)?;
                yc3.left = zc3.left;
                yc3.red = zc3.red;
                self.write(tx, y, yc3);
                let mut lc = self.read(tx, zc3.left)?;
                lc.parent = y;
                self.write(tx, zc3.left, lc);
            }
            self.write(tx, z, Cell::free());
            if y_was_black {
                self.delete_fixup(tx, fix_at, fix_parent)?;
            }
            Ok((removed, vec![z]))
        });
        for i in freed {
            self.release(i);
        }
        old
    }

    fn transplant(&self, tx: &mut Tx, u: u32, v: u32) -> Result<(), Retry> {
        let up = self.read(tx, u)?.parent;
        if up == NIL {
            tx.write(&self.root, v);
        } else {
            let mut pc = self.read(tx, up)?;
            if pc.left == u {
                pc.left = v;
            } else {
                pc.right = v;
            }
            self.write(tx, up, pc);
        }
        if v != NIL {
            let mut vc = self.read(tx, v)?;
            vc.parent = up;
            self.write(tx, v, vc);
        }
        Ok(())
    }

    fn delete_fixup(&self, tx: &mut Tx, mut x: u32, mut xp: u32) -> Result<(), Retry> {
        loop {
            let root = tx.read(&self.root)?;
            if x == root || self.is_red(tx, x)? || xp == NIL {
                break;
            }
            let xpc = self.read(tx, xp)?;
            let x_is_left = xpc.left == x;
            let mut w = if x_is_left { xpc.right } else { xpc.left };
            if w == NIL {
                break;
            }
            if self.is_red(tx, w)? {
                let mut wc = self.read(tx, w)?;
                wc.red = false;
                self.write(tx, w, wc);
                let mut pc = self.read(tx, xp)?;
                pc.red = true;
                self.write(tx, xp, pc);
                self.rotate(tx, xp, if x_is_left { 0 } else { 1 })?;
                let xpc2 = self.read(tx, xp)?;
                w = if x_is_left { xpc2.right } else { xpc2.left };
            }
            let wc = self.read(tx, w)?;
            let (near, far) = if x_is_left {
                (wc.left, wc.right)
            } else {
                (wc.right, wc.left)
            };
            if !self.is_red(tx, near)? && !self.is_red(tx, far)? {
                let mut wc2 = self.read(tx, w)?;
                wc2.red = true;
                self.write(tx, w, wc2);
                x = xp;
                xp = self.read(tx, x)?.parent;
            } else {
                if !self.is_red(tx, far)? {
                    if near != NIL {
                        let mut nc = self.read(tx, near)?;
                        nc.red = false;
                        self.write(tx, near, nc);
                    }
                    let mut wc2 = self.read(tx, w)?;
                    wc2.red = true;
                    self.write(tx, w, wc2);
                    self.rotate(tx, w, if x_is_left { 1 } else { 0 })?;
                    let xpc2 = self.read(tx, xp)?;
                    w = if x_is_left { xpc2.right } else { xpc2.left };
                }
                let xpc2 = self.read(tx, xp)?;
                let mut wc2 = self.read(tx, w)?;
                wc2.red = xpc2.red;
                self.write(tx, w, wc2);
                let mut pc = self.read(tx, xp)?;
                pc.red = false;
                self.write(tx, xp, pc);
                let wc3 = self.read(tx, w)?;
                let far2 = if x_is_left { wc3.right } else { wc3.left };
                if far2 != NIL {
                    let mut fc = self.read(tx, far2)?;
                    fc.red = false;
                    self.write(tx, far2, fc);
                }
                self.rotate(tx, xp, if x_is_left { 0 } else { 1 })?;
                break;
            }
        }
        if x != NIL {
            let mut xc = self.read(tx, x)?;
            if xc.red {
                xc.red = false;
                self.write(tx, x, xc);
            }
        }
        Ok(())
    }

    /// Number of keys (one read-only transaction).
    pub fn len(&self) -> usize {
        atomically(|tx| {
            let mut count = 0usize;
            let mut stack = vec![tx.read(&self.root)?];
            while let Some(i) = stack.pop() {
                if i == NIL {
                    continue;
                }
                let c = self.read(tx, i)?;
                count += 1;
                stack.push(c.left);
                stack.push(c.right);
            }
            Ok(count)
        })
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        atomically(|tx| Ok(tx.read(&self.root)? == NIL))
    }

    /// Sorted snapshot of the contents (one transaction: a true atomic
    /// snapshot, unlike the lock-free structures' traversals).
    pub fn collect(&self) -> Vec<(K, V)> {
        atomically(|tx| {
            let mut out = Vec::new();
            let root = tx.read(&self.root)?;
            self.collect_rec(tx, root, &mut out)?;
            Ok(out)
        })
    }

    fn collect_rec(&self, tx: &mut Tx, i: u32, out: &mut Vec<(K, V)>) -> Result<(), Retry> {
        if i == NIL {
            return Ok(());
        }
        let c = self.read(tx, i)?;
        self.collect_rec(tx, c.left, out)?;
        out.push((c.key.clone().unwrap(), c.value.clone().unwrap()));
        self.collect_rec(tx, c.right, out)?;
        Ok(())
    }

    /// All pairs with keys in `bounds`, sorted. One read-only transaction,
    /// so the result is an atomic snapshot (the TL2 read-set validation
    /// plays the role the VLX plays for the template trees); the pruned
    /// walk keeps the read set proportional to the result size plus the
    /// boundary paths, not the whole tree.
    pub fn range<B: std::ops::RangeBounds<K>>(&self, bounds: B) -> Vec<(K, V)> {
        atomically(|tx| {
            let mut out = Vec::new();
            let root = tx.read(&self.root)?;
            self.range_rec(tx, root, &bounds, &mut out)?;
            Ok(out)
        })
    }

    fn range_rec<B: std::ops::RangeBounds<K>>(
        &self,
        tx: &mut Tx,
        i: u32,
        bounds: &B,
        out: &mut Vec<(K, V)>,
    ) -> Result<(), Retry> {
        use std::ops::Bound;
        if i == NIL {
            return Ok(());
        }
        let c = self.read(tx, i)?;
        let k = c.key.as_ref().expect("live node has key");
        let descend_left = match bounds.start_bound() {
            Bound::Unbounded => true,
            Bound::Included(lo) | Bound::Excluded(lo) => lo < k,
        };
        let descend_right = match bounds.end_bound() {
            Bound::Unbounded => true,
            Bound::Included(hi) | Bound::Excluded(hi) => hi > k,
        };
        if descend_left {
            self.range_rec(tx, c.left, bounds, out)?;
        }
        if bounds.contains(k) {
            out.push((k.clone(), c.value.clone().expect("live node has value")));
        }
        if descend_right {
            self.range_rec(tx, c.right, bounds, out)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn basics() {
        let t = RbStm::new();
        assert_eq!(t.insert(1, 10), None);
        assert_eq!(t.insert(1, 11), Some(10));
        assert_eq!(t.get(&1), Some(11));
        assert_eq!(t.remove(&1), Some(11));
        assert_eq!(t.remove(&1), None);
        assert!(t.is_empty());
    }

    #[test]
    fn random_against_model() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        let t = RbStm::new();
        let mut model = BTreeMap::new();
        for step in 0..6000u64 {
            let k = rng.gen_range(0..300u64);
            match rng.gen_range(0..3) {
                0 => assert_eq!(t.insert(k, step), model.insert(k, step)),
                1 => assert_eq!(t.remove(&k), model.remove(&k)),
                _ => assert_eq!(t.get(&k), model.get(&k).copied()),
            }
        }
        assert_eq!(t.collect(), model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn successor_and_predecessor() {
        let t = RbStm::new();
        for k in [5u64, 10, 15] {
            t.insert(k, k);
        }
        assert_eq!(t.successor(&5), Some((10, 10)));
        assert_eq!(t.predecessor(&5), None);
        assert_eq!(t.predecessor(&20), Some((15, 15)));
    }

    #[test]
    fn range_matches_model() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(47);
        let t = RbStm::new();
        let mut model = BTreeMap::new();
        for step in 0..1500u64 {
            let k = rng.gen_range(0..200u64);
            if rng.gen_bool(0.7) {
                t.insert(k, step);
                model.insert(k, step);
            } else {
                t.remove(&k);
                model.remove(&k);
            }
            let lo = rng.gen_range(0..200u64);
            let hi = lo + rng.gen_range(0..48u64);
            let expect: Vec<_> = model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
            assert_eq!(t.range(lo..=hi), expect, "[{lo}, {hi}]");
        }
        assert_eq!(t.range(..), model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_stripes() {
        use std::sync::Arc;
        let t = Arc::new(RbStm::new());
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    let base = tid * 500;
                    for i in 0..500 {
                        assert_eq!(t.insert(base + i, i), None);
                    }
                    for i in (0..500).step_by(2) {
                        assert_eq!(t.remove(&(base + i)), Some(i));
                    }
                });
            }
        });
        assert_eq!(t.len(), 4 * 250);
        let snap = t.collect();
        for w in snap.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn concurrent_shared_contention() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        use std::sync::Arc;
        let t = Arc::new(RbStm::new());
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(tid);
                    for i in 0..3000u64 {
                        let k = rng.gen_range(0..32u64);
                        if i % 2 == 0 {
                            t.insert(k, i);
                        } else {
                            t.remove(&k);
                        }
                    }
                });
            }
        });
        let snap = t.collect();
        for w in snap.windows(2) {
            assert!(w[0].0 < w[1].0, "BST order broken: {:?}", snap);
        }
        assert!(snap.iter().all(|(k, _)| *k < 32));
    }
}
