//! The TL2 algorithm: transactional variables, transactions, commit.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// The global version clock. Incremented once per writing commit.
static GLOBAL_CLOCK: AtomicU64 = AtomicU64::new(0);

/// A transactional variable holding a `Clone` value.
///
/// The version-lock word encodes `(version << 1) | locked`: writers hold the
/// lock (odd) only during commit. Values are additionally protected by an
/// `RwLock` so that readers never observe torn data (a pure seqlock read of
/// non-`Copy` data would be UB in Rust); the version word remains the
/// transactional truth — the `RwLock` is uncontended except when a commit is
/// writing this very variable.
pub struct TVar<T> {
    version_lock: AtomicU64,
    value: RwLock<T>,
}

impl<T: Clone + Send + Sync + 'static> TVar<T> {
    /// A new transactional variable.
    pub fn new(value: T) -> Arc<Self> {
        Arc::new(TVar {
            // SEQCST: TL2 global clock and version locks need a single total order.
            version_lock: AtomicU64::new(GLOBAL_CLOCK.load(Ordering::SeqCst) << 1),
            value: RwLock::new(value),
        })
    }

    /// Reads the value outside any transaction (racy snapshot; for tests
    /// and single-threaded setup only).
    pub fn load_raw(&self) -> T {
        self.value.read().clone()
    }

    fn sample_version(&self) -> u64 {
        // SEQCST: TL2 global clock and version locks need a single total order.
        self.version_lock.load(Ordering::SeqCst)
    }
}

/// Internal type-erased view of a `TVar` used by the commit protocol.
trait ErasedVar: Send + Sync {
    fn addr(&self) -> usize;
    fn try_lock(&self) -> Option<u64>;
    fn unlock_restore(&self, old: u64);
    fn write_and_release(&self, value: Box<dyn Any>, new_version: u64);
    fn version_word(&self) -> u64;
}

impl<T: Clone + Send + Sync + 'static> ErasedVar for TVar<T> {
    fn addr(&self) -> usize {
        self as *const _ as *const () as usize
    }
    fn try_lock(&self) -> Option<u64> {
        // SEQCST: TL2 global clock and version locks need a single total order.
        let cur = self.version_lock.load(Ordering::SeqCst);
        if cur & 1 == 1 {
            return None;
        }
        self.version_lock
            // SEQCST: TL2 global clock and version locks need a single total order.
            .compare_exchange(cur, cur | 1, Ordering::SeqCst, Ordering::SeqCst)
            .ok()
    }
    fn unlock_restore(&self, old: u64) {
        // SEQCST: TL2 global clock and version locks need a single total order.
        self.version_lock.store(old, Ordering::SeqCst);
    }
    fn write_and_release(&self, value: Box<dyn Any>, new_version: u64) {
        let v = *value.downcast::<T>().expect("write-set type mismatch");
        *self.value.write() = v;
        // SEQCST: TL2 global clock and version locks need a single total order.
        self.version_lock.store(new_version << 1, Ordering::SeqCst);
    }
    fn version_word(&self) -> u64 {
        // SEQCST: TL2 global clock and version locks need a single total order.
        self.version_lock.load(Ordering::SeqCst)
    }
}

/// Returned by [`Tx::read`]/[`Tx::write`] when the transaction observed a
/// conflict and must be re-executed. Propagate it with `?`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retry;

/// A buffered write: the variable and the value it receives at commit.
type WriteEntry = (Arc<dyn ErasedVar>, Box<dyn Any>);

/// An executing transaction: read version, read set, buffered write set.
pub struct Tx {
    rv: u64,
    reads: Vec<(Arc<dyn ErasedVar>, u64)>,
    /// addr → buffered write. Lazy versioning: writes are invisible
    /// until commit.
    writes: HashMap<usize, WriteEntry>,
    /// Statistics: aborts suffered by this `atomically` call so far.
    pub aborts: u64,
}

impl Tx {
    fn new() -> Self {
        Tx {
            // SEQCST: TL2 global clock and version locks need a single total order.
            rv: GLOBAL_CLOCK.load(Ordering::SeqCst),
            reads: Vec::new(),
            writes: HashMap::new(),
            aborts: 0,
        }
    }

    fn reset(&mut self) {
        // SEQCST: TL2 global clock and version locks need a single total order.
        self.rv = GLOBAL_CLOCK.load(Ordering::SeqCst);
        self.reads.clear();
        self.writes.clear();
    }

    /// Transactional read. Returns `Err(Retry)` if the variable is locked
    /// or newer than this transaction's read version (TL2 invariant: every
    /// value read was committed no later than `rv`).
    pub fn read<T: Clone + Send + Sync + 'static>(
        &mut self,
        var: &Arc<TVar<T>>,
    ) -> Result<T, Retry> {
        let addr = var.as_ref().addr();
        if let Some((_, buffered)) = self.writes.get(&addr) {
            return Ok(buffered
                .downcast_ref::<T>()
                .expect("write-set type mismatch")
                .clone());
        }
        let v1 = var.sample_version();
        if v1 & 1 == 1 || (v1 >> 1) > self.rv {
            return Err(Retry);
        }
        let value = var.value.read().clone();
        let v2 = var.sample_version();
        if v1 != v2 {
            return Err(Retry);
        }
        self.reads.push((var.clone() as Arc<dyn ErasedVar>, v1));
        Ok(value)
    }

    /// Transactional write (buffered until commit).
    pub fn write<T: Clone + Send + Sync + 'static>(&mut self, var: &Arc<TVar<T>>, value: T) {
        let addr = var.as_ref().addr();
        self.writes
            .insert(addr, (var.clone() as Arc<dyn ErasedVar>, Box::new(value)));
    }

    /// Attempts to commit; `true` on success.
    fn commit(&mut self) -> bool {
        if self.writes.is_empty() {
            // Read-only transactions are already consistent (each read
            // validated against rv at read time).
            return true;
        }
        // Acquire write locks in address order to avoid deadlock.
        let mut locked: Vec<(Arc<dyn ErasedVar>, u64)> = Vec::with_capacity(self.writes.len());
        let mut addrs: Vec<usize> = self.writes.keys().copied().collect();
        addrs.sort_unstable();
        for addr in &addrs {
            let (var, _) = &self.writes[addr];
            match var.try_lock() {
                Some(old) => locked.push((var.clone(), old)),
                None => {
                    for (v, old) in locked {
                        v.unlock_restore(old);
                    }
                    return false;
                }
            }
        }
        // Increment the clock, then validate the read set: every read
        // version must still be current and unlocked (or locked by us).
        // SEQCST: TL2 global clock and version locks need a single total order.
        let wv = GLOBAL_CLOCK.fetch_add(1, Ordering::SeqCst) + 1;
        if wv != self.rv + 1 {
            // Someone committed since we started: validate reads.
            for (var, seen) in &self.reads {
                let cur = var.version_word();
                let locked_by_us = self.writes.contains_key(&var.addr());
                let unlocked_ok = cur & 1 == 0 && cur == *seen;
                let locked_ok =
                    locked_by_us && (cur | 1) == (*seen | 1) && (cur >> 1) == (*seen >> 1);
                if !(unlocked_ok || locked_ok) {
                    for (v, old) in locked {
                        v.unlock_restore(old);
                    }
                    return false;
                }
            }
        }
        // Write back and release with the new version.
        for (addr, (var, value)) in self.writes.drain() {
            let _ = addr;
            var.write_and_release(value, wv);
        }
        true
    }
}

/// Runs `f` transactionally until it commits, returning its result.
///
/// `f` may be re-executed arbitrarily many times; it must be a pure function
/// of transactional state (no irrevocable side effects).
pub fn atomically<R>(mut f: impl FnMut(&mut Tx) -> Result<R, Retry>) -> R {
    let mut tx = Tx::new();
    let mut backoff = 0u32;
    loop {
        if let Ok(result) = f(&mut tx) {
            if tx.commit() {
                return result;
            }
        }
        tx.aborts += 1;
        // Bounded exponential backoff keeps livelock at bay under heavy
        // conflict (TL2 is lock-based at commit, not obstruction-free).
        for _ in 0..(1u32 << backoff.min(8)) {
            std::hint::spin_loop();
        }
        backoff = backoff.wrapping_add(1);
        tx.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let v = TVar::new(1u64);
        atomically(|tx| {
            let x = tx.read(&v)?;
            tx.write(&v, x + 1);
            Ok(())
        });
        assert_eq!(v.load_raw(), 2);
    }

    #[test]
    fn read_your_own_writes() {
        let v = TVar::new(10u64);
        let out = atomically(|tx| {
            tx.write(&v, 42);
            tx.read(&v)
        });
        assert_eq!(out, 42);
        assert_eq!(v.load_raw(), 42);
    }

    #[test]
    fn concurrent_counter_is_exact() {
        let v = TVar::new(0u64);
        let threads = 4;
        let per = 5000;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let v = v.clone();
                s.spawn(move || {
                    for _ in 0..per {
                        atomically(|tx| {
                            let x = tx.read(&v)?;
                            tx.write(&v, x + 1);
                            Ok(())
                        });
                    }
                });
            }
        });
        assert_eq!(v.load_raw(), threads * per);
    }

    #[test]
    fn atomic_swap_of_two_vars() {
        let a = TVar::new(1u64);
        let b = TVar::new(2u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (a, b) = (a.clone(), b.clone());
                s.spawn(move || {
                    for _ in 0..2000 {
                        atomically(|tx| {
                            let x = tx.read(&a)?;
                            let y = tx.read(&b)?;
                            tx.write(&a, y);
                            tx.write(&b, x);
                            Ok(())
                        });
                    }
                });
            }
        });
        let (x, y) = (a.load_raw(), b.load_raw());
        // Invariant: the multiset {1, 2} is preserved.
        assert_eq!(x + y, 3);
        assert_ne!(x, y);
    }
}
