//! # tinystm: a TL2-style software transactional memory
//!
//! Stand-in for DeuceSTM in the paper's evaluation (the `RBSTM` and
//! `SkipListSTM` baselines). Implements the TL2 algorithm of Dice, Shalev
//! and Shavit: a global version clock, per-[`TVar`] versioned write locks,
//! lazy write buffering, and commit-time read-set validation.
//!
//! The paper uses STM baselines to show what *coarse* transactions cost:
//! every dictionary operation is one transaction that reads an entire
//! root-to-leaf path, so any two conflicting updates abort each other and
//! instrumentation overhead burdens even uncontended runs. [`rbtree::RbStm`]
//! reproduces exactly that: the sequential red-black tree algorithms run
//! unmodified inside a transaction.
//!
//! ```
//! use tinystm::{atomically, TVar};
//!
//! let balance = TVar::new(100i64);
//! atomically(|tx| {
//!     let b = tx.read(&balance)?;
//!     tx.write(&balance, b + 20);
//!     Ok(())
//! });
//! assert_eq!(atomically(|tx| tx.read(&balance)), 120);
//! ```

#![warn(missing_docs)]

pub mod rbtree;
pub mod tl2;

pub use rbtree::RbStm;
pub use tl2::{atomically, Retry, TVar, Tx};
