//! The `nblint` driver: runs every rule family over the first-party
//! sources, cross-checks the ordering manifest in both directions, and
//! (in update mode) regenerates the manifest preserving hand-written
//! justifications.

use std::collections::HashMap;
use std::path::Path;

use crate::lexer::Scanned;
use crate::manifest::{self, Row};
use crate::rules::{self, AtomicSite};
use crate::syntax::FileCtx;
use crate::{walk, Finding};

/// Repo-relative path of the ordering-audit manifest.
pub const MANIFEST_PATH: &str = "docs/ordering_audit.toml";

/// Scans every first-party file, returning all per-file findings plus the
/// extracted atomic sites (for the manifest cross-check).
fn scan_files(root: &Path) -> Result<(Vec<Finding>, Vec<AtomicSite>), String> {
    let mut findings = Vec::new();
    let mut sites = Vec::new();
    for file in walk::rust_files(root) {
        let text = std::fs::read_to_string(&file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        let sc = Scanned::new(&text);
        let ctx = FileCtx::new(&sc);
        findings.extend(rules::check_unsafe(&rel, &sc, &ctx));
        let (file_sites, ord_findings) = rules::atomic_sites(&rel, &sc);
        findings.extend(ord_findings);
        findings.extend(rules::check_seqcst(&sc, &ctx, &file_sites));
        findings.extend(rules::check_epoch(&rel, &sc, &ctx));
        findings.extend(rules::check_allow(&rel, &sc));
        sites.extend(file_sites);
    }
    Ok((findings, sites))
}

/// Multiset key a site or row contributes to the cross-check under.
fn key(file: &str, hash: &str, ordering: &str) -> (String, String, String) {
    (file.to_string(), hash.to_string(), ordering.to_string())
}

/// Cross-checks sites against manifest rows, reporting drift both ways.
pub fn check_manifest(sites: &[AtomicSite], rows: &[Row]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut by_key: HashMap<(String, String, String), Vec<&Row>> = HashMap::new();
    for row in rows {
        by_key
            .entry(key(&row.file, &row.hash, &row.ordering))
            .or_default()
            .push(row);
        if row.justification.trim().is_empty() {
            findings.push(Finding {
                rule: "ordering-justify",
                file: row.file.clone(),
                line: row.line,
                message: format!(
                    "manifest row for ordering `{}` has an empty justification — write the \
                     one-line protocol argument in {MANIFEST_PATH}",
                    row.ordering
                ),
            });
        }
    }
    for site in sites {
        let k = key(&site.file, &site.hash, &site.ordering);
        match by_key.get_mut(&k) {
            Some(v) if !v.is_empty() => {
                v.pop();
            }
            _ => {
                findings.push(Finding {
                    rule: "ordering-manifest",
                    file: site.file.clone(),
                    line: site.line,
                    message: format!(
                        "atomic site (`{}`) not in {MANIFEST_PATH} — run `nblint \
                         --update-manifest` and write its justification",
                        site.context
                    ),
                });
            }
        }
    }
    for leftover in by_key.values().flatten() {
        findings.push(Finding {
            rule: "ordering-manifest",
            file: leftover.file.clone(),
            line: leftover.line,
            message: format!(
                "stale manifest row (ordering `{}`, hash {}) matches no code site — the \
                 site changed or moved; run `nblint --update-manifest`",
                leftover.ordering, leftover.hash
            ),
        });
    }
    findings
}

/// Runs the full check over a repo root: the four rule families, the
/// manifest cross-check, and the absorbed configuration/hot-loop gates.
/// `Err` is an infrastructure failure (unreadable file, missing manifest,
/// missing hot-loop markers); `Ok` carries the findings, empty on a clean
/// repo.
pub fn check(root: &Path) -> Result<Vec<Finding>, String> {
    let (mut findings, sites) = scan_files(root)?;

    let manifest_path = root.join(MANIFEST_PATH);
    let manifest_text = std::fs::read_to_string(&manifest_path).map_err(|e| {
        format!("cannot read {MANIFEST_PATH}: {e} — generate it with `nblint --update-manifest`")
    })?;
    let rows = manifest::parse(&manifest_text)?;
    findings.extend(check_manifest(&sites, &rows));

    // Absorbed cfgcheck rules: environment-mutation tokens and the
    // run_trial hot-loop discipline.
    for hit in crate::cfg::scan_repo(root) {
        findings.push(Finding {
            rule: "cfg-env",
            file: hit.path.to_string_lossy().replace('\\', "/"),
            line: hit.line,
            message: format!(
                "forbidden configuration idiom `{}` — suite-construction knobs flow \
                 through workload::SuiteConfig, never the environment",
                hit.token
            ),
        });
    }
    for hit in crate::cfg::scan_hotloop_repo(root)? {
        findings.push(Finding {
            rule: "cfg-hotloop",
            file: hit.path.to_string_lossy().replace('\\', "/"),
            line: hit.line,
            message: format!(
                "`{}` inside run_trial's measured loop — the hot path must stay clock-, \
                 RNG- and allocation-free",
                hit.token
            ),
        });
    }

    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(findings)
}

/// Regenerates the manifest text from the current code, preserving the
/// justification of every surviving `(file, hash, ordering)` key (matched
/// in order for duplicate keys). New sites get a seeded justification
/// from the site line's trailing comment when one exists, else empty
/// (which `--check` then rejects until a human writes it).
pub fn update_manifest(root: &Path) -> Result<String, String> {
    let (_, mut sites) = scan_files(root)?;
    sites.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));

    let old: Vec<Row> = match std::fs::read_to_string(root.join(MANIFEST_PATH)) {
        Ok(text) => manifest::parse(&text)?,
        Err(_) => Vec::new(),
    };
    let mut surviving: HashMap<(String, String, String), Vec<String>> = HashMap::new();
    for row in &old {
        surviving
            .entry(key(&row.file, &row.hash, &row.ordering))
            .or_default()
            .push(row.justification.clone());
    }

    let rows: Vec<Row> = sites
        .iter()
        .map(|site| {
            let justification = surviving
                .get_mut(&key(&site.file, &site.hash, &site.ordering))
                .and_then(|v| (!v.is_empty()).then(|| v.remove(0)))
                .unwrap_or_else(|| seed_justification(&site.context));
            Row {
                file: site.file.clone(),
                line: site.line,
                hash: site.hash.clone(),
                ordering: site.ordering.clone(),
                justification,
            }
        })
        .collect();
    Ok(manifest::render(&rows))
}

/// Seeds a fresh row's justification from the site's trailing comment, if
/// any: lines like `x.store(v, Release); // publish: pairs with load` are
/// already self-documenting.
fn seed_justification(context: &str) -> String {
    context
        .split_once("//")
        .map(|(_, c)| c.trim_start_matches(['/', '!', ' ']).trim().to_string())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(file: &str, line: usize, hash: &str, ordering: &str) -> AtomicSite {
        AtomicSite {
            file: file.into(),
            line,
            ordering: ordering.into(),
            hash: hash.into(),
            context: "ctx".into(),
            end_line: line,
        }
    }

    fn row(file: &str, line: usize, hash: &str, ordering: &str) -> Row {
        Row {
            file: file.into(),
            line,
            hash: hash.into(),
            ordering: ordering.into(),
            justification: "why".into(),
        }
    }

    #[test]
    fn matched_sites_and_rows_are_clean() {
        let sites = vec![site("a.rs", 3, "h1", "Acquire")];
        let rows = vec![row("a.rs", 3, "h1", "Acquire")];
        assert!(check_manifest(&sites, &rows).is_empty());
    }

    #[test]
    fn line_moves_do_not_drift_but_code_changes_do() {
        // Same hash on a different line: still matched.
        let sites = vec![site("a.rs", 9, "h1", "Acquire")];
        let rows = vec![row("a.rs", 3, "h1", "Acquire")];
        assert!(check_manifest(&sites, &rows).is_empty());
        // Different hash: both directions reported.
        let sites = vec![site("a.rs", 9, "h2", "Acquire")];
        let f = check_manifest(&sites, &rows);
        assert_eq!(f.len(), 2);
        assert!(f.iter().any(|x| x.message.contains("not in")));
        assert!(f.iter().any(|x| x.message.contains("stale manifest row")));
    }

    #[test]
    fn ordering_change_is_drift_in_both_directions() {
        let sites = vec![site("a.rs", 3, "h1", "Relaxed")];
        let rows = vec![row("a.rs", 3, "h1", "Acquire")];
        let f = check_manifest(&sites, &rows);
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn duplicate_sites_need_duplicate_rows() {
        // Two identical lines in one file ⇒ two sites with the same hash;
        // one row only covers one of them.
        let sites = vec![
            site("a.rs", 3, "h1", "Relaxed"),
            site("a.rs", 7, "h1", "Relaxed"),
        ];
        let rows = vec![row("a.rs", 3, "h1", "Relaxed")];
        let f = check_manifest(&sites, &rows);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "ordering-manifest");
        let rows2 = vec![
            row("a.rs", 3, "h1", "Relaxed"),
            row("a.rs", 7, "h1", "Relaxed"),
        ];
        assert!(check_manifest(&sites, &rows2).is_empty());
    }

    #[test]
    fn empty_justifications_are_rejected() {
        let sites = vec![site("a.rs", 3, "h1", "SeqCst")];
        let mut rows = vec![row("a.rs", 3, "h1", "SeqCst")];
        rows[0].justification = "  ".into();
        let f = check_manifest(&sites, &rows);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "ordering-justify");
    }

    #[test]
    fn seed_justification_takes_trailing_comments() {
        assert_eq!(
            seed_justification("x.store(v, Ordering::Release); // publish: pairs with get"),
            "publish: pairs with get"
        );
        assert_eq!(seed_justification("x.load(Ordering::Acquire)"), "");
    }
}
