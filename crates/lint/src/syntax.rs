//! Line-level syntactic context over a [`Scanned`] file: attribute spans,
//! `#[cfg(test)]` module ranges, and the "justification comment" walk that
//! the SAFETY/SEQCST rules share.

use crate::lexer::Scanned;

/// Per-file context computed once and shared by all rules.
pub struct FileCtx {
    /// 1-based line → whether any part of the line lies inside an
    /// attribute (`#[…]` / `#![…]`), including multi-line attributes.
    attr_lines: Vec<bool>,
    /// 1-based inclusive line ranges of `#[cfg(test)] mod … { … }` bodies.
    test_ranges: Vec<(usize, usize)>,
}

impl FileCtx {
    /// Builds the context for `sc`.
    pub fn new(sc: &Scanned) -> Self {
        FileCtx {
            attr_lines: attr_lines(sc),
            test_ranges: test_ranges(sc),
        }
    }

    /// Whether 1-based `line` is (part of) an attribute.
    pub fn is_attr_line(&self, line: usize) -> bool {
        self.attr_lines
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(false)
    }

    /// Whether 1-based `line` falls inside a `#[cfg(test)]` module body.
    pub fn in_test_mod(&self, line: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(s, e)| line >= s && line <= e)
    }
}

/// Marks every line that intersects an attribute. Attributes are found in
/// the code projection (`#` + optional `!` + `[`), and extend to the
/// matching `]` with nesting (`#[cfg_attr(feature = "x", allow(dead_code))]`
/// and multi-line `#[allow(\n clippy::… \n)]` both work).
fn attr_lines(sc: &Scanned) -> Vec<bool> {
    let code = sc.code().as_bytes();
    let mut out = vec![false; sc.line_count()];
    let mut i = 0usize;
    while i < code.len() {
        if code[i] != b'#' {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        while j < code.len() && code[j].is_ascii_whitespace() {
            j += 1;
        }
        if j < code.len() && code[j] == b'!' {
            j += 1;
            while j < code.len() && code[j].is_ascii_whitespace() {
                j += 1;
            }
        }
        if j >= code.len() || code[j] != b'[' {
            i += 1;
            continue;
        }
        // Balanced bracket scan (code projection: brackets in strings and
        // comments are already blanked).
        let mut depth = 0usize;
        let mut end = j;
        while end < code.len() {
            match code[end] {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        let (ls, le) = (sc.line_of(i), sc.line_of(end.min(code.len() - 1)));
        for slot in &mut out[ls - 1..le.min(sc.line_count())] {
            *slot = true;
        }
        i = end + 1;
    }
    out
}

/// Finds `#[cfg(test)] mod … { … }` bodies. The epoch-discipline rules
/// exempt them: unit tests of the reclamation substrate itself pin the
/// epoch directly by design, and test scaffolding is not a hot path.
fn test_ranges(sc: &Scanned) -> Vec<(usize, usize)> {
    let code = sc.code();
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut search_from = 0usize;
    while let Some(rel) = code[search_from..].find("cfg(test)") {
        let at = search_from + rel;
        search_from = at + 1;
        // Must be inside an attribute on this line (e.g. `#[cfg(test)]`,
        // `#[cfg_attr(test, …)]` is close enough for an exemption scan).
        let line = sc.line_of(at);
        let lt = sc.code_line(line);
        if !lt.trim_start().starts_with('#') {
            continue;
        }
        // Scan forward for `mod` then its `{ … }` body.
        let mut i = at + "cfg(test)".len();
        // Skip to the end of the attribute.
        while i < bytes.len() && bytes[i] != b']' {
            i += 1;
        }
        let Some(rel_mod) = code[i..].find("mod ") else {
            continue;
        };
        // `mod` must follow closely (whitespace/attributes only between).
        let between = &code[i + 1..i + rel_mod];
        if !between.chars().all(|c| {
            c.is_whitespace()
                || c == '#'
                || c == '['
                || c == ']'
                || c.is_alphanumeric()
                || c == '_'
                || c == '('
                || c == ')'
                || c == ','
                || c == ':'
                || c == '"'
        }) {
            continue;
        }
        let Some(rel_brace) = code[i + rel_mod..].find('{') else {
            continue;
        };
        let open = i + rel_mod + rel_brace;
        let mut depth = 0usize;
        let mut end = open;
        while end < bytes.len() {
            match bytes[end] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        out.push((line, sc.line_of(end.min(bytes.len() - 1))));
        search_from = end;
    }
    out
}

/// Whether the site at 1-based `line` carries a justification comment with
/// `marker` (e.g. `SAFETY:`): either trailing on the line itself, or in
/// the contiguous comment block immediately above it. Attribute lines
/// between the comment block and the site are skipped, so
///
/// ```text
/// // SAFETY: the pool owns this slot
/// #[inline]
/// unsafe fn claim(&self) { … }
/// ```
///
/// passes. A blank line or unrelated code line terminates the search.
pub fn has_marker(sc: &Scanned, ctx: &FileCtx, line: usize, marker: &str) -> bool {
    if sc.line_comment_contains(line, marker) {
        return true;
    }
    let mut k = line.saturating_sub(1);
    while k >= 1 {
        if ctx.is_attr_line(k) {
            k -= 1;
            continue;
        }
        let code = sc.code_line(k).trim();
        let raw = sc.line_text(k).trim();
        if code.is_empty() && raw.starts_with("//") {
            if sc.line_comment_contains(k, marker) {
                return true;
            }
            k -= 1; // contiguous comment block: keep walking
            continue;
        }
        return false; // blank line or code: the block (if any) ended
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(src: &str) -> (Scanned, FileCtx) {
        let sc = Scanned::new(src);
        let c = FileCtx::new(&sc);
        (sc, c)
    }

    #[test]
    fn single_and_multi_line_attributes_are_marked() {
        let (_, c) = ctx("#[inline]\nfn f() {}\n#[allow(\n    dead_code,\n)]\nfn g() {}\n");
        assert!(c.is_attr_line(1));
        assert!(!c.is_attr_line(2));
        assert!(c.is_attr_line(3));
        assert!(c.is_attr_line(4));
        assert!(c.is_attr_line(5));
        assert!(!c.is_attr_line(6));
    }

    #[test]
    fn cfg_test_mod_bodies_are_ranged() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let (_, c) = ctx(src);
        assert!(!c.in_test_mod(1));
        assert!(c.in_test_mod(3));
        assert!(c.in_test_mod(4));
        assert!(c.in_test_mod(5));
        assert!(!c.in_test_mod(6));
    }

    #[test]
    fn marker_trailing_or_in_block_above() {
        let src = "// SAFETY: slot is owned\nunsafe { go() };\nlet x = unsafe { f() }; // SAFETY: inline\n\nunsafe { bare() };\n";
        let (sc, c) = ctx(src);
        assert!(has_marker(&sc, &c, 2, "SAFETY:"));
        assert!(has_marker(&sc, &c, 3, "SAFETY:"));
        assert!(!has_marker(&sc, &c, 5, "SAFETY:"));
    }

    #[test]
    fn marker_survives_attributes_and_multi_line_comment_blocks() {
        let src = "// SAFETY: the incarnation tag\n// guards this read.\n#[inline]\n#[allow(\n  unused,\n)]\nunsafe fn f() {}\n";
        let (sc, c) = ctx(src);
        assert!(has_marker(&sc, &c, 7, "SAFETY:"));
    }

    #[test]
    fn blank_line_breaks_the_block() {
        let src = "// SAFETY: stale\n\nunsafe { f() };\n";
        let (sc, c) = ctx(src);
        assert!(!has_marker(&sc, &c, 3, "SAFETY:"));
    }

    #[test]
    fn marker_in_string_does_not_count() {
        let src = "let s = \"SAFETY: fake\";\nunsafe { f() };\n";
        let (sc, c) = ctx(src);
        assert!(!has_marker(&sc, &c, 2, "SAFETY:"));
    }
}
