//! Grep-grade configuration gate (absorbed into `nblint` from the original
//! standalone `cfgcheck` bin, which remains as a thin alias): fails CI if the
//! retired environment-mutation idioms reappear anywhere in first-party
//! Rust sources.
//!
//! The suite used to size the `"sharded"` registry entry through
//! `NBTREE_SHARD_SPAN`, which forced every sweeper to *pin* the variable
//! with `std::env` mutation before building maps. That discipline was
//! replaced wholesale by the typed `workload::SuiteConfig` (parsed from
//! the environment once at binary startup and threaded by value), so any
//! reappearance of the old idioms is a regression: environment mutation
//! is a process-global data race (and `unsafe` from edition 2024), and a
//! span knob read at `make_map` time silently reintroduces the
//! mis-sized-boundary-table failure mode.
//!
//! The gate scans every `*.rs` file outside `vendor/`, `target/` and
//! hidden directories for the forbidden tokens, allowing them only in
//! the config module itself (`crates/workload/src/config.rs`, whose docs
//! narrate the history). Like `linkcheck`, it is a plain text scan — no
//! network, no parser — so it runs in milliseconds in the `analysis`
//! job.

use std::path::{Path, PathBuf};

/// The forbidden tokens. Assembled from halves so this module does not
/// itself contain the contiguous spellings it polices (the gate must
/// pass over its own source, and reviewers grep for the same strings).
pub fn forbidden_tokens() -> Vec<String> {
    [
        ("set_", "var"),             // std::env mutation
        ("pin_shard", "_span"),      // the retired helper…
        ("ShardSpan", "Pinner"),     // …and its multi-range sibling
        ("NBTREE_SHARD", "S\""),     // env parsing of the shard count…
        ("NBTREE_SHARD", "_SPAN\""), // …and span, outside the config module
    ]
    .iter()
    .map(|(a, b)| format!("{a}{b}"))
    .collect()
}

/// Whether `path` (repo-relative) may legitimately contain the tokens:
/// only the typed-config module, the single place the suite-construction
/// environment variables are parsed.
pub fn is_allowed(path: &Path) -> bool {
    path.ends_with(Path::new("crates/workload/src/config.rs"))
}

/// One offending line.
#[derive(Debug, PartialEq, Eq)]
pub struct Hit {
    /// Repo-relative path of the offending file.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The token found.
    pub token: String,
}

/// Whether `line` contains `token` as a whole word: at each end of the
/// match where the token itself has an identifier character, the
/// adjacent character must not be one — so a benign identifier that
/// merely embeds a token as a substring (an offset variable, say) never
/// trips the env-mutation token. Ends where the token has punctuation
/// (`.collect(`, `vec!`) need no boundary: punctuation is its own edge.
fn contains_word(line: &str, token: &str) -> bool {
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let head_ident = token.chars().next().is_some_and(is_ident);
    let tail_ident = token.chars().next_back().is_some_and(is_ident);
    line.match_indices(token).any(|(at, _)| {
        let before_ok = !head_ident || line[..at].chars().next_back().is_none_or(|c| !is_ident(c));
        let after_ok = !tail_ident
            || line[at + token.len()..]
                .chars()
                .next()
                .is_none_or(|c| !is_ident(c));
        before_ok && after_ok
    })
}

/// Scans one file's text for forbidden tokens. `path` is repo-relative
/// and used both for the allowlist and for reporting.
pub fn scan_text(path: &Path, text: &str, tokens: &[String]) -> Vec<Hit> {
    if is_allowed(path) {
        return Vec::new();
    }
    let mut hits = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        for token in tokens {
            if contains_word(line, token) {
                hits.push(Hit {
                    path: path.to_path_buf(),
                    line: idx + 1,
                    token: token.clone(),
                });
            }
        }
    }
    hits
}

/// Runs the whole gate over a repo root, returning every hit.
pub fn scan_repo(root: &Path) -> Vec<Hit> {
    let tokens = forbidden_tokens();
    let mut hits = Vec::new();
    for file in crate::walk::rust_files(root) {
        let Ok(text) = std::fs::read_to_string(&file) else {
            continue;
        };
        let rel = file.strip_prefix(root).unwrap_or(&file);
        hits.extend(scan_text(rel, &text, &tokens));
    }
    hits
}

// --- hot-loop gate ---------------------------------------------------------

/// Opens a measured hot-loop region (a `//` comment in `run_trial`).
pub const HOTLOOP_BEGIN: &str = "cfgcheck:hotloop:begin";
/// Closes a measured hot-loop region.
pub const HOTLOOP_END: &str = "cfgcheck:hotloop:end";

/// The file whose marked regions the hot-loop gate scans, repo-relative:
/// the harness's `run_trial` lives here.
pub const HOTLOOP_FILE: &str = "crates/workload/src/lib.rs";

/// Tokens forbidden inside the measured loops of `run_trial`: per-op
/// timestamping through the OS clock and allocation/formatting idioms.
/// The latency design (pre-generated streams, `rdtsc` ticks, fixed
/// `u64` buckets) exists precisely so none of these appear between the
/// barrier and the stop flag — this gate keeps the measured path honest
/// against well-meaning edits. Scanned only between the markers, so the
/// spellings are plain (the rest of the repo may use them freely).
pub fn hotloop_tokens() -> Vec<String> {
    [
        "Instant::now",
        "SystemTime",
        "Vec::new",
        "vec!",
        "with_capacity",
        "to_string",
        "to_vec",
        "to_owned",
        "String::",
        "format!",
        "println!",
        "Box::new",
        ".collect(",
        ".clone(",
        "gen_range",
        "next_u64",
        ".sample(",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// Scans the `cfgcheck:hotloop` regions of one file's text for the
/// forbidden hot-loop tokens. Line comments are stripped before matching
/// (prose may *discuss* an idiom; code may not use it). Errors when the
/// text contains no complete region — deleting the markers must read as
/// gate evasion, not as a pass.
pub fn scan_hotloop(path: &Path, text: &str) -> Result<Vec<Hit>, String> {
    let tokens = hotloop_tokens();
    let mut hits = Vec::new();
    let mut in_region = false;
    let mut regions = 0usize;
    for (idx, line) in text.lines().enumerate() {
        if line.contains(HOTLOOP_BEGIN) {
            if in_region {
                return Err(format!(
                    "{}:{}: nested hot-loop begin",
                    path.display(),
                    idx + 1
                ));
            }
            in_region = true;
            continue;
        }
        if line.contains(HOTLOOP_END) {
            if !in_region {
                return Err(format!(
                    "{}:{}: unmatched hot-loop end",
                    path.display(),
                    idx + 1
                ));
            }
            in_region = false;
            regions += 1;
            continue;
        }
        if !in_region {
            continue;
        }
        let code = line.split("//").next().unwrap_or(line);
        for token in &tokens {
            if contains_word(code, token) {
                hits.push(Hit {
                    path: path.to_path_buf(),
                    line: idx + 1,
                    token: token.clone(),
                });
            }
        }
    }
    if in_region {
        return Err(format!("{}: unterminated hot-loop region", path.display()));
    }
    if regions == 0 {
        return Err(format!(
            "{}: no `{HOTLOOP_BEGIN}` regions found — run_trial's measured \
             loops must stay marked",
            path.display()
        ));
    }
    Ok(hits)
}

/// Runs the hot-loop gate over a repo root: scans the marked regions of
/// [`HOTLOOP_FILE`]. Errors if the file is unreadable or unmarked.
pub fn scan_hotloop_repo(root: &Path) -> Result<Vec<Hit>, String> {
    let rel = Path::new(HOTLOOP_FILE);
    let text = std::fs::read_to_string(root.join(rel))
        .map_err(|e| format!("cannot read {HOTLOOP_FILE}: {e}"))?;
    scan_hotloop(rel, &text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_cover_the_retired_idioms() {
        let tokens = forbidden_tokens();
        // The env-mutation call and the two retired helpers, spelled out
        // here only via the same split-halves trick the module uses.
        for halves in [
            ("set_", "var"),
            ("pin_shard", "_span"),
            ("ShardSpan", "Pinner"),
        ] {
            let spelled = format!("{}{}", halves.0, halves.1);
            assert!(tokens.contains(&spelled), "missing token {spelled}");
        }
    }

    #[test]
    fn offending_lines_are_reported_with_positions() {
        let needle = format!("std::env::{}{}", "set_", "var");
        let text = format!("fn main() {{\n    {needle}(\"X\", \"1\");\n}}\n");
        let hits = scan_text(
            Path::new("crates/foo/src/main.rs"),
            &text,
            &forbidden_tokens(),
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 2);
        assert_eq!(hits[0].token, format!("{}{}", "set_", "var"));
    }

    #[test]
    fn env_parsing_outside_the_config_module_is_flagged() {
        let text = format!(
            "let s = std::env::var(\"{}{}\");\n",
            "NBTREE_SHARD", "_SPAN"
        );
        let hits = scan_text(
            Path::new("crates/workload/src/adapters.rs"),
            &text,
            &forbidden_tokens(),
        );
        assert_eq!(hits.len(), 1, "span parsing must live in the config module");
    }

    #[test]
    fn the_config_module_is_allowed() {
        let needle = format!("std::env::{}{}", "set_", "var");
        let text = format!("//! docs may mention {needle} freely\n");
        let hits = scan_text(
            Path::new("crates/workload/src/config.rs"),
            &text,
            &forbidden_tokens(),
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn clean_text_passes() {
        let text = "fn main() { let cfg = workload::SuiteConfig::from_env(); }\n";
        assert!(scan_text(Path::new("src/main.rs"), text, &forbidden_tokens()).is_empty());
    }

    #[test]
    fn identifiers_merely_containing_a_token_pass() {
        // Word-boundary matching: these contain the env-mutation token as
        // a substring but are benign identifiers/strings. (Built from
        // halves so this file itself stays clean under a plain
        // `grep -rn` for the token — same trick as `forbidden_tokens`.)
        let embed = format!("{}{}", "set_", "var");
        let text = format!("let off{embed} = 1;\nlet un{embed}_cache = 2;\nre{embed}s();\n");
        assert!(
            scan_text(Path::new("src/main.rs"), &text, &forbidden_tokens()).is_empty(),
            "substring-only matches must not trip the gate"
        );
        // But the real call still does, in any qualification style.
        for call in [
            "std::env::{}(\"X\", \"1\");",
            "env::{}(\"X\", \"1\");",
            "{}(\"X\", \"1\");",
        ] {
            let needle = format!("{}{}", "set_", "var");
            let text = call.replace("{}", &needle);
            assert_eq!(
                scan_text(Path::new("src/main.rs"), &text, &forbidden_tokens()).len(),
                1,
                "missed: {text}"
            );
        }
    }

    #[test]
    fn the_repo_itself_is_clean() {
        // The gate's own acceptance criterion, run as a unit test too:
        // CARGO_MANIFEST_DIR is crates/bench, two levels below the root.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap()
            .to_path_buf();
        let hits = scan_repo(&root);
        assert!(
            hits.is_empty(),
            "forbidden config idioms in first-party sources: {hits:?}"
        );
    }

    fn hotloop_text(body: &str) -> String {
        format!(
            "fn run() {{\n    setup();\n    // {HOTLOOP_BEGIN}\n{body}    // {HOTLOOP_END}\n}}\n"
        )
    }

    #[test]
    fn clean_hotloop_region_passes() {
        let text = hotloop_text(
            "    while !stop.load(Ordering::Relaxed) {\n        \
             let k = keys[cursor & MASK];\n        \
             let t0 = latency::now();\n        \
             map.insert(k, k);\n        \
             hist.record(kind, latency::elapsed_ns(t0));\n    }\n",
        );
        let hits = scan_hotloop(Path::new("lib.rs"), &text).unwrap();
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn timing_and_allocation_idioms_in_the_hotloop_are_flagged() {
        for bad in [
            "let t = std::time::Instant::now();\n",
            "let v: Vec<u64> = Vec::new();\n",
            "let v = keys.to_vec();\n",
            "let s = k.to_string();\n",
            "let v: Vec<u64> = it.collect();\n",
            "let k = rng.gen_range(0..range);\n",
            "let k = sampler.sample(&mut rng);\n",
        ] {
            let text = hotloop_text(&format!("    {bad}"));
            let hits = scan_hotloop(Path::new("lib.rs"), &text).unwrap();
            assert_eq!(hits.len(), 1, "missed in hot loop: {bad}");
        }
    }

    #[test]
    fn idioms_outside_the_region_or_in_comments_pass() {
        // The same idioms are fine in setup code before the marker...
        let text = format!(
            "fn run() {{\n    let keys: Vec<u64> = (0..n).map(|_| rng.gen_range(0..r)).collect();\n    \
             // {HOTLOOP_BEGIN}\n    map.get(&k);\n    // {HOTLOOP_END}\n}}\n"
        );
        assert!(scan_hotloop(Path::new("lib.rs"), &text).unwrap().is_empty());
        // ...and in comments inside the region.
        let text = hotloop_text("    map.get(&k); // no Instant::now() here, by design\n");
        assert!(scan_hotloop(Path::new("lib.rs"), &text).unwrap().is_empty());
    }

    #[test]
    fn missing_or_unbalanced_markers_are_an_error() {
        assert!(scan_hotloop(Path::new("lib.rs"), "fn run() {}\n").is_err());
        let unterminated = format!("// {HOTLOOP_BEGIN}\nmap.get(&k);\n");
        assert!(scan_hotloop(Path::new("lib.rs"), &unterminated).is_err());
        let unmatched = format!("map.get(&k);\n// {HOTLOOP_END}\n");
        assert!(scan_hotloop(Path::new("lib.rs"), &unmatched).is_err());
    }

    #[test]
    fn the_repo_hotloop_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap()
            .to_path_buf();
        let hits = scan_hotloop_repo(&root).expect("run_trial must carry hotloop markers");
        assert!(
            hits.is_empty(),
            "timing/allocation idioms inside run_trial's measured loops: {hits:?}"
        );
    }
}
