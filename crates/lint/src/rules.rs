//! The four first-party rule families (see `docs/ANALYSIS.md`):
//!
//! * **unsafe-safety** — every `unsafe` token (block, fn, impl, trait)
//!   must carry a `// SAFETY:` justification comment.
//! * **ordering** — every atomic call site must name an explicit
//!   `Ordering`; `SeqCst` additionally needs a `// SEQCST:` comment. Site
//!   extraction here also feeds the manifest cross-check in the driver.
//! * **epoch** — `pin()` only inside `guard_cache`; `defer_destroy` /
//!   `into_owned` only in allowlisted reclamation modules; no `Guard`
//!   stored in a struct/enum body outside the allowlist. Test code
//!   (`tests/` files and `#[cfg(test)]` modules) is exempt: substrate
//!   unit tests pin directly by design.
//! * **allow-justify** — every `#[allow(…)]` needs a trailing `// ALLOW:`
//!   justification.

use std::path::Path;

use crate::lexer::Scanned;
use crate::manifest::context_hash;
use crate::syntax::{has_marker, FileCtx};
use crate::Finding;

/// Atomic methods whose call sites the ordering audit tracks.
pub const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

/// Methods that are unambiguously atomic even without an `Ordering`
/// argument in sight — a call missing one is an explicitness violation.
/// (`load`/`store`/`swap` without an ordering are *not* flagged: slices
/// have `swap`, loaders have `load` — the lint stays false-positive-free
/// and the manifest's both-ways check still catches real drift.)
const STRICT_ATOMIC_METHODS: &[&str] = &[
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

/// The five memory-ordering variant names. `std::cmp::Ordering`'s variants
/// (`Less`/`Equal`/`Greater`) do not collide, so comparator code never
/// trips the audit.
pub const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Files allowed to call `epoch::pin()` directly: the guard cache is the
/// single place a pin may originate so that repin cadence, flush
/// quiescence and the weighted batch amortization stay centralized.
pub const PIN_ALLOWLIST: &[&str] = &["crates/llxscx/src/guard_cache.rs"];

/// Reclamation modules allowed to call `defer_destroy` / `into_owned` on
/// epoch pointers: each owns a documented retire protocol.
pub const RECLAIM_ALLOWLIST: &[&str] = &[
    // llxscx's descriptor/node retirement: install-only refcounts decide
    // the single retirer; dispose_record is the one free site.
    "crates/llxscx/src/reclaim.rs",
    // The hopscotch table's entry retirement (remove + growth): slots are
    // nulled before the entry is deferred, generations freeze on publish.
    "crates/hashmap/src/map.rs",
    // Drop paths that drain whole structures while externally quiesced.
    "crates/lockavl/src/lib.rs",
    "crates/skiplist/src/lib.rs",
];

/// Files allowed to store a `Guard` in a struct field: only the guard
/// cache's thread-local slot. Everywhere else guards must stay borrowed
/// (`&Guard`) so a repin can never invalidate a live snapshot.
pub const GUARD_FIELD_ALLOWLIST: &[&str] = &["crates/llxscx/src/guard_cache.rs"];

fn rel_str(path: &Path) -> String {
    path.to_string_lossy().replace('\\', "/")
}

fn in_allowlist(path: &Path, allow: &[&str]) -> bool {
    let rel = rel_str(path);
    allow.iter().any(|a| rel == *a)
}

/// Whether `path` is test code at the file level: an integration-test or
/// benchmark tree (`tests/`, `benches/`) rather than `src/`.
fn is_test_file(path: &Path) -> bool {
    path.components().any(|c| {
        let s = c.as_os_str().to_string_lossy();
        s == "tests" || s == "benches"
    })
}

// --- rule 1: unsafe coverage ----------------------------------------------

/// Every `unsafe` token needs a `// SAFETY:` comment (trailing, or in the
/// contiguous comment block above, attributes skipped). One comment covers
/// all `unsafe` tokens on its line. An `unsafe fn`/`unsafe trait`
/// *declaration* may instead carry a doc block with a `# Safety` section —
/// the caller-facing contract lives in rustdoc there (the shape clippy's
/// `missing_safety_doc` enforces), and duplicating it as a `// SAFETY:`
/// comment would just drift.
pub fn check_unsafe(path: &Path, sc: &Scanned, ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut last_line = 0usize;
    for off in sc.code_word_offsets("unsafe") {
        let line = sc.line_of(off);
        if line == last_line {
            continue;
        }
        last_line = line;
        let rest = sc.code()[off + "unsafe".len()..].trim_start();
        // `unsafe fn(..)` / `unsafe extern "C" fn(..)` with no name is a
        // function-pointer *type*; the obligation lives at call sites, not
        // at the type mention.
        let after_extern = rest
            .strip_prefix("extern")
            .map(|a| a.trim_start()) // ABI string is blanked in the projection
            .unwrap_or(rest);
        if after_extern
            .strip_prefix("fn")
            .is_some_and(|a| a.trim_start().starts_with('('))
        {
            continue;
        }
        // `unsafe fn` / `unsafe trait` declaration? Then a `# Safety` doc
        // section above also satisfies the rule.
        let is_decl =
            rest.starts_with("fn ") || rest.starts_with("extern ") || rest.starts_with("trait ");
        if is_decl && has_marker(sc, ctx, line, "# Safety") {
            continue;
        }
        if !has_marker(sc, ctx, line, "SAFETY:") {
            out.push(Finding {
                rule: "unsafe-safety",
                file: rel_str(path),
                line,
                message: "`unsafe` without an immediately preceding `// SAFETY:` comment".into(),
            });
        }
    }
    out
}

// --- rule 2: ordering audit -----------------------------------------------

/// One explicit-ordering atomic call site.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    /// Repo-relative file, forward slashes.
    pub file: String,
    /// 1-based line of the method token (the anchor line).
    pub line: usize,
    /// Comma-joined orderings in order of appearance, e.g. `"AcqRel,Acquire"`.
    pub ordering: String,
    /// Context hash of the anchor line's code text.
    pub hash: String,
    /// Trimmed code text of the anchor line (for diagnostics and manifest
    /// seeding).
    pub context: String,
    /// Last line of the (possibly multi-line) call, for SEQCST comment
    /// placement.
    pub end_line: usize,
}

/// Extracts atomic call sites and explicitness violations from one file.
pub fn atomic_sites(path: &Path, sc: &Scanned) -> (Vec<AtomicSite>, Vec<Finding>) {
    let code = sc.code();
    let bytes = code.as_bytes();
    let mut sites = Vec::new();
    let mut findings = Vec::new();
    for method in ATOMIC_METHODS {
        for off in sc.code_word_offsets(method) {
            // Must be a method call: `.method(` (receiver dot right before,
            // whitespace allowed after the name).
            if off == 0 || bytes[off - 1] != b'.' {
                continue;
            }
            let mut j = off + method.len();
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if j >= bytes.len() || bytes[j] != b'(' {
                continue;
            }
            // Balanced-paren argument span (code projection: parens in
            // strings/comments are blanked, so balance is reliable).
            let mut depth = 0usize;
            let mut end = j;
            while end < bytes.len() {
                match bytes[end] {
                    b'(' => depth += 1,
                    b')' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                end += 1;
            }
            let args = &code[j..end.min(code.len())];
            let mut orderings: Vec<&str> = Vec::new();
            for (at, _) in args.match_indices(|c: char| c.is_ascii_uppercase()) {
                for ord in ORDERINGS {
                    if args[at..].starts_with(ord) {
                        let before_ok = at == 0
                            || !args.as_bytes()[at - 1].is_ascii_alphanumeric()
                                && args.as_bytes()[at - 1] != b'_';
                        let after = at + ord.len();
                        let after_ok = after >= args.len()
                            || !args.as_bytes()[after].is_ascii_alphanumeric()
                                && args.as_bytes()[after] != b'_';
                        if before_ok && after_ok {
                            orderings.push(ord);
                        }
                    }
                }
            }
            let line = sc.line_of(off);
            if orderings.is_empty() {
                if STRICT_ATOMIC_METHODS.contains(method) {
                    findings.push(Finding {
                        rule: "ordering-explicit",
                        file: rel_str(path),
                        line,
                        message: format!(
                            "`.{method}(…)` names no explicit memory ordering — pass an \
                             `Ordering::*` literal at the call site"
                        ),
                    });
                }
                continue;
            }
            sites.push(AtomicSite {
                file: rel_str(path),
                line,
                ordering: orderings.join(","),
                hash: context_hash(sc.code_line(line)),
                context: sc.line_text(line).trim().to_string(),
                end_line: sc.line_of(end.min(code.len().saturating_sub(1))),
            });
        }
    }
    sites.sort_by_key(|s| (s.line, s.ordering.clone()));
    findings.sort_by_key(|f| f.line);
    (sites, findings)
}

/// `SeqCst` sites additionally need a `// SEQCST:` justification comment:
/// trailing on any line of the call, or in the comment block above it.
pub fn check_seqcst(sc: &Scanned, ctx: &FileCtx, sites: &[AtomicSite]) -> Vec<Finding> {
    let mut out = Vec::new();
    for site in sites {
        if !site.ordering.contains("SeqCst") {
            continue;
        }
        let trailing = (site.line..=site.end_line).any(|l| sc.line_comment_contains(l, "SEQCST:"));
        if !trailing && !has_marker(sc, ctx, site.line, "SEQCST:") {
            out.push(Finding {
                rule: "seqcst-justify",
                file: site.file.clone(),
                line: site.line,
                message: "SeqCst ordering without a `// SEQCST:` justification comment".into(),
            });
        }
    }
    out
}

// --- rule 3: epoch-guard discipline ---------------------------------------

/// Qualifier idents that make a `pin(` call *not* the epoch pin.
const PIN_FALSE_QUALIFIERS: &[&str] = &["Box", "Pin", "pin"]; // std::pin::pin!

/// Epoch-discipline checks. Skipped wholesale for test files; `#[cfg(test)]`
/// module bodies are skipped per site.
pub fn check_epoch(path: &Path, sc: &Scanned, ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    if is_test_file(path) {
        return out;
    }
    let code = sc.code();
    let bytes = code.as_bytes();

    if !in_allowlist(path, PIN_ALLOWLIST) {
        for off in sc.code_word_offsets("pin") {
            let line = sc.line_of(off);
            if ctx.in_test_mod(line) {
                continue;
            }
            // Must be a call: `pin` followed by `(`.
            let mut j = off + 3;
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if j >= bytes.len() || bytes[j] != b'(' {
                continue;
            }
            // Method calls `.pin(` and foreign qualifiers `Box::pin(` are
            // not the epoch pin.
            if off > 0 && bytes[off - 1] == b'.' {
                continue;
            }
            if off >= 2 && &code[off - 2..off] == "::" {
                let q_end = off - 2;
                let mut q_start = q_end;
                while q_start > 0 && {
                    let b = bytes[q_start - 1];
                    b.is_ascii_alphanumeric() || b == b'_'
                } {
                    q_start -= 1;
                }
                // `crossbeam_epoch::pin` / `epoch::pin` / `llxscx::pin` are
                // the real thing; `Box::pin` / `Pin::…` / `pin::pin` are
                // std machinery.
                if PIN_FALSE_QUALIFIERS.contains(&&code[q_start..q_end]) {
                    continue;
                }
            }
            out.push(Finding {
                rule: "epoch-pin",
                file: rel_str(path),
                line,
                message: "direct `epoch::pin()` outside `llxscx::guard_cache` — use \
                          `guard_cache::with_guard` so pinning stays amortized and flushable"
                    .into(),
            });
        }
    }

    if !in_allowlist(path, RECLAIM_ALLOWLIST) {
        for word in ["defer_destroy", "into_owned"] {
            // `into_owned` also exists on `Cow`; only scan files that
            // actually use the epoch crate.
            if word == "into_owned"
                && !code.contains("crossbeam_epoch")
                && !code.contains("epoch::")
            {
                continue;
            }
            for off in sc.code_word_offsets(word) {
                let line = sc.line_of(off);
                if ctx.in_test_mod(line) {
                    continue;
                }
                let mut j = off + word.len();
                while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                    j += 1;
                }
                if j >= bytes.len() || bytes[j] != b'(' {
                    continue;
                }
                out.push(Finding {
                    rule: "epoch-reclaim",
                    file: rel_str(path),
                    line,
                    message: format!(
                        "`{word}` outside the reclamation allowlist — retirement must go \
                         through a module with a documented retire protocol"
                    ),
                });
            }
        }
    }

    if !in_allowlist(path, GUARD_FIELD_ALLOWLIST) {
        for (start, end) in type_body_spans(sc) {
            for off in sc.code_word_offsets("Guard") {
                if off <= start || off >= end {
                    continue;
                }
                let line = sc.line_of(off);
                if ctx.in_test_mod(line) {
                    continue;
                }
                out.push(Finding {
                    rule: "guard-field",
                    file: rel_str(path),
                    line,
                    message: "`Guard` stored in a struct/enum body — guards must stay \
                              borrowed so a guard-cache repin cannot invalidate a live \
                              snapshot"
                        .into(),
                });
            }
        }
    }

    out.sort_by_key(|f| f.line);
    out
}

/// Byte spans of `struct`/`enum`/`union` `{ … }` bodies (braced only;
/// tuple and unit structs cannot store a named `Guard` field worth
/// flagging — a tuple field is caught by the same `Guard`-word scan when
/// the span extends over `( … )`? No: tuple structs end at `;` and are
/// skipped here; the repo has none storing guards, and the fixture corpus
/// pins this decision down).
fn type_body_spans(sc: &Scanned) -> Vec<(usize, usize)> {
    let code = sc.code();
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for kw in ["struct", "enum", "union"] {
        for off in sc.code_word_offsets(kw) {
            let mut i = off + kw.len();
            // Find the body `{` before any `;` or `(` (unit/tuple struct).
            let mut open = None;
            while i < bytes.len() {
                match bytes[i] {
                    b'{' => {
                        open = Some(i);
                        break;
                    }
                    b';' | b'(' => break,
                    _ => i += 1,
                }
            }
            let Some(open) = open else { continue };
            let mut depth = 0usize;
            let mut end = open;
            while end < bytes.len() {
                match bytes[end] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                end += 1;
            }
            out.push((open, end));
        }
    }
    out
}

// --- rule 4: suppression hygiene ------------------------------------------

/// Every `#[allow(…)]` / `#![allow(…)]` must carry an `// ALLOW:` comment
/// on its first or last line.
pub fn check_allow(path: &Path, sc: &Scanned) -> Vec<Finding> {
    let code = sc.code();
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while let Some(rel) = code[i..].find("allow") {
        let at = i + rel;
        i = at + 5;
        // Preceding `#[` or `#![` (whitespace tolerated).
        let mut k = at;
        let mut seen_bracket = false;
        let mut seen_bang = false;
        let mut seen_hash = false;
        while k > 0 {
            k -= 1;
            let b = bytes[k];
            if b.is_ascii_whitespace() {
                continue;
            }
            if b == b'[' && !seen_bracket {
                seen_bracket = true;
                continue;
            }
            if b == b'!' && seen_bracket && !seen_bang {
                seen_bang = true;
                continue;
            }
            if b == b'#' && seen_bracket {
                seen_hash = true;
            }
            break;
        }
        let _ = seen_bang;
        if !seen_hash {
            continue;
        }
        // Following `(` then the attribute's closing `]`.
        let mut j = at + 5;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= bytes.len() || bytes[j] != b'(' {
            continue;
        }
        let mut depth = 0usize;
        let mut end = k; // start from the `#`
        while end < bytes.len() {
            match bytes[end] {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        let first = sc.line_of(at);
        let last = sc.line_of(end.min(bytes.len().saturating_sub(1)));
        let justified =
            sc.line_comment_contains(first, "ALLOW:") || sc.line_comment_contains(last, "ALLOW:");
        if !justified {
            out.push(Finding {
                rule: "allow-justify",
                file: rel_str(path),
                line: first,
                message: "`#[allow(…)]` without a trailing `// ALLOW:` justification — \
                          justify the suppression or fix the lint"
                    .into(),
            });
        }
        i = end.max(i);
    }
    out
}
