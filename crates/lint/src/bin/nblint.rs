//! `nblint` — workspace concurrency-protocol static analyzer.
//!
//! ```sh
//! cargo run --release -p lint --bin nblint -- --check
//! cargo run --release -p lint --bin nblint -- --update-manifest
//! ```
//!
//! `--check` (the default) walks every first-party `*.rs`, runs the four
//! rule families plus the absorbed configuration gates, cross-checks
//! `docs/ordering_audit.toml` in both directions, and exits non-zero
//! listing `file:line: [rule] message` for every finding.
//!
//! `--update-manifest` regenerates the ordering manifest from the current
//! code, preserving hand-written justifications for surviving sites.

use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: nblint [--check | --update-manifest] [--root <path>]");
    std::process::exit(2);
}

fn main() {
    let mut mode_update = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => mode_update = false,
            "--update-manifest" => mode_update = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => usage(),
            },
            _ => usage(),
        }
    }
    // Repo root: two levels above this crate's manifest dir.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .expect("lint crate sits two levels under the repo root")
            .to_path_buf()
    });

    if mode_update {
        match lint::driver::update_manifest(&root) {
            Ok(text) => {
                let path = root.join(lint::driver::MANIFEST_PATH);
                if let Err(e) = std::fs::write(&path, &text) {
                    eprintln!("nblint: cannot write {}: {e}", path.display());
                    std::process::exit(2);
                }
                let rows = text.matches("[[site]]").count();
                println!(
                    "nblint: wrote {} with {rows} sites — review empty justifications \
                     before committing",
                    lint::driver::MANIFEST_PATH
                );
            }
            Err(e) => {
                eprintln!("nblint: {e}");
                std::process::exit(2);
            }
        }
        return;
    }

    match lint::driver::check(&root) {
        Ok(findings) if findings.is_empty() => {
            println!(
                "nblint: clean — unsafe/SAFETY coverage, ordering audit, epoch-guard \
                 discipline, suppression hygiene and configuration gates all hold"
            );
        }
        Ok(findings) => {
            for f in &findings {
                eprintln!("{f}");
            }
            eprintln!("nblint: {} finding(s)", findings.len());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("nblint: {e}");
            std::process::exit(2);
        }
    }
}
