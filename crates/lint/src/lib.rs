//! `nblint` — the workspace concurrency-protocol static analyzer.
//!
//! The suite's correctness rests on hand-maintained protocols: the
//! ordering audit in `docs/PERFORMANCE.md`, the guard-cache pinning
//! discipline, the slot-ownership argument for hop-bit RMWs. Stress tests
//! and TSan catch the interleavings we happen to run; this crate
//! machine-checks that the *code still matches the written protocols*, so
//! the gaps between runs stay covered too. Four first-party rule families
//! (see `docs/ANALYSIS.md` for the catalog):
//!
//! 1. **unsafe coverage** — every `unsafe` block/fn/impl/trait carries a
//!    `// SAFETY:` comment stating its invariant.
//! 2. **ordering audit** — every atomic call site names an explicit
//!    `Ordering` and has a justified row in `docs/ordering_audit.toml`
//!    (drift checked both ways); `SeqCst` needs a `// SEQCST:` comment.
//! 3. **epoch-guard discipline** — `pin()` only inside
//!    `llxscx::guard_cache`; `defer_destroy`/`into_owned` only in
//!    allowlisted reclamation modules; no `Guard` stored in type bodies.
//! 4. **suppression hygiene** — every `#[allow(…)]` carries `// ALLOW:`.
//!
//! Plus the absorbed configuration gates from the retired standalone
//! `cfgcheck` (environment-mutation tokens, `run_trial` hot-loop
//! discipline) — `cfgcheck` remains as a thin alias bin in `bench`.
//!
//! Everything is hand-rolled and dependency-free (same offline-vendor
//! policy as the rest of the workspace): a byte-level token-surface lexer
//! ([`lexer`]), line-context helpers ([`syntax`]), a TOML-subset manifest
//! reader ([`manifest`]) and the rule engine ([`rules`], [`driver`]).

#![warn(missing_docs)]

pub mod cfg;
pub mod driver;
pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod syntax;
pub mod walk;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier (`unsafe-safety`, `ordering-manifest`, …).
    pub rule: &'static str,
    /// Repo-relative file path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description with the fix direction.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}
