//! First-party source discovery: every `*.rs` under the repo root except
//! `vendor/` (not ours to lint), `target/`, hidden directories, and the
//! lint's own `tests/fixtures/` corpora (which contain deliberate
//! violations as test data).

use std::path::{Path, PathBuf};

/// Collects first-party `*.rs` files under `root`, sorted.
pub fn rust_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        let dir_name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name.starts_with('.') || name == "target" || name == "vendor" {
                    continue;
                }
                if name == "fixtures" && dir_name == "tests" {
                    continue; // lint test corpora: deliberate violations
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_skips_vendor_target_and_fixtures() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap();
        let files = rust_files(root);
        assert!(!files.is_empty());
        for f in &files {
            let s = f.to_string_lossy();
            assert!(!s.contains("/vendor/"), "vendored file walked: {s}");
            assert!(!s.contains("/target/"), "build artifact walked: {s}");
            assert!(!s.contains("/tests/fixtures/"), "fixture walked: {s}");
        }
        // The walk must cover every first-party crate layer.
        for needle in [
            "crates/llxscx/src/ops.rs",
            "crates/core/src/node.rs",
            "crates/lint/src/lexer.rs",
            "tests/cross_crate.rs",
        ] {
            assert!(
                files.iter().any(|f| f.to_string_lossy().ends_with(needle)),
                "missing {needle}"
            );
        }
    }
}
