//! A hand-rolled Rust *token-surface* scanner.
//!
//! `nblint`'s rules are textual ("an `unsafe` token must be preceded by a
//! `// SAFETY:` comment"), but naive text search lies: `unsafe` appears in
//! strings, doc comments, and `#[doc]` attributes all over a concurrency
//! codebase. This module classifies every byte of a source file as
//! [`Kind::Code`], [`Kind::Comment`] or [`Kind::Str`], handling the lexical
//! shapes that defeat grep:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */` — Rust block comments nest, unlike C),
//! * string literals with escapes (`"\""`), byte strings (`b"…"`),
//! * raw strings with arbitrary hash fences (`r#"…"#`, `br##"…"##`) — but
//!   not raw *identifiers* (`r#fn`), which stay code,
//! * char literals incl. escapes (`'\''`, `'\u{1F980}'`) vs lifetimes
//!   (`'static`, `<'a>`) and loop labels (`'outer:`).
//!
//! The scanner is byte-oriented; multi-byte UTF-8 sequences never collide
//! with the ASCII delimiters it switches on, so it is UTF-8 clean without
//! decoding.

/// Lexical class of one byte of source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Real code: identifiers, punctuation, whitespace between tokens.
    Code,
    /// Inside a `//…` or `/* … */` comment (delimiters included).
    Comment,
    /// Inside a string, raw string, byte string or char literal.
    Str,
}

/// A scanned source file: the raw text plus a per-byte [`Kind`] map and a
/// code-only projection used for token search.
pub struct Scanned {
    text: String,
    kinds: Vec<Kind>,
    /// `text` with every non-[`Kind::Code`] byte replaced by a space
    /// (newlines preserved), so byte offsets and line numbers agree with
    /// the original and substring search only ever hits code.
    code: String,
    /// Byte offset where each 0-based line starts.
    line_starts: Vec<usize>,
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl Scanned {
    /// Scans `text`, classifying every byte.
    pub fn new(text: &str) -> Self {
        let bytes = text.as_bytes();
        let n = bytes.len();
        let mut kinds = vec![Kind::Code; n];
        let mut i = 0usize;
        while i < n {
            let b = bytes[i];
            match b {
                b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                    let end = memchr_newline(bytes, i);
                    fill(&mut kinds, i, end, Kind::Comment);
                    i = end;
                }
                b'/' if i + 1 < n && bytes[i + 1] == b'*' => {
                    // Nested block comment.
                    let mut depth = 1usize;
                    let start = i;
                    i += 2;
                    while i < n && depth > 0 {
                        if bytes[i] == b'/' && i + 1 < n && bytes[i + 1] == b'*' {
                            depth += 1;
                            i += 2;
                        } else if bytes[i] == b'*' && i + 1 < n && bytes[i + 1] == b'/' {
                            depth -= 1;
                            i += 2;
                        } else {
                            i += 1;
                        }
                    }
                    fill(&mut kinds, start, i, Kind::Comment);
                }
                b'"' => {
                    let end = scan_string(bytes, i);
                    fill(&mut kinds, i, end, Kind::Str);
                    i = end;
                }
                b'r' | b'b' if !prev_is_ident(bytes, i) => {
                    // Possible r"…", r#"…"#, b"…", br#"…"#, b'…' prefixes.
                    if let Some(end) = scan_prefixed_literal(bytes, i) {
                        fill(&mut kinds, i, end, Kind::Str);
                        i = end;
                    } else {
                        i += 1;
                    }
                }
                b'\'' => {
                    if let Some(end) = scan_char_literal(bytes, i) {
                        fill(&mut kinds, i, end, Kind::Str);
                        i = end;
                    } else {
                        // Lifetime or label: the quote and ident stay code.
                        i += 1;
                    }
                }
                _ => i += 1,
            }
        }
        let code = text
            .bytes()
            .zip(kinds.iter())
            .map(|(b, k)| {
                if *k == Kind::Code || b == b'\n' {
                    b
                } else {
                    b' '
                }
            })
            .collect::<Vec<u8>>();
        // SAFETY-free reconstruction: every replaced byte is ASCII space and
        // multi-byte sequences are replaced wholesale, so this is valid
        // UTF-8 — but go through the checked constructor anyway.
        let code = String::from_utf8(code).expect("masking preserves UTF-8");
        let mut line_starts = vec![0usize];
        for (at, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(at + 1);
            }
        }
        Scanned {
            text: text.to_string(),
            kinds,
            code,
            line_starts,
        }
    }

    /// The original text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The code-only projection (non-code bytes blanked, offsets preserved).
    pub fn code(&self) -> &str {
        &self.code
    }

    /// [`Kind`] of the byte at `offset`.
    pub fn kind_at(&self, offset: usize) -> Kind {
        self.kinds[offset]
    }

    /// Number of lines.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// 1-based line containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= offset)
    }

    /// Byte range of 1-based `line` (without the trailing newline).
    fn line_span(&self, line: usize) -> (usize, usize) {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map(|&s| s.saturating_sub(1))
            .unwrap_or(self.text.len());
        (start, end)
    }

    /// Raw text of 1-based `line`.
    pub fn line_text(&self, line: usize) -> &str {
        let (s, e) = self.line_span(line);
        &self.text[s..e]
    }

    /// Code-only text of 1-based `line`.
    pub fn code_line(&self, line: usize) -> &str {
        let (s, e) = self.line_span(line);
        &self.code[s..e]
    }

    /// Whether 1-based `line` carries a comment containing `marker`
    /// (`SAFETY:`, `SEQCST:`, `ALLOW:` …). Only [`Kind::Comment`] bytes
    /// count: the marker inside a string literal does not satisfy a rule.
    pub fn line_comment_contains(&self, line: usize, marker: &str) -> bool {
        let (s, e) = self.line_span(line);
        self.text[s..e]
            .match_indices(marker)
            .any(|(at, _)| self.kinds[s + at] == Kind::Comment)
    }

    /// Iterator over word-boundary occurrences of `word` in the code
    /// projection, yielding byte offsets.
    pub fn code_word_offsets<'a>(&'a self, word: &'a str) -> impl Iterator<Item = usize> + 'a {
        let bytes = self.code.as_bytes();
        self.code.match_indices(word).filter_map(move |(at, _)| {
            // `r#word` is a raw identifier, not the keyword/method token.
            let raw_ident = at >= 2
                && bytes[at - 1] == b'#'
                && bytes[at - 2] == b'r'
                && (at == 2 || !is_ident(bytes[at - 3]));
            let before_ok = !raw_ident && (at == 0 || !is_ident(bytes[at - 1]));
            let end = at + word.len();
            let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
            (before_ok && after_ok).then_some(at)
        })
    }
}

fn fill(kinds: &mut [Kind], from: usize, to: usize, k: Kind) {
    let to = to.min(kinds.len());
    for slot in &mut kinds[from..to] {
        *slot = k;
    }
}

fn memchr_newline(bytes: &[u8], from: usize) -> usize {
    bytes[from..]
        .iter()
        .position(|&b| b == b'\n')
        .map(|p| from + p)
        .unwrap_or(bytes.len())
}

fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && is_ident(bytes[i - 1])
}

/// Scans a plain `"…"` string starting at the opening quote; returns the
/// offset one past the closing quote.
fn scan_string(bytes: &[u8], start: usize) -> usize {
    let n = bytes.len();
    let mut i = start + 1;
    while i < n {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    n
}

/// Scans `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##` or `b'…'` starting at the
/// `r`/`b` prefix. Returns `None` if this is not actually a literal (raw
/// identifier `r#fn`, or a bare `r`/`b` identifier).
fn scan_prefixed_literal(bytes: &[u8], start: usize) -> Option<usize> {
    let n = bytes.len();
    let mut i = start;
    let mut raw = false;
    if bytes[i] == b'b' {
        i += 1;
        if i < n && bytes[i] == b'\'' {
            // Byte char literal b'x' / b'\n'.
            return scan_char_literal(bytes, i).or(Some((i + 2).min(n)));
        }
        if i < n && bytes[i] == b'r' {
            raw = true;
            i += 1;
        }
    } else {
        // bytes[start] == b'r'
        raw = true;
        i += 1;
    }
    let mut hashes = 0usize;
    if raw {
        while i < n && bytes[i] == b'#' {
            hashes += 1;
            i += 1;
        }
    }
    if i >= n || bytes[i] != b'"' {
        return None; // raw identifier or plain `r`/`b` ident
    }
    if !raw {
        return Some(scan_string(bytes, i));
    }
    // Raw string: no escapes; ends at `"` followed by `hashes` hashes.
    let mut j = i + 1;
    while j < n {
        if bytes[j] == b'"'
            && bytes[j + 1..]
                .iter()
                .take(hashes)
                .filter(|&&b| b == b'#')
                .count()
                == hashes
        {
            return Some(j + 1 + hashes);
        }
        j += 1;
    }
    Some(n)
}

/// Scans a char literal starting at the opening `'`; returns the offset one
/// past the closing quote, or `None` if this is a lifetime/label.
fn scan_char_literal(bytes: &[u8], start: usize) -> Option<usize> {
    let n = bytes.len();
    let i = start + 1;
    if i >= n {
        return None;
    }
    if bytes[i] == b'\\' {
        // Escaped: scan to the closing quote ('\n', '\'', '\u{…}').
        let mut j = i + 1;
        while j < n {
            match bytes[j] {
                b'\\' => j += 2,
                b'\'' => return Some(j + 1),
                b'\n' => return None, // malformed; treat as lifetime-ish
                _ => j += 1,
            }
        }
        return None;
    }
    // One UTF-8 char (1–4 bytes) then a closing quote ⇒ char literal;
    // anything else (identifier run, `<`, `,`, …) ⇒ lifetime or label.
    let len = utf8_len(bytes[i]);
    let j = i + len;
    if j < n && bytes[j] == b'\'' && bytes[i] != b'\'' {
        Some(j + 1)
    } else {
        None
    }
}

fn utf8_len(b: u8) -> usize {
    match b {
        _ if b < 0x80 => 1,
        _ if b & 0xE0 == 0xC0 => 2,
        _ if b & 0xF0 == 0xE0 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> String {
        Scanned::new(src).code().to_string()
    }

    #[test]
    fn line_comments_are_masked() {
        let c = code_of("let x = 1; // unsafe here\nlet y = 2;");
        assert!(!c.contains("unsafe"));
        assert!(c.contains("let y = 2;"));
    }

    #[test]
    fn nested_block_comments_are_masked_to_the_outer_close() {
        let c = code_of("a /* outer /* inner unsafe */ still comment */ b");
        assert!(!c.contains("unsafe"));
        assert!(!c.contains("still"));
        assert!(c.starts_with('a'));
        assert!(c.trim_end().ends_with('b'));
    }

    #[test]
    fn strings_and_escapes_are_masked() {
        let c = code_of(r#"let s = "unsafe \" still string"; let t = 1;"#);
        assert!(!c.contains("unsafe"));
        assert!(!c.contains("still"));
        assert!(c.contains("let t = 1;"));
    }

    #[test]
    fn raw_strings_with_hash_fences_are_masked() {
        let c = code_of(r###"let s = r#"unsafe " not closed yet"# ; let u = 2;"###);
        assert!(!c.contains("unsafe"));
        assert!(c.contains("let u = 2;"));
        let c = code_of("let s = r\"unsafe\"; done();");
        assert!(!c.contains("unsafe"));
        assert!(c.contains("done();"));
    }

    #[test]
    fn byte_strings_and_byte_chars_are_masked() {
        let c = code_of(r#"let b = b"unsafe"; let ch = b'u'; go();"#);
        assert!(!c.contains("unsafe"));
        assert!(c.contains("go();"));
    }

    #[test]
    fn raw_identifiers_stay_code() {
        let c = code_of("fn r#unsafe() {} call(r#fn);");
        // The raw-identifier *keyword text* stays visible — it is code —
        // and nothing after it is swallowed as a string.
        assert!(c.contains("call(r#fn);"));
        // But word search must not mistake `r#unsafe` for the keyword.
        let sc = Scanned::new("fn r#unsafe() {}\nunsafe { f() };\n");
        let hits: Vec<usize> = sc.code_word_offsets("unsafe").collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(sc.line_of(hits[0]), 2);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let c = code_of("let q = '\"'; let l: &'static str = x; let c2 = 'a'; 'outer: loop {}");
        // The quote char literal must not open a string that swallows the rest.
        assert!(c.contains("let l:"));
        assert!(c.contains("&'static str"), "lifetimes stay code: {c}");
        assert!(!c.contains("'a'"), "char literal masked");
        assert!(c.contains("'outer: loop"), "labels stay code");
    }

    #[test]
    fn escaped_char_literals() {
        let c = code_of(r"let a = '\''; let b = '\u{1F980}'; end();");
        assert!(c.contains("end();"));
        assert!(!c.contains("1F980"));
    }

    #[test]
    fn unicode_in_strings_and_comments() {
        let c = code_of("let s = \"日本語 unsafe\"; // コメント unsafe\nok();");
        assert!(!c.contains("unsafe"));
        assert!(c.contains("ok();"));
    }

    #[test]
    fn line_numbers_and_line_text() {
        let sc = Scanned::new("first\nsecond // c\nthird");
        assert_eq!(sc.line_count(), 3);
        assert_eq!(sc.line_text(2), "second // c");
        assert_eq!(sc.code_line(2).trim_end(), "second");
        let off = sc.text().find("third").unwrap();
        assert_eq!(sc.line_of(off), 3);
    }

    #[test]
    fn comment_marker_detection_ignores_strings() {
        let sc = Scanned::new("let x = \"SAFETY: fake\"; // real comment\n");
        assert!(!sc.line_comment_contains(1, "SAFETY:"));
        let sc = Scanned::new("let y = 1; // SAFETY: the real thing\n");
        assert!(sc.line_comment_contains(1, "SAFETY:"));
    }

    #[test]
    fn word_boundary_search() {
        let sc = Scanned::new("unsafe_code unsafe fn f() {} my_unsafe\n");
        let hits: Vec<usize> = sc.code_word_offsets("unsafe").collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(sc.line_of(hits[0]), 1);
    }

    #[test]
    fn doc_comments_and_doc_attrs() {
        let src = "/// doc unsafe\n//! inner unsafe\n#[doc = \"attr unsafe\"]\nfn f() {}\n";
        let c = code_of(src);
        assert!(!c.contains("unsafe"));
        assert!(c.contains("fn f() {}"));
    }
}
