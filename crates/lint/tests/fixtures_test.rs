//! Integration tests over the fixture corpus in `tests/fixtures/`: each
//! rule family must report exactly the planted violations (file:line
//! precise) and nothing on the clean corpus — then a self-scan over the
//! real repository must come back clean.
//!
//! Fixtures are *not* compiled (the walk excludes `tests/fixtures/`), so
//! they can contain deliberate violations and even non-compiling shapes.

use std::path::{Path, PathBuf};

use lint::lexer::Scanned;
use lint::syntax::FileCtx;
use lint::{driver, manifest, rules, Finding};

fn fixture(name: &str) -> (Scanned, FileCtx) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let text = std::fs::read_to_string(&path).unwrap();
    let sc = Scanned::new(&text);
    let ctx = FileCtx::new(&sc);
    (sc, ctx)
}

/// Synthetic first-party path: not test code, not on any allowlist.
fn fake() -> PathBuf {
    PathBuf::from("crates/fake/src/lib.rs")
}

fn lines(findings: &[Finding], rule: &str) -> Vec<usize> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

// --- unsafe coverage -------------------------------------------------------

#[test]
fn unsafe_clean_corpus_has_zero_findings() {
    let (sc, ctx) = fixture("unsafe_clean.rs");
    let f = rules::check_unsafe(&fake(), &sc, &ctx);
    assert!(f.is_empty(), "false positives: {f:?}");
}

#[test]
fn unsafe_bad_corpus_is_caught_at_exact_lines() {
    let (sc, ctx) = fixture("unsafe_bad.rs");
    let f = rules::check_unsafe(&fake(), &sc, &ctx);
    assert_eq!(lines(&f, "unsafe-safety"), vec![5, 10, 16, 20, 26], "{f:?}");
    for finding in &f {
        assert_eq!(finding.file, "crates/fake/src/lib.rs");
    }
}

// --- ordering audit --------------------------------------------------------

#[test]
fn ordering_clean_corpus_extracts_sites_without_findings() {
    let (sc, ctx) = fixture("ordering_clean.rs");
    let (sites, f) = rules::atomic_sites(&fake(), &sc);
    assert!(f.is_empty(), "false explicitness findings: {f:?}");
    let got: Vec<(usize, &str)> = sites
        .iter()
        .map(|s| (s.line, s.ordering.as_str()))
        .collect();
    assert_eq!(
        got,
        vec![
            (7, "Acquire"),
            (8, "Release"),
            (9, "Relaxed"),
            (10, "AcqRel,Acquire"),
            (12, "SeqCst"),
            (13, "SeqCst"),
            (14, "SeqCst,Relaxed"),
        ]
    );
    let f = rules::check_seqcst(&sc, &ctx, &sites);
    assert!(f.is_empty(), "false SEQCST findings: {f:?}");
}

#[test]
fn ordering_bad_corpus_is_caught_at_exact_lines() {
    let (sc, ctx) = fixture("ordering_bad.rs");
    let (sites, f) = rules::atomic_sites(&fake(), &sc);
    // An ordering hidden behind a const/alias is an explicitness violation
    // on the strict methods.
    assert_eq!(lines(&f, "ordering-explicit"), vec![9, 10, 11], "{f:?}");
    // Only the literal-ordering sites are extracted for the manifest.
    let got: Vec<usize> = sites.iter().map(|s| s.line).collect();
    assert_eq!(got, vec![12, 13]);
    let f = rules::check_seqcst(&sc, &ctx, &sites);
    assert_eq!(lines(&f, "seqcst-justify"), vec![12, 13], "{f:?}");
}

// --- epoch-guard discipline ------------------------------------------------

#[test]
fn epoch_clean_corpus_has_zero_findings() {
    let (sc, ctx) = fixture("epoch_clean.rs");
    let f = rules::check_epoch(&fake(), &sc, &ctx);
    assert!(f.is_empty(), "false positives: {f:?}");
}

#[test]
fn epoch_bad_corpus_is_caught_at_exact_lines() {
    let (sc, ctx) = fixture("epoch_bad.rs");
    let f = rules::check_epoch(&fake(), &sc, &ctx);
    assert_eq!(lines(&f, "epoch-pin"), vec![7, 9], "{f:?}");
    assert_eq!(lines(&f, "epoch-reclaim"), vec![15, 16], "{f:?}");
    assert_eq!(lines(&f, "guard-field"), vec![20], "{f:?}");
}

#[test]
fn epoch_rules_exempt_test_files() {
    let (sc, ctx) = fixture("epoch_bad.rs");
    let f = rules::check_epoch(Path::new("crates/fake/tests/stress.rs"), &sc, &ctx);
    assert!(f.is_empty(), "test files must be exempt: {f:?}");
}

// --- suppression hygiene ---------------------------------------------------

#[test]
fn allow_corpus_is_caught_at_exact_lines() {
    let (sc, _) = fixture("allow_bad.rs");
    let f = rules::check_allow(&fake(), &sc);
    assert_eq!(lines(&f, "allow-justify"), vec![3, 5, 8], "{f:?}");
}

// --- manifest drift, end to end --------------------------------------------

#[test]
fn manifest_drift_is_reported_both_ways_with_exact_location() {
    let src_v1 = "fn f(a: &A) { a.store(1, Ordering::Release); }\n";
    let (sites, f) = rules::atomic_sites(&fake(), &Scanned::new(src_v1));
    assert!(f.is_empty());
    assert_eq!(sites.len(), 1);

    // Seed a manifest from the v1 site, round-trip it through the real
    // renderer and parser, and confirm the cross-check is clean.
    let rows: Vec<manifest::Row> = sites
        .iter()
        .map(|s| manifest::Row {
            file: s.file.clone(),
            line: s.line,
            hash: s.hash.clone(),
            ordering: s.ordering.clone(),
            justification: "publishes the handoff".into(),
        })
        .collect();
    let rows = manifest::parse(&manifest::render(&rows)).unwrap();
    assert!(driver::check_manifest(&sites, &rows).is_empty());

    // The code's ordering weakens without the manifest changing: drift
    // must be reported in BOTH directions, each with exact file:line.
    let src_v2 = "fn f(a: &A) { a.store(1, Ordering::Relaxed); }\n";
    let (sites2, _) = rules::atomic_sites(&fake(), &Scanned::new(src_v2));
    let f = driver::check_manifest(&sites2, &rows);
    assert_eq!(f.len(), 2, "{f:?}");
    let missing = f.iter().find(|x| x.message.contains("not in")).unwrap();
    assert_eq!(missing.rule, "ordering-manifest");
    assert_eq!(
        (missing.file.as_str(), missing.line),
        ("crates/fake/src/lib.rs", 1)
    );
    let stale = f
        .iter()
        .find(|x| x.message.contains("stale manifest row"))
        .unwrap();
    assert_eq!(stale.rule, "ordering-manifest");
    assert_eq!(
        (stale.file.as_str(), stale.line),
        ("crates/fake/src/lib.rs", 1)
    );
}

// --- the real repository must be clean -------------------------------------

#[test]
fn self_scan_of_the_repository_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap();
    let findings = driver::check(root).expect("nblint infrastructure");
    assert!(
        findings.is_empty(),
        "the repo must pass its own lint:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
