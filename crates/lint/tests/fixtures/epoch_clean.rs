//! Fixture: epoch-discipline clean shapes — none of these is a
//! violation.

fn not_the_epoch_pin() {
    let _fut = Box::pin(async {});
    let _p = std::pin::pin!(42);
}

fn method_pin(map: &impl MapLike) {
    map.pin();
}

struct NoGuardHere {
    value: usize,
}

fn borrowed_guard_is_fine(g: &crossbeam_epoch::Guard) {
    let _ = g;
}

#[cfg(test)]
mod tests {
    #[test]
    fn unit_tests_may_pin_directly() {
        let _g = crossbeam_epoch::pin();
    }
}
