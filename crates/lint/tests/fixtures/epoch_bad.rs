//! Fixture: epoch-discipline violations at known lines (tested under a
//! synthetic path outside every allowlist). Keep edits append-only.

use crossbeam_epoch::Guard;

fn pins_directly() {
    let g = crossbeam_epoch::pin(); // line 7
    drop(g);
    let g2 = epoch::pin(); // line 9
    drop(g2);
}

fn frees_directly(a: &crossbeam_epoch::Atomic<u8>, g: &Guard) {
    let s = a.load(std::sync::atomic::Ordering::Acquire, g);
    unsafe { g.defer_destroy(s) }; // line 15
    let _owned = unsafe { a.load_consume(g).into_owned() }; // line 16
}

struct HoldsGuard {
    guard: Guard, // line 20
}
