//! Fixture: unjustified `unsafe` at known lines. The integration test
//! asserts the exact line numbers, so keep edits append-only.

fn naked_block() {
    let _ = unsafe { std::ptr::null::<u8>().is_null() }; // line 5
}

// A comment that is not a SAFETY comment does not count.
fn wrong_comment() {
    let _ = unsafe { std::ptr::null::<u8>().is_null() }; // line 10
}

// SAFETY: this block is NOT contiguous — the blank line below breaks it.

fn broken_block() {
    let _ = unsafe { std::ptr::null::<u8>().is_null() }; // line 16
}

/// Missing the safety docs section and the comment form too.
unsafe fn undocumented_decl(p: *const u8) -> bool {
    // SAFETY: inner block is fine; the decl on line 20 is the finding.
    unsafe { p.is_null() }
}

struct AlsoPtr(*const u8);
unsafe impl Send for AlsoPtr {} // line 26: impls never get the doc escape
