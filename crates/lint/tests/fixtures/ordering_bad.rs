//! Fixture: ordering-audit violations at known lines. The integration
//! test asserts exact line numbers, so keep edits append-only.

use std::sync::atomic::{AtomicUsize, Ordering};

const HIDDEN: Ordering = Ordering::SeqCst;

fn bad(a: &AtomicUsize) {
    let _ = a.fetch_add(1, HIDDEN); // line 9: alias hides the ordering
    let _ = a.compare_exchange(0, 1, HIDDEN, HIDDEN); // line 10
    let _ = a.fetch_update(HIDDEN, HIDDEN, |v| Some(v + 1)); // line 11
    let _ = a.load(Ordering::SeqCst); // line 12: SeqCst, no justification
    a.store(0, Ordering::SeqCst); // line 13: SeqCst, no justification
}
