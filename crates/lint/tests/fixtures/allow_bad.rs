//! Fixture: suppression-hygiene violations at known lines.

#![allow(dead_code)] // line 3: inner attribute, unjustified

#[allow(unused_variables)]
fn unjustified() {}

#[allow(
    clippy::needless_return,
    unused_mut,
)]
fn multi_line_unjustified() {}

#[allow(unused_imports)] // ALLOW: justified — no finding here
fn justified() {}

#[allow(
    dead_code,
)] // ALLOW: justified on the attribute's last line
fn multi_line_justified() {}

#[cfg_attr(test, allow(dead_code))] // gated allow: outside this rule
fn cfg_attr_case() {}
