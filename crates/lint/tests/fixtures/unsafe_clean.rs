//! Fixture: every `unsafe` here is justified — expect ZERO unsafe-safety
//! findings. Exercises trailing comments, comment blocks above, attribute
//! skipping, `# Safety` docs on declarations, and `unsafe` appearing in
//! non-code positions (strings, comments, raw strings, macros).

// The word unsafe in a line comment is not code.
/* Nor is unsafe inside /* a nested */ block comment. */

static S1: &str = "unsafe { not_code() }";
static S2: &str = r#"raw string with unsafe and a "quote""#;
static S3: &[u8] = b"unsafe bytes";
static C1: char = 'u'; // not a lifetime: 'u'

fn above() {
    // SAFETY: comment block immediately above the unsafe line.
    let _ = unsafe { std::ptr::null::<u8>().is_null() };
}

fn trailing() {
    let _ = unsafe { std::ptr::null::<u8>().is_null() }; // SAFETY: trailing form.
}

fn multi_line_block() {
    // SAFETY: the comment block may be several lines long and still
    // count, as long as it is contiguous with the unsafe line.
    let _ = unsafe { std::ptr::null::<u8>().is_null() };
}

// SAFETY: attributes between the comment block and the declaration are
// skipped, including multi-line ones.
#[inline]
#[cfg_attr(
    feature = "never",
    allow(dead_code) // ALLOW: fixture for multi-line attribute handling
)]
unsafe fn attr_between() {
    // SAFETY: inner block justified separately.
    let _ = unsafe { std::ptr::null::<u8>().is_null() };
}

/// Does a thing.
///
/// # Safety
/// Caller must pass a valid pointer — the doc section satisfies the rule
/// for declarations.
unsafe fn decl_with_safety_docs(p: *const u8) -> bool {
    // SAFETY: contract delegated to the caller per the doc section.
    unsafe { p.is_null() }
}

struct HasPtr(*const u8);
// SAFETY: raw pointer is never dereferenced; fixture impl.
unsafe impl Send for HasPtr {}
// SAFETY: same argument as `Send`.
unsafe impl Sync for HasPtr {}

type UnsafeFnPtr = unsafe fn(*const ());
type UnsafeExternFnPtr = unsafe extern "C" fn(*const ());

macro_rules! in_macro {
    () => {
        // SAFETY: macro bodies are scanned like any other code.
        unsafe { std::ptr::null::<u8>().is_null() }
    };
}

fn use_macro() -> bool {
    in_macro!()
}

fn r#unsafe() {} // raw identifier, not the keyword
