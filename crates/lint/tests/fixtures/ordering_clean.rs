//! Fixture: ordering-audit clean — every atomic call names an explicit
//! ordering and every SeqCst carries a SEQCST justification.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

fn explicit(a: &AtomicUsize, b: &AtomicBool) {
    let _ = a.load(Ordering::Acquire);
    a.store(1, Ordering::Release);
    let _ = a.fetch_add(1, Ordering::Relaxed);
    let _ = a.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire);
    // SEQCST: fixture — justification in the comment block above.
    let _ = b.swap(true, Ordering::SeqCst);
    let _ = b.load(Ordering::SeqCst); // SEQCST: trailing form.
    let _ = a.compare_exchange_weak(
        1,
        2,
        Ordering::SeqCst,
        Ordering::Relaxed, // SEQCST: trailing on a later line of the call.
    );
}

fn lookalikes(v: &mut [u8]) {
    v.swap(0, 1);
    let _ = "x".to_string().len();
}
