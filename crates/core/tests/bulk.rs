//! Sorted-bulk insert (`ChromaticTree::insert_bulk`) against the
//! sequential oracle and under concurrency.
//!
//! The bulk path reuses search-path prefixes between consecutive sorted
//! keys (see `chromatic/bulk.rs`), which is exactly the kind of
//! optimization that can silently misplace a key if the cached-ancestor
//! argument is wrong — so the oracle checks both the per-element results
//! *and* the full structural audit after every scenario, and the
//! concurrent tests hammer the cache-invalidation path (SCX failures,
//! cleanup restructuring) from multiple threads.

use nbtree::ChromaticTree;

/// Sequential oracle: bulk == BTreeMap replay, audit valid. Shared by the
/// unit scenarios and the proptest.
fn check_bulk_against_model(script: &[(bool, Vec<(u64, u64)>)], allowed_violations: u32) {
    use std::collections::BTreeMap;
    let tree = ChromaticTree::with_allowed_violations(allowed_violations);
    let mut model = BTreeMap::new();
    for (as_bulk, batch) in script {
        let expect: Vec<Option<u64>> = batch.iter().map(|&(k, v)| model.insert(k, v)).collect();
        if *as_bulk {
            assert_eq!(tree.insert_bulk(batch), expect, "bulk {batch:?}");
        } else {
            for (i, &(k, v)) in batch.iter().enumerate() {
                assert_eq!(tree.insert(k, v), expect[i], "point insert {k}");
            }
        }
    }
    let contents: Vec<(u64, u64)> = model.into_iter().collect();
    assert_eq!(tree.collect(), contents);
    let report = tree.audit();
    assert!(report.is_valid(), "{:?}", report.errors);
}

#[test]
fn bulk_batches_interleaved_with_point_inserts_match_model() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(7);
    for k in [0u32, 6] {
        let script: Vec<(bool, Vec<(u64, u64)>)> = (0..40)
            .map(|round| {
                let len = rng.gen_range(0..64usize);
                let batch = (0..len)
                    .map(|i| (rng.gen_range(0..500u64), round * 1000 + i as u64))
                    .collect();
                (rng.gen_bool(0.7), batch)
            })
            .collect();
        check_bulk_against_model(&script, k);
    }
}

#[test]
fn adversarial_shapes_match_model() {
    // Shapes that stress the prefix cache specifically: runs of identical
    // keys (the cache never pops), a fully ascending run (every step pops
    // at most one frame), a descending input (sorted internally), and a
    // batch spanning the whole keyspace after a tight cluster.
    let same: Vec<(u64, u64)> = (0..100).map(|i| (42, i)).collect();
    let asc: Vec<(u64, u64)> = (0..1000).map(|k| (k, k)).collect();
    let desc: Vec<(u64, u64)> = (0..1000).rev().map(|k| (k, k + 1)).collect();
    let cluster: Vec<(u64, u64)> = (0..100)
        .map(|i| (500 + i % 10, i))
        .chain((0..20).map(|i| (i * 1_000_000, i)))
        .collect();
    for k in [0u32, 6] {
        check_bulk_against_model(
            &[
                (true, same.clone()),
                (true, asc.clone()),
                (true, desc.clone()),
                (true, cluster.clone()),
            ],
            k,
        );
    }
}

mod bulk_proptest {
    use super::*;
    use proptest::prelude::*;

    /// Batches biased toward duplicates and clustered keys (modular
    /// arithmetic — the vendored proptest has no range strategies).
    fn batch_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
        proptest::collection::vec(
            (any::<u64>(), any::<u64>()).prop_map(|(k, v)| (k % 300, v)),
            0..80,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The satellite oracle: sorted-bulk insert matches `BTreeMap`
        /// sequential input-order application (duplicate keys: last one in
        /// batch order wins), interleaved bulk/point rounds included, and
        /// the tree's structural invariants survive. (The vendored
        /// `proptest!` supports one binding, hence the tuple input.)
        #[test]
        fn sorted_bulk_insert_matches_btreemap(
            input in (
                proptest::collection::vec((any::<bool>(), batch_strategy()), 1..12),
                any::<bool>(),
            )
        ) {
            let (script, allowed) = input;
            check_bulk_against_model(&script, if allowed { 6 } else { 0 });
        }
    }
}

#[test]
fn concurrent_bulk_writers_on_disjoint_stripes_settle_exactly() {
    // Each thread bulk-inserts its own key stripe (interleaved mod 4, so
    // consecutive sorted keys of different threads are neighbors in the
    // tree and the prefix caches collide constantly), then removes a
    // deterministic subset with point ops. The final state is exactly
    // predictable.
    use std::collections::BTreeMap;
    use std::sync::Arc;
    let tree = Arc::new(ChromaticTree::<u64, u64>::new());
    std::thread::scope(|s| {
        for tid in 0..4u64 {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                for round in 0..10u64 {
                    let batch: Vec<(u64, u64)> = (0..200u64)
                        .map(|i| ((round * 200 + i) * 4 + tid, round))
                        .collect();
                    tree.insert_bulk(&batch);
                    for &(k, _) in batch.iter().step_by(3) {
                        tree.remove(&k);
                    }
                }
            });
        }
    });
    let mut model = BTreeMap::new();
    for tid in 0..4u64 {
        for round in 0..10u64 {
            let batch: Vec<(u64, u64)> = (0..200u64)
                .map(|i| ((round * 200 + i) * 4 + tid, round))
                .collect();
            for &(k, v) in &batch {
                model.insert(k, v);
            }
            for &(k, _) in batch.iter().step_by(3) {
                model.remove(&k);
            }
        }
    }
    let expect: Vec<(u64, u64)> = model.into_iter().collect();
    assert_eq!(tree.collect(), expect);
    let report = tree.audit();
    assert!(report.is_valid(), "{:?}", report.errors);
}

#[test]
fn concurrent_bulk_writers_on_contended_keys_stay_valid() {
    // All threads bulk-insert overlapping keys while a remover churns:
    // values are racy by design, but every key a bulk claims to have
    // inserted must exist afterwards unless removed, and the structure
    // must audit clean — this is the path where SCX failures invalidate
    // the prefix cache over and over.
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let tree = Arc::new(ChromaticTree::<u64, u64>::new());
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        let writers: Vec<_> = (0..3u64)
            .map(|tid| {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    use rand::{rngs::StdRng, Rng, SeedableRng};
                    let mut rng = StdRng::seed_from_u64(tid);
                    for _ in 0..40 {
                        let batch: Vec<(u64, u64)> =
                            (0..128).map(|_| (rng.gen_range(0..256u64), tid)).collect();
                        let results = tree.insert_bulk(&batch);
                        assert_eq!(results.len(), batch.len());
                    }
                })
            })
            .collect();
        {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                use rand::{rngs::StdRng, Rng, SeedableRng};
                let mut rng = StdRng::seed_from_u64(99);
                while !stop.load(Ordering::Relaxed) {
                    let k = rng.gen_range(0..256u64);
                    tree.remove(&k);
                }
            });
        }
        // The remover churns for as long as the bulk writers run, then is
        // told to stop (before scope exit joins it).
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    let report = tree.audit();
    assert!(report.is_valid(), "{:?}", report.errors);
    // Quiescent sanity: the snapshot is sorted and duplicate-free.
    let snap = tree.collect();
    assert!(snap.windows(2).all(|w| w[0].0 < w[1].0));
}
