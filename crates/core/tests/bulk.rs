//! Sorted-bulk updates (`ChromaticTree::insert_bulk` /
//! `ChromaticTree::remove_bulk`) against the sequential oracle and under
//! concurrency.
//!
//! The bulk paths reuse search-path prefixes between consecutive sorted
//! keys and merge same-leaf runs into single SCXs (see
//! `chromatic/bulk.rs`), which is exactly the kind of optimization that
//! can silently misplace a key — or break the equal-weighted-path-sums
//! invariant — if the cached-ancestor or mini-subtree argument is wrong.
//! So the oracles check the per-element results *and* the full structural
//! audit (path-sum equality included) after every scenario, and the
//! concurrent tests hammer the cache-invalidation and merged-SCX fallback
//! paths from multiple threads.

use nbtree::ChromaticTree;

/// Sequential oracle: bulk == BTreeMap replay, audit valid. Shared by the
/// unit scenarios and the proptest.
fn check_bulk_against_model(script: &[(bool, Vec<(u64, u64)>)], allowed_violations: u32) {
    use std::collections::BTreeMap;
    let tree = ChromaticTree::with_allowed_violations(allowed_violations);
    let mut model = BTreeMap::new();
    for (as_bulk, batch) in script {
        let expect: Vec<Option<u64>> = batch.iter().map(|&(k, v)| model.insert(k, v)).collect();
        if *as_bulk {
            assert_eq!(tree.insert_bulk(batch), expect, "bulk {batch:?}");
        } else {
            for (i, &(k, v)) in batch.iter().enumerate() {
                assert_eq!(tree.insert(k, v), expect[i], "point insert {k}");
            }
        }
    }
    let contents: Vec<(u64, u64)> = model.into_iter().collect();
    assert_eq!(tree.collect(), contents);
    let report = tree.audit();
    assert!(report.is_valid(), "{:?}", report.errors);
}

/// Mixed-op oracle: each script entry is `(mode % 4, batch)` — bulk
/// insert, point inserts, bulk remove (the batch's keys), point removes —
/// replayed against a `BTreeMap`. After every op the audit must be clean,
/// with the weighted-path-sum invariant explicitly present whenever the
/// dictionary is non-empty (the merged mini-subtree install is built
/// around keeping it equal).
fn check_mixed_against_model(script: &[(u8, Vec<(u64, u64)>)], allowed_violations: u32) {
    use std::collections::BTreeMap;
    let tree = ChromaticTree::with_allowed_violations(allowed_violations);
    let mut model = BTreeMap::new();
    for (mode, batch) in script {
        match mode % 4 {
            0 => {
                let expect: Vec<Option<u64>> =
                    batch.iter().map(|&(k, v)| model.insert(k, v)).collect();
                assert_eq!(tree.insert_bulk(batch), expect, "insert_bulk {batch:?}");
            }
            1 => {
                for &(k, v) in batch {
                    assert_eq!(tree.insert(k, v), model.insert(k, v), "point insert {k}");
                }
            }
            2 => {
                let keys: Vec<u64> = batch.iter().map(|&(k, _)| k).collect();
                let expect: Vec<Option<u64>> = keys.iter().map(|k| model.remove(k)).collect();
                assert_eq!(tree.remove_bulk(&keys), expect, "remove_bulk {keys:?}");
            }
            _ => {
                for &(k, _) in batch {
                    assert_eq!(tree.remove(&k), model.remove(&k), "point remove {k}");
                }
            }
        }
        let report = tree.audit();
        assert!(
            report.is_valid(),
            "after {mode}/{batch:?}: {:?}",
            report.errors
        );
        if model.is_empty() {
            assert_eq!(report.weighted_path_sum, None, "empty tree has no paths");
        } else {
            assert!(report.weighted_path_sum.is_some(), "path sums must agree");
        }
    }
    let contents: Vec<(u64, u64)> = model.into_iter().collect();
    assert_eq!(tree.collect(), contents);
}

#[test]
fn bulk_batches_interleaved_with_point_inserts_match_model() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(7);
    for k in [0u32, 6] {
        let script: Vec<(bool, Vec<(u64, u64)>)> = (0..40)
            .map(|round| {
                let len = rng.gen_range(0..64usize);
                let batch = (0..len)
                    .map(|i| (rng.gen_range(0..500u64), round * 1000 + i as u64))
                    .collect();
                (rng.gen_bool(0.7), batch)
            })
            .collect();
        check_bulk_against_model(&script, k);
    }
}

#[test]
fn adversarial_shapes_match_model() {
    // Shapes that stress the prefix cache specifically: runs of identical
    // keys (the cache never pops), a fully ascending run (every step pops
    // at most one frame), a descending input (sorted internally), and a
    // batch spanning the whole keyspace after a tight cluster.
    let same: Vec<(u64, u64)> = (0..100).map(|i| (42, i)).collect();
    let asc: Vec<(u64, u64)> = (0..1000).map(|k| (k, k)).collect();
    let desc: Vec<(u64, u64)> = (0..1000).rev().map(|k| (k, k + 1)).collect();
    let cluster: Vec<(u64, u64)> = (0..100)
        .map(|i| (500 + i % 10, i))
        .chain((0..20).map(|i| (i * 1_000_000, i)))
        .collect();
    for k in [0u32, 6] {
        check_bulk_against_model(
            &[
                (true, same.clone()),
                (true, asc.clone()),
                (true, desc.clone()),
                (true, cluster.clone()),
            ],
            k,
        );
    }
}

#[test]
fn adversarial_run_shapes_match_model() {
    // Whole batch destined for one leaf (empty tree → a single merged
    // install), alternating runs (clusters interleaved with far-away
    // singletons, so merged installs and per-element inserts alternate
    // along the same batch), and full sweeps removing what was merged.
    let one_leaf: Vec<(u64, u64)> = (0..64).map(|k| (1000 + k, k)).collect();
    let alternating: Vec<(u64, u64)> = (0..8u64)
        .flat_map(|c| {
            let base = c * 10_000;
            (0..8u64)
                .map(move |i| (base + i, c))
                .chain(std::iter::once((base + 5_000, c)))
        })
        .collect();
    for k in [0u32, 6] {
        check_mixed_against_model(
            &[
                (0, one_leaf.clone()),
                (2, one_leaf.clone()),
                (0, alternating.clone()),
                (0, one_leaf.clone()),
                (2, alternating.clone()),
                (2, one_leaf.clone()),
            ],
            k,
        );
    }
}

#[test]
fn runs_straddling_pending_violations_match_model() {
    // Chromatic6 defers rebalancing, so after the ascending point inserts
    // the region is littered with pending violations; the clustered bulk
    // then lands its runs on leaves whose paths still carry them, and the
    // removal sweep contracts right through them. Every step re-audits.
    let evens: Vec<(u64, u64)> = (0..100u64).map(|k| (2 * k, k)).collect();
    let odds: Vec<(u64, u64)> = (0..100u64).map(|k| (2 * k + 1, k)).collect();
    let everything: Vec<(u64, u64)> = (0..200u64).map(|k| (k, 0)).collect();
    check_mixed_against_model(&[(1, evens), (0, odds), (2, everything)], 6);
}

mod bulk_proptest {
    use super::*;
    use proptest::prelude::*;

    /// Batches biased toward duplicates and clustered keys (modular
    /// arithmetic — the vendored proptest has no range strategies).
    fn batch_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
        proptest::collection::vec(
            (any::<u64>(), any::<u64>()).prop_map(|(k, v)| (k % 300, v)),
            0..80,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The satellite oracle: sorted-bulk insert matches `BTreeMap`
        /// sequential input-order application (duplicate keys: last one in
        /// batch order wins), interleaved bulk/point rounds included, and
        /// the tree's structural invariants survive. (The vendored
        /// `proptest!` supports one binding, hence the tuple input.)
        #[test]
        fn sorted_bulk_insert_matches_btreemap(
            input in (
                proptest::collection::vec((any::<bool>(), batch_strategy()), 1..12),
                any::<bool>(),
            )
        ) {
            let (script, allowed) = input;
            check_bulk_against_model(&script, if allowed { 6 } else { 0 });
        }

        /// Run-merging oracle: adversarially clustered batches (runs of
        /// consecutive keys over a narrow keyspace, so whole batches
        /// collapse into few leaves) driven through bulk/point inserts and
        /// removes, every step audit-checked for path-sum equality by
        /// `check_mixed_against_model`.
        #[test]
        fn clustered_run_bulk_ops_match_btreemap(
            input in (
                proptest::collection::vec((any::<u8>(), clustered_batch_strategy()), 1..10),
                any::<bool>(),
            )
        ) {
            let (script, allowed) = input;
            check_mixed_against_model(&script, if allowed { 6 } else { 0 });
        }
    }

    /// Batches made of runs of consecutive keys: a few (base, length)
    /// seeds expanded into `base..=base+len` clusters over a keyspace
    /// narrow enough that runs from different rounds straddle each other
    /// (and any violations a previous round left pending).
    fn clustered_batch_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
        proptest::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u64>())
                .prop_map(|(base, len, v)| (base % 200, len % 16, v)),
            0..10,
        )
        .prop_map(|runs| {
            runs.into_iter()
                .flat_map(|(base, len, v)| (0..=len).map(move |i| (base + i, v)))
                .collect()
        })
    }
}

#[test]
fn concurrent_bulk_writers_on_disjoint_stripes_settle_exactly() {
    // Each thread bulk-inserts its own key stripe (interleaved mod 4, so
    // consecutive sorted keys of different threads are neighbors in the
    // tree and the prefix caches collide constantly), then removes a
    // deterministic subset with point ops. The final state is exactly
    // predictable.
    use std::collections::BTreeMap;
    use std::sync::Arc;
    let tree = Arc::new(ChromaticTree::<u64, u64>::new());
    std::thread::scope(|s| {
        for tid in 0..4u64 {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                for round in 0..10u64 {
                    let batch: Vec<(u64, u64)> = (0..200u64)
                        .map(|i| ((round * 200 + i) * 4 + tid, round))
                        .collect();
                    tree.insert_bulk(&batch);
                    for &(k, _) in batch.iter().step_by(3) {
                        tree.remove(&k);
                    }
                }
            });
        }
    });
    let mut model = BTreeMap::new();
    for tid in 0..4u64 {
        for round in 0..10u64 {
            let batch: Vec<(u64, u64)> = (0..200u64)
                .map(|i| ((round * 200 + i) * 4 + tid, round))
                .collect();
            for &(k, v) in &batch {
                model.insert(k, v);
            }
            for &(k, _) in batch.iter().step_by(3) {
                model.remove(&k);
            }
        }
    }
    let expect: Vec<(u64, u64)> = model.into_iter().collect();
    assert_eq!(tree.collect(), expect);
    let report = tree.audit();
    assert!(report.is_valid(), "{:?}", report.errors);
}

#[test]
fn concurrent_bulk_writers_on_contended_keys_stay_valid() {
    // All threads bulk-insert overlapping keys while a remover churns:
    // values are racy by design, but every key a bulk claims to have
    // inserted must exist afterwards unless removed, and the structure
    // must audit clean — this is the path where SCX failures invalidate
    // the prefix cache over and over.
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    let tree = Arc::new(ChromaticTree::<u64, u64>::new());
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        let writers: Vec<_> = (0..3u64)
            .map(|tid| {
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    use rand::{rngs::StdRng, Rng, SeedableRng};
                    let mut rng = StdRng::seed_from_u64(tid);
                    for _ in 0..40 {
                        let batch: Vec<(u64, u64)> =
                            (0..128).map(|_| (rng.gen_range(0..256u64), tid)).collect();
                        let results = tree.insert_bulk(&batch);
                        assert_eq!(results.len(), batch.len());
                    }
                })
            })
            .collect();
        {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                use rand::{rngs::StdRng, Rng, SeedableRng};
                let mut rng = StdRng::seed_from_u64(99);
                while !stop.load(Ordering::Relaxed) {
                    let k = rng.gen_range(0..256u64);
                    tree.remove(&k);
                }
            });
        }
        // The remover churns for as long as the bulk writers run, then is
        // told to stop (before scope exit joins it).
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    let report = tree.audit();
    assert!(report.is_valid(), "{:?}", report.errors);
    // Quiescent sanity: the snapshot is sorted and duplicate-free.
    let snap = tree.collect();
    assert!(snap.windows(2).all(|w| w[0].0 < w[1].0));
}

#[test]
fn concurrent_contended_bulk_runs_stay_valid() {
    // Writers bulk-insert overlapping *clustered* batches (maximal
    // same-leaf runs, so whole-run SCXs contend directly) while a bulk
    // remover sweeps the same clusters with consecutive keys (pair
    // collapses contending with the installs). Exercises the merged-SCX
    // fallback path: a losing install must retry per-element without
    // losing or duplicating elements.
    use std::sync::Arc;
    let tree = Arc::new(ChromaticTree::<u64, u64>::new());
    // Deterministic seed batch so the merged-install counter is provably
    // exercised even if every contended install below falls back.
    tree.insert_bulk(&(0..64u64).map(|k| (k, 0)).collect::<Vec<_>>());
    assert!(tree.stats().merged_insert_scxs() >= 1);
    std::thread::scope(|s| {
        for tid in 0..3u64 {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                use rand::{rngs::StdRng, Rng, SeedableRng};
                let mut rng = StdRng::seed_from_u64(tid);
                for _ in 0..30 {
                    let base = rng.gen_range(0..8u64) * 64;
                    let batch: Vec<(u64, u64)> = (base..base + 64).map(|k| (k, tid)).collect();
                    let results = tree.insert_bulk(&batch);
                    assert_eq!(results.len(), batch.len());
                }
            });
        }
        {
            let tree = Arc::clone(&tree);
            s.spawn(move || {
                use rand::{rngs::StdRng, Rng, SeedableRng};
                let mut rng = StdRng::seed_from_u64(77);
                for _ in 0..30 {
                    let base = rng.gen_range(0..8u64) * 64;
                    let keys: Vec<u64> = (base..base + 64).collect();
                    let removed = tree.remove_bulk(&keys);
                    assert_eq!(removed.len(), keys.len());
                }
            });
        }
    });
    let report = tree.audit();
    assert!(report.is_valid(), "{:?}", report.errors);
    let snap = tree.collect();
    assert!(snap.windows(2).all(|w| w[0].0 < w[1].0));
}
