//! Sequential correctness of the chromatic tree against a model, with full
//! invariant audits at every checkpoint.

use nbtree::ChromaticTree;
use std::collections::BTreeMap;

fn audit_ok(t: &ChromaticTree<u64, u64>) {
    let report = t.audit();
    assert!(report.is_valid(), "invariant breach: {:?}", report.errors);
    assert_eq!(
        report.violations(),
        0,
        "violations at quiescence: {report:?}"
    );
}

#[test]
fn empty_tree_queries() {
    let t: ChromaticTree<u64, u64> = ChromaticTree::new();
    assert_eq!(t.get(&1), None);
    assert_eq!(t.remove(&1), None);
    assert_eq!(t.successor(&1), None);
    assert_eq!(t.predecessor(&1), None);
    assert_eq!(t.first(), None);
    assert_eq!(t.last(), None);
    assert!(t.is_empty());
    assert_eq!(t.len(), 0);
    audit_ok(&t);
}

#[test]
fn single_key_lifecycle() {
    let t = ChromaticTree::new();
    assert_eq!(t.insert(5, 50), None);
    audit_ok(&t);
    assert_eq!(t.get(&5), Some(50));
    assert_eq!(t.len(), 1);
    assert!(!t.is_empty());
    assert_eq!(t.insert(5, 55), Some(50));
    assert_eq!(t.get(&5), Some(55));
    audit_ok(&t);
    assert_eq!(t.remove(&5), Some(55));
    assert_eq!(t.get(&5), None);
    assert!(t.is_empty());
    audit_ok(&t);
}

#[test]
fn ascending_inserts_stay_balanced() {
    let t = ChromaticTree::new();
    let n = 4096u64;
    for i in 0..n {
        t.insert(i, i * 2);
    }
    audit_ok(&t);
    assert_eq!(t.len(), n as usize);
    let h = t.height();
    // A red-black tree over n keys has height ≤ 2 log2(n+1); leaf-oriented
    // doubles the node count, allow slack.
    let bound = 2 * (64 - (n + 1).leading_zeros() as usize) + 4;
    assert!(h <= bound, "height {h} exceeds RBT bound {bound}");
    for i in 0..n {
        assert_eq!(t.get(&i), Some(i * 2));
    }
}

#[test]
fn descending_and_interleaved_deletes() {
    let t = ChromaticTree::new();
    let n = 2048u64;
    for i in (0..n).rev() {
        t.insert(i, i);
    }
    audit_ok(&t);
    for i in (0..n).step_by(2) {
        assert_eq!(t.remove(&i), Some(i));
    }
    audit_ok(&t);
    assert_eq!(t.len(), (n / 2) as usize);
    for i in 0..n {
        assert_eq!(t.get(&i), if i % 2 == 1 { Some(i) } else { None });
    }
    for i in (1..n).step_by(2) {
        assert_eq!(t.remove(&i), Some(i));
    }
    assert!(t.is_empty());
    audit_ok(&t);
}

#[test]
fn random_ops_match_btreemap() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0x5eed);
    for trial in 0..8 {
        let t = ChromaticTree::new();
        let mut model = BTreeMap::new();
        for step in 0..4000 {
            let k = rng.gen_range(0..256u64);
            match rng.gen_range(0..3) {
                0 => assert_eq!(t.insert(k, step), model.insert(k, step), "insert {k}"),
                1 => assert_eq!(t.remove(&k), model.remove(&k), "remove {k}"),
                _ => assert_eq!(t.get(&k), model.get(&k).copied(), "get {k}"),
            }
        }
        audit_ok(&t);
        let ours = t.collect();
        let theirs: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(ours, theirs, "trial {trial} final contents differ");
    }
}

#[test]
fn successor_predecessor_match_model() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(42);
    let t = ChromaticTree::new();
    let mut model = BTreeMap::new();
    for _ in 0..2000 {
        let k = rng.gen_range(0..512u64);
        if rng.gen_bool(0.7) {
            t.insert(k, k);
            model.insert(k, k);
        } else {
            t.remove(&k);
            model.remove(&k);
        }
        let probe = rng.gen_range(0..512u64);
        let succ = model.range(probe + 1..).next().map(|(k, v)| (*k, *v));
        assert_eq!(t.successor(&probe), succ, "successor of {probe}");
        let pred = model.range(..probe).next_back().map(|(k, v)| (*k, *v));
        assert_eq!(t.predecessor(&probe), pred, "predecessor of {probe}");
        assert_eq!(t.first(), model.iter().next().map(|(k, v)| (*k, *v)));
        assert_eq!(t.last(), model.iter().next_back().map(|(k, v)| (*k, *v)));
    }
    audit_ok(&t);
}

#[test]
fn chromatic6_variant_correct_and_balanced_enough() {
    let t = ChromaticTree::with_allowed_violations(6);
    let n = 4096u64;
    for i in 0..n {
        t.insert(i, i);
    }
    let report = t.audit();
    assert!(report.is_valid(), "{:?}", report.errors);
    for i in 0..n {
        assert_eq!(t.get(&i), Some(i));
    }
    for i in 0..n / 2 {
        assert_eq!(t.remove(&i), Some(i));
    }
    let report = t.audit();
    assert!(report.is_valid(), "{:?}", report.errors);
    assert_eq!(t.len(), (n / 2) as usize);
}

#[test]
fn rebalance_steps_are_amortized_constant() {
    // Boyar–Fagerberg–Larsen: ≤ 3 rebalancing steps per insert + 1 per
    // delete, amortized, starting from an empty tree.
    let t = ChromaticTree::new();
    let n = 8192u64;
    for i in 0..n {
        t.insert(i.wrapping_mul(0x9E3779B97F4A7C15) % 100_000, i);
    }
    let inserts = n;
    let steps = t.stats().total_steps();
    assert!(
        steps <= 3 * inserts,
        "rebalancing steps {steps} exceed 3·inserts {}",
        3 * inserts
    );
}
