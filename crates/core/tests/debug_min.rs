use nbtree::ChromaticTree;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeMap;

#[test]
fn find_first_bad_insert() {
    let t = ChromaticTree::new();
    for i in 0..200u64 {
        t.insert(i, i);
        let r = t.audit();
        assert!(r.is_valid(), "first failure at insert #{i}: {:?}", r.errors);
    }
}

#[test]
fn pred_succ_repro() {
    let mut rng = StdRng::seed_from_u64(42);
    let t = ChromaticTree::new();
    let mut model = BTreeMap::new();
    for step in 0..2000 {
        let k = rng.gen_range(0..512u64);
        if rng.gen_bool(0.7) {
            t.insert(k, k);
            model.insert(k, k);
        } else {
            t.remove(&k);
            model.remove(&k);
        }
        let probe = rng.gen_range(0..512u64);
        let succ = model.range(probe + 1..).next().map(|(k, v)| (*k, *v));
        let got_s = t.successor(&probe);
        if got_s != succ {
            panic!(
                "step {step}: successor({probe}) = {got_s:?}, expected {succ:?}; contents={:?}",
                t.collect().iter().map(|x| x.0).collect::<Vec<_>>()
            );
        }
        let pred = model.range(..probe).next_back().map(|(k, v)| (*k, *v));
        let got_p = t.predecessor(&probe);
        if got_p != pred {
            panic!(
                "step {step}: predecessor({probe}) = {got_p:?}, expected {pred:?}; keys={:?}",
                t.collect().iter().map(|x| x.0).collect::<Vec<_>>()
            );
        }
    }
}
