//! Linearizability stress tests for the VLX-validated range scan.
//!
//! The load-bearing check is the **pair invariant**: each writer owns
//! disjoint key pairs `(x, y)` placed far apart in key space and cycles
//! them through `insert(y); remove(x); insert(x); remove(y)` — so at every
//! instant *at least one* member of each pair is present. An atomic
//! snapshot must therefore contain ≥ 1 member of every pair. A non-atomic
//! scan (read x's region while only y is present, then y's region after y
//! was removed and x re-inserted) can observe a pair as wholly absent —
//! exactly the anomaly the VLX validation must rule out. The same harness
//! runs against every tree that shares the scan (`chromatic`, `nbbst`,
//! `ravl`).
//!
//! Alongside it: every returned snapshot must be strictly sorted,
//! duplicate-free, contain all never-touched permanent keys in range, and
//! contain no key that was never inserted; at quiescence the scan must
//! agree with the sequential in-order oracle (`audit_range`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use nbtree::ChromaticTree;

/// The minimal map surface the harness needs, implemented by all three
/// template trees (a local trait avoids a dev-dependency cycle with the
/// `workload` crate).
trait RangeMap: Send + Sync + 'static {
    fn new_map() -> Self;
    fn insert(&self, k: u64, v: u64);
    fn remove(&self, k: &u64);
    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)>;
}

impl RangeMap for ChromaticTree<u64, u64> {
    fn new_map() -> Self {
        ChromaticTree::new()
    }
    fn insert(&self, k: u64, v: u64) {
        ChromaticTree::insert(self, k, v);
    }
    fn remove(&self, k: &u64) {
        ChromaticTree::remove(self, k);
    }
    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        ChromaticTree::range(self, lo..=hi)
    }
}

impl RangeMap for nbbst::NbBst<u64, u64> {
    fn new_map() -> Self {
        nbbst::NbBst::new()
    }
    fn insert(&self, k: u64, v: u64) {
        nbbst::NbBst::insert(self, k, v);
    }
    fn remove(&self, k: &u64) {
        nbbst::NbBst::remove(self, k);
    }
    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        nbbst::NbBst::range(self, lo..=hi)
    }
}

impl RangeMap for ravl::RelaxedAvl<u64, u64> {
    fn new_map() -> Self {
        ravl::RelaxedAvl::new()
    }
    fn insert(&self, k: u64, v: u64) {
        ravl::RelaxedAvl::insert(self, k, v);
    }
    fn remove(&self, k: &u64) {
        ravl::RelaxedAvl::remove(self, k);
    }
    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        ravl::RelaxedAvl::range(self, lo..=hi)
    }
}

/// Pair layout: pair `i` is `(base(i), base(i) + SPREAD)` with `SPREAD`
/// large so the two members sit far apart in the scanned interval and a
/// torn scan has a wide window to miss both. Permanent keys interleave at
/// `base(i) + 1`.
const PAIRS: u64 = 24;
const SPREAD: u64 = 1000;
const STRIDE: u64 = 2 * SPREAD + 100;

fn pair_lo(i: u64) -> u64 {
    i * STRIDE
}
fn pair_hi(i: u64) -> u64 {
    i * STRIDE + SPREAD
}
fn permanent(i: u64) -> u64 {
    i * STRIDE + 1
}
const SPAN: u64 = PAIRS * STRIDE + SPREAD + 1;

fn scans() -> usize {
    // TSan (and debug builds generally) slow each scan down enormously;
    // keep the iteration count modest so the whole suite stays in budget.
    if cfg!(debug_assertions) {
        150
    } else {
        400
    }
}

fn check_snapshot(snap: &[(u64, u64)], lo: u64, hi: u64) {
    // Strictly sorted (implies duplicate-free) and inside the query.
    for w in snap.windows(2) {
        assert!(
            w[0].0 < w[1].0,
            "snapshot not strictly sorted: {:?} then {:?}",
            w[0],
            w[1]
        );
    }
    assert!(
        snap.iter().all(|(k, _)| (lo..=hi).contains(k)),
        "snapshot leaked keys outside [{lo}, {hi}]"
    );
    // No phantom keys: everything is a pair member or a permanent key.
    for (k, _) in snap {
        let i = k / STRIDE;
        assert!(
            *k == pair_lo(i) || *k == pair_hi(i) || *k == permanent(i),
            "phantom key {k} was never inserted"
        );
    }
    for i in 0..PAIRS {
        // Permanent keys: always present when fully covered by the query.
        if lo <= permanent(i) && permanent(i) <= hi {
            assert!(
                snap.binary_search_by_key(&permanent(i), |(k, _)| *k)
                    .is_ok(),
                "permanent key {} missing from [{lo}, {hi}]",
                permanent(i)
            );
        }
        // THE linearizability check: a pair wholly inside the query must
        // have at least one member in an atomic snapshot.
        if lo <= pair_lo(i) && pair_hi(i) <= hi {
            let has_lo = snap.binary_search_by_key(&pair_lo(i), |(k, _)| *k).is_ok();
            let has_hi = snap.binary_search_by_key(&pair_hi(i), |(k, _)| *k).is_ok();
            assert!(
                has_lo || has_hi,
                "pair {i} ({}, {}) wholly absent from snapshot of [{lo}, {hi}]: \
                 the scan was not atomic",
                pair_lo(i),
                pair_hi(i)
            );
        }
    }
}

fn pair_invariant_stress<M: RangeMap>() {
    let map = Arc::new(M::new_map());
    for i in 0..PAIRS {
        map.insert(permanent(i), i);
        map.insert(pair_lo(i), i); // start state: x present, y absent
    }
    let stop = Arc::new(AtomicBool::new(false));
    let writers = 2u64;
    let scanners = 2u64;
    std::thread::scope(|s| {
        for w in 0..writers {
            let map = Arc::clone(&map);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                // Each writer owns the pairs with i % writers == w, so the
                // pair invariant (≥ 1 member present) is single-writer
                // exact: insert the absent member before removing the
                // present one.
                let mut present_lo = vec![true; PAIRS as usize];
                while !stop.load(Ordering::Relaxed) {
                    for i in (w..PAIRS).step_by(writers as usize) {
                        let (add, del) = if present_lo[i as usize] {
                            (pair_hi(i), pair_lo(i))
                        } else {
                            (pair_lo(i), pair_hi(i))
                        };
                        map.insert(add, i);
                        map.remove(&del);
                        present_lo[i as usize] = !present_lo[i as usize];
                    }
                }
            });
        }
        // Scanners bound the test; writers churn until all scanners have
        // spent their budget, then get stopped.
        let scan_handles: Vec<_> = (0..scanners)
            .map(|t| {
                let map = Arc::clone(&map);
                s.spawn(move || {
                    use rand::{rngs::StdRng, Rng, SeedableRng};
                    let mut rng = StdRng::seed_from_u64(900 + t);
                    for round in 0..scans() {
                        let (lo, hi) = if round % 3 == 0 {
                            (0, SPAN) // whole-universe scan
                        } else {
                            // Random window aligned to cover whole pairs.
                            let a = rng.gen_range(0..PAIRS);
                            let b = rng.gen_range(a..PAIRS);
                            (a * STRIDE, b * STRIDE + SPREAD)
                        };
                        let snap = map.range(lo, hi);
                        check_snapshot(&snap, lo, hi);
                    }
                })
            })
            .collect();
        // Stop the writers BEFORE propagating a scanner failure: the
        // writers poll `stop`, so panicking first would leave them spinning
        // and turn a failed assertion into a deadlocked test run.
        let results: Vec<_> = scan_handles.into_iter().map(|h| h.join()).collect();
        stop.store(true, Ordering::Relaxed);
        for r in results {
            if let Err(panic) = r {
                std::panic::resume_unwind(panic);
            }
        }
    });
}

#[test]
fn chromatic_range_snapshots_are_atomic() {
    pair_invariant_stress::<ChromaticTree<u64, u64>>();
}

#[test]
fn nbbst_range_snapshots_are_atomic() {
    pair_invariant_stress::<nbbst::NbBst<u64, u64>>();
}

#[test]
fn ravl_range_snapshots_are_atomic() {
    pair_invariant_stress::<ravl::RelaxedAvl<u64, u64>>();
}

/// After the storm: the scan agrees with the sequential in-order oracle,
/// and the structural audit is clean.
#[test]
fn range_agrees_with_oracle_at_quiescence() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let t = Arc::new(ChromaticTree::<u64, u64>::new());
    std::thread::scope(|s| {
        for tid in 0..4u64 {
            let t = Arc::clone(&t);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(tid);
                for step in 0..20_000u64 {
                    let k = rng.gen_range(0..2048);
                    if step % 3 == 0 {
                        t.remove(&k);
                    } else {
                        t.insert(k, step);
                    }
                }
            });
        }
    });
    let report = t.audit();
    assert!(report.is_valid(), "{:?}", report.errors);
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..64 {
        let lo = rng.gen_range(0..2048u64);
        let hi = lo + rng.gen_range(0..512u64);
        t.audit_range(&lo, &hi).expect("scan/oracle divergence");
    }
    // Degenerate intervals.
    t.audit_range(&0, &0).unwrap();
    t.audit_range(&5000, &6000).unwrap();
}

/// Retry accounting: scans under churn must eventually succeed and the
/// stats must show the query count; the bounded variant must return
/// `Some` when given a generous budget at quiescence.
#[test]
fn range_stats_and_bounded_variant() {
    let t = ChromaticTree::<u64, u64>::new();
    for k in 0..512u64 {
        t.insert(k, k);
    }
    let before = t.stats().range_queries();
    assert_eq!(t.range(100..=199).len(), 100);
    assert_eq!(
        t.range_attempts(100..=199, 4)
            .expect("quiescent scan must validate on first attempt")
            .len(),
        100
    );
    assert_eq!(t.stats().range_queries(), before + 2);
}

/// Negative control: a deliberately torn scan (two half-scans stitched
/// together) must FAIL the pair invariant — proves the harness has teeth.
/// Trips within the first few scans in practice; 50 harness runs make the
/// "never observed a tear" outcome astronomically unlikely.
struct TornScan(ChromaticTree<u64, u64>);
impl RangeMap for TornScan {
    fn new_map() -> Self {
        TornScan(ChromaticTree::new())
    }
    fn insert(&self, k: u64, v: u64) {
        self.0.insert(k, v);
    }
    fn remove(&self, k: &u64) {
        self.0.remove(k);
    }
    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        let mid = lo + (hi - lo) / 2;
        let mut out = self.0.range(lo..mid);
        std::thread::yield_now();
        out.extend(self.0.range(mid..=hi));
        out
    }
}

#[test]
#[should_panic(expected = "wholly absent")]
fn torn_scan_fails_the_pair_invariant() {
    for _ in 0..50 {
        pair_invariant_stress::<TornScan>();
    }
}
