//! Stress coverage for descriptor reuse: pooled `ScxRecord`s (with
//! incarnation tags) must leave every chromatic-tree invariant intact under
//! heavy update churn, single- and multi-threaded.
//!
//! The key range is kept small so the same descriptors cycle through the
//! per-thread pools thousands of times — the regime where a broken
//! sequence-number check (ABA on `info` fields) or a premature reuse would
//! corrupt the tree or lose updates.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use nbtree::ChromaticTree;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Multi-thread mixed workload, then full structural audit plus a
/// key-by-key sanity pass. Four writers on a 256-key range churn each
/// thread's descriptor pool continuously (every insert/delete reuses
/// descriptors returned by earlier epochs).
#[test]
fn pooled_descriptors_survive_multithread_churn() {
    const THREADS: usize = 4;
    const OPS: u64 = 40_000;
    const RANGE: u64 = 256;

    let tree = Arc::new(ChromaticTree::<u64, u64>::new());
    let ticket = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for tid in 0..THREADS {
        let tree = Arc::clone(&tree);
        let ticket = Arc::clone(&ticket);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ tid as u64);
            for _ in 0..OPS {
                let k = rng.gen_range(0..RANGE);
                match rng.gen_range(0..10) {
                    0..=3 => {
                        // Values carry a globally unique ticket so torn or
                        // replayed updates would surface as impossible
                        // values below.
                        let v = ticket.fetch_add(1, Ordering::Relaxed);
                        tree.insert(k, v);
                    }
                    4..=6 => {
                        tree.remove(&k);
                    }
                    _ => {
                        if let Some(v) = tree.get(&k) {
                            assert!(v < u64::MAX / 2, "impossible value {v} read for key {k}");
                        }
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("stress worker panicked");
    }

    let report = tree.audit();
    assert!(
        report.is_valid(),
        "audit failed after pooled-descriptor churn: {report:?}"
    );
    // The dictionary must still behave like a map: deterministic follow-up
    // operations on every key.
    let snapshot = tree.collect();
    assert!(
        snapshot.windows(2).all(|w| w[0].0 < w[1].0),
        "keys unsorted"
    );
    for (k, v) in &snapshot {
        assert_eq!(tree.get(k), Some(*v), "snapshot key {k} not readable");
    }
    for k in 0..RANGE {
        tree.remove(&k);
    }
    assert!(tree.is_empty(), "tree not empty after removing every key");
    let report = tree.audit();
    assert!(report.is_valid(), "audit failed after drain: {report:?}");
}

/// Two threads hammer the *same two keys*: every SCX conflicts, so helpers
/// constantly observe each other's descriptors while those descriptors are
/// being returned to (and checked back out of) the pools — the tightest
/// window for the incarnation-tag check. The tree must end both valid and
/// exactly equal to a model replay of the committed operations.
#[test]
fn contended_keys_maximize_descriptor_recycling() {
    const ROUNDS: u64 = 30_000;
    let tree = Arc::new(ChromaticTree::<u64, u64>::new());
    let t1 = {
        let tree = Arc::clone(&tree);
        std::thread::spawn(move || {
            for i in 0..ROUNDS {
                tree.insert(1, i);
                tree.remove(&2);
            }
        })
    };
    let t2 = {
        let tree = Arc::clone(&tree);
        std::thread::spawn(move || {
            for i in 0..ROUNDS {
                tree.insert(2, i);
                tree.remove(&1);
            }
        })
    };
    t1.join().unwrap();
    t2.join().unwrap();

    let report = tree.audit();
    assert!(
        report.is_valid(),
        "audit failed under contention: {report:?}"
    );
    for (k, v) in tree.collect() {
        assert!(k == 1 || k == 2, "phantom key {k}");
        assert!(v < ROUNDS, "phantom value {v}");
    }
}

/// Sequential interleaving against a model with constant pool churn: the
/// single-thread analogue the proptest below randomizes.
#[test]
fn sequential_interleaving_matches_model_under_reuse() {
    let tree = ChromaticTree::<u64, u64>::new();
    let mut model = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(42);
    for step in 0..60_000u64 {
        let k = rng.gen_range(0..128);
        match rng.gen_range(0..3) {
            0 => assert_eq!(tree.insert(k, step), model.insert(k, step)),
            1 => assert_eq!(tree.remove(&k), model.remove(&k)),
            _ => assert_eq!(tree.get(&k), model.get(&k).copied()),
        }
        if step % 8192 == 0 {
            assert!(tree.audit().is_valid(), "audit failed at step {step}");
        }
    }
    assert!(tree.audit().is_valid());
    assert_eq!(
        tree.collect(),
        model.into_iter().collect::<Vec<_>>(),
        "final contents diverge from model"
    );
}

mod reuse_proptest {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Insert(u8, u16),
        Remove(u8),
        Get(u8),
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (any::<u8>(), any::<u16>()).prop_map(|(k, v)| Op::Insert(k % 64, v)),
            any::<u8>().prop_map(|k| Op::Remove(k % 64)),
            any::<u8>().prop_map(|k| Op::Get(k % 64)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Arbitrary insert/remove/get interleavings on a tiny key range —
        /// descriptors cycle through the pool within each case — must match
        /// the model exactly and keep every audit invariant (weights,
        /// ordering, leaf orientation). A single ABA on an `info` field
        /// (a stale freezing CAS succeeding against a reused descriptor)
        /// would commit a lost or duplicated update and diverge here.
        #[test]
        fn interleavings_preserve_audit_invariants(ops in proptest::collection::vec(op(), 1..600)) {
            let tree = ChromaticTree::<u64, u64>::new();
            let mut model = BTreeMap::new();
            for op in &ops {
                match *op {
                    Op::Insert(k, v) => prop_assert_eq!(
                        tree.insert(k as u64, v as u64),
                        model.insert(k as u64, v as u64)
                    ),
                    Op::Remove(k) => prop_assert_eq!(
                        tree.remove(&(k as u64)),
                        model.remove(&(k as u64))
                    ),
                    Op::Get(k) => prop_assert_eq!(
                        tree.get(&(k as u64)),
                        model.get(&(k as u64)).copied()
                    ),
                }
            }
            let report = tree.audit();
            prop_assert!(report.is_valid(), "audit failed: {:?}", report);
            prop_assert_eq!(
                tree.collect(),
                model.into_iter().collect::<Vec<_>>()
            );
        }
    }
}
