//! Concurrent stress tests: invariants must hold after (and queries work
//! during) heavy multi-threaded update workloads, including maximal
//! contention on tiny key ranges where helping and retries dominate.

use nbtree::ChromaticTree;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(4)
        .max(2)
}

fn audit_ok(t: &ChromaticTree<u64, u64>) {
    let report = t.audit();
    assert!(report.is_valid(), "invariant breach: {:?}", report.errors);
    assert_eq!(
        report.violations(),
        0,
        "violations at quiescence: {report:?}"
    );
}

/// Disjoint stripes: each thread fully owns its keys, so the final contents
/// are exactly predictable.
#[test]
fn striped_inserts_and_deletes() {
    let t = Arc::new(ChromaticTree::new());
    let nthreads = threads() as u64;
    let per = 3000u64;
    std::thread::scope(|s| {
        for tid in 0..nthreads {
            let t = &t;
            s.spawn(move || {
                let base = tid * per;
                for i in 0..per {
                    assert_eq!(t.insert(base + i, tid), None);
                }
                // Delete the odd half.
                for i in (1..per).step_by(2) {
                    assert_eq!(t.remove(&(base + i)), Some(tid));
                }
                // Re-insert a quarter.
                for i in (1..per).step_by(4) {
                    assert_eq!(t.insert(base + i, tid + 100), None);
                }
            });
        }
    });
    audit_ok(&t);
    for tid in 0..nthreads {
        let base = tid * per;
        for i in 0..per {
            let expect = if i % 2 == 0 {
                Some(tid)
            } else if i % 4 == 1 {
                Some(tid + 100)
            } else {
                None
            };
            assert_eq!(t.get(&(base + i)), expect, "key {}", base + i);
        }
    }
}

/// At quiescence a `k = 0` tree must be violation-free (every update cleans
/// up after itself); a `k > 0` tree may retain violations by design (§5.6)
/// but must still be a structurally valid chromatic tree.
fn audit_with_policy(t: &ChromaticTree<u64, u64>, k: u32) {
    let report = t.audit();
    assert!(report.is_valid(), "invariant breach: {:?}", report.errors);
    if k == 0 {
        assert_eq!(report.violations(), 0, "orphaned violations: {report:?}");
    }
}

/// Tiny key range: every operation contends with every other; exercises
/// helping, SCX aborts and repeated cleanup.
#[test]
fn high_contention_small_range() {
    for k in [0u32, 6] {
        let t = Arc::new(ChromaticTree::with_allowed_violations(k));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            for tid in 0..threads() {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(tid as u64);
                    while !stop.load(Ordering::Relaxed) {
                        let key = rng.gen_range(0..64u64);
                        match rng.gen_range(0..10) {
                            0..=4 => {
                                t.insert(key, tid as u64);
                            }
                            5..=8 => {
                                t.remove(&key);
                            }
                            _ => {
                                t.get(&key);
                            }
                        }
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(1500));
            stop.store(true, Ordering::Relaxed);
        });
        audit_with_policy(&t, k);
        assert!(t.len() <= 64);
    }
}

/// Readers run linearizable ordered queries while writers churn; successor
/// chains must always be strictly increasing and within the key universe.
#[test]
fn ordered_queries_under_churn() {
    let t = Arc::new(ChromaticTree::new());
    for i in (0..1024u64).step_by(2) {
        t.insert(i, i);
    }
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for tid in 0..threads() / 2 {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(tid as u64 + 77);
                while !stop.load(Ordering::Relaxed) {
                    let key = rng.gen_range(0..1024u64);
                    if rng.gen_bool(0.5) {
                        t.insert(key, key);
                    } else {
                        t.remove(&key);
                    }
                }
            });
        }
        for tid in 0..threads() - threads() / 2 {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(tid as u64 + 997);
                while !stop.load(Ordering::Relaxed) {
                    // Successor chain walk: strictly increasing keys.
                    let mut cur = rng.gen_range(0..1024u64);
                    let mut prev = cur;
                    let mut hops = 0;
                    while let Some((k, v)) = t.successor(&cur) {
                        assert!(k > prev || hops == 0, "successor not increasing");
                        assert!(k < 1024, "successor outside universe");
                        assert_eq!(k, v);
                        prev = k;
                        cur = k;
                        hops += 1;
                        if hops > 1024 {
                            panic!("successor chain longer than the universe");
                        }
                    }
                    // Predecessor spot check.
                    let probe = rng.gen_range(1..1024u64);
                    if let Some((k, _)) = t.predecessor(&probe) {
                        assert!(k < probe, "predecessor not smaller");
                    }
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(1500));
        stop.store(true, Ordering::Relaxed);
    });
    audit_ok(&t);
}

/// Pairs of threads fight over the same key; the value must always be one
/// of the last written, and insert/remove return values must alternate
/// consistently (each successful remove returns a value somebody inserted).
#[test]
fn single_key_duel() {
    let t = Arc::new(ChromaticTree::new());
    let iters = 20_000u64;
    std::thread::scope(|s| {
        for tid in 0..threads() as u64 {
            let t = Arc::clone(&t);
            s.spawn(move || {
                for i in 0..iters {
                    if (tid + i) % 2 == 0 {
                        t.insert(42, tid * iters + i);
                    } else {
                        t.remove(&42);
                    }
                }
            });
        }
    });
    audit_ok(&t);
}

/// Everything at once, then a full content check against per-thread logs of
/// *successful distinct-key* operations (each thread works on its own keys,
/// but all threads hammer a shared region too).
#[test]
fn mixed_private_and_shared_regions() {
    let k = 6;
    let t = Arc::new(ChromaticTree::with_allowed_violations(k));
    let nthreads = threads() as u64;
    let private = 2000u64;
    std::thread::scope(|s| {
        for tid in 0..nthreads {
            let t = Arc::clone(&t);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(tid);
                let base = 1_000_000 + tid * private;
                for i in 0..private {
                    t.insert(base + i, i);
                    // Shared-region noise.
                    let k = rng.gen_range(0..128u64);
                    if rng.gen_bool(0.5) {
                        t.insert(k, k);
                    } else {
                        t.remove(&k);
                    }
                }
                for i in 0..private {
                    assert_eq!(t.get(&(base + i)), Some(i));
                }
            });
        }
    });
    audit_with_policy(&t, k);
    for tid in 0..nthreads {
        let base = 1_000_000 + tid * private;
        for i in 0..private {
            assert_eq!(t.get(&(base + i)), Some(i));
        }
    }
}
