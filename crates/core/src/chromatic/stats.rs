//! Always-on operation counters, used by the benchmark harness and the
//! rebalancing-cost experiment (amortized-steps claim of Boyar et al.).

use std::sync::atomic::{AtomicU64, Ordering};

/// Which rebalancing transformation committed (Fig. 11; mirrors counted
/// together with their originals).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // ALLOW: variants are the paper's rebalancing-case mnemonics; docs would repeat the table above
pub enum Step {
    Blk,
    Rb1,
    Rb2,
    Push,
    W1,
    W2,
    W3,
    W4,
    W5,
    W6,
    W7,
}

/// Names for [`Stats::steps`], index-aligned with [`Step`].
pub const STEP_NAMES: [&str; 11] = [
    "BLK", "RB1", "RB2", "PUSH", "W1", "W2", "W3", "W4", "W5", "W6", "W7",
];

/// Counters for one tree instance. All relaxed: they are statistics, not
/// synchronization.
#[derive(Default)]
pub struct Stats {
    steps: [AtomicU64; 11],
    insert_retries: AtomicU64,
    delete_retries: AtomicU64,
    cleanup_passes: AtomicU64,
    violations_created: AtomicU64,
    range_queries: AtomicU64,
    range_retries: AtomicU64,
    merged_insert_scxs: AtomicU64,
    merged_insert_keys: AtomicU64,
    merged_remove_scxs: AtomicU64,
}

impl Stats {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn bump_step(&self, step: Step) {
        self.steps[step as usize].fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn bump_insert_retries(&self) {
        self.insert_retries.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn bump_delete_retries(&self) {
        self.delete_retries.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn bump_cleanup_passes(&self) {
        self.cleanup_passes.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn bump_violations_created(&self) {
        self.violations_created.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn bump_range_queries(&self) {
        self.range_queries.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn bump_range_retries(&self) {
        self.range_retries.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn bump_merged_insert(&self, run_len: u64) {
        self.merged_insert_scxs.fetch_add(1, Ordering::Relaxed);
        self.merged_insert_keys
            .fetch_add(run_len, Ordering::Relaxed);
    }
    pub(crate) fn bump_merged_remove_scxs(&self) {
        self.merged_remove_scxs.fetch_add(1, Ordering::Relaxed);
    }

    /// Committed rebalancing steps, per transformation (see [`STEP_NAMES`]).
    pub fn steps(&self) -> [u64; 11] {
        std::array::from_fn(|i| self.steps[i].load(Ordering::Relaxed))
    }

    /// Total committed rebalancing steps.
    pub fn total_steps(&self) -> u64 {
        self.steps().iter().sum()
    }

    /// Failed `TryInsert` attempts (each implies a retry).
    pub fn insert_retries(&self) -> u64 {
        self.insert_retries.load(Ordering::Relaxed)
    }

    /// Failed `TryDelete` attempts.
    pub fn delete_retries(&self) -> u64 {
        self.delete_retries.load(Ordering::Relaxed)
    }

    /// Root-to-violation walks performed by `Cleanup`.
    pub fn cleanup_passes(&self) -> u64 {
        self.cleanup_passes.load(Ordering::Relaxed)
    }

    /// Updates that created a violation.
    pub fn violations_created(&self) -> u64 {
        self.violations_created.load(Ordering::Relaxed)
    }

    /// Range queries started (each may take several validation attempts).
    pub fn range_queries(&self) -> u64 {
        self.range_queries.load(Ordering::Relaxed)
    }

    /// Range-scan attempts that failed validation and re-traversed.
    pub fn range_retries(&self) -> u64 {
        self.range_retries.load(Ordering::Relaxed)
    }

    /// Same-leaf runs `insert_bulk` installed as one mini-subtree SCX
    /// (each replaces `merged_insert_keys / merged_insert_scxs` per-element
    /// SCX commits on average).
    pub fn merged_insert_scxs(&self) -> u64 {
        self.merged_insert_scxs.load(Ordering::Relaxed)
    }

    /// Batch elements covered by merged-run installs (duplicates included).
    pub fn merged_insert_keys(&self) -> u64 {
        self.merged_insert_keys.load(Ordering::Relaxed)
    }

    /// Sibling-leaf pairs `remove_bulk` collapsed in a single SCX.
    pub fn merged_remove_scxs(&self) -> u64 {
        self.merged_remove_scxs.load(Ordering::Relaxed)
    }
}
