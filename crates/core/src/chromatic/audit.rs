//! Invariant checking and structural introspection.
//!
//! Used by the test suite (after every property-test run and concurrent
//! stress test) and by the height-bound experiment (§5.3): at quiescence the
//! tree must satisfy every chromatic-tree invariant, and at any time the
//! height must be `O(k + c + log n)`.

use llxscx::epoch::{Guard, Shared};
use llxscx::guard_cache::with_guard;

use super::ChromaticTree;
use crate::node::Node;

/// Snapshot of the tree's structural health. Produced by
/// [`ChromaticTree::audit`]; all checks refer to the *chromatic tree proper*
/// (the subtree below the sentinels, Fig. 10).
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Total nodes (internal + leaves), excluding entry/sentinels.
    pub nodes: usize,
    /// Number of dictionary keys (non-sentinel leaves).
    pub keys: usize,
    /// Longest root-to-leaf path, in nodes.
    pub height: usize,
    /// Red-red violations (red node with red parent).
    pub red_red_violations: usize,
    /// Overweight violation units (`Σ max(w − 1, 0)`).
    pub overweight_violations: usize,
    /// Weight-0 (red) internal nodes. Merged-run installs create these in
    /// bursts (a mini-subtree is all-red below its root); their *placement*
    /// is checked structurally — a weight-0 node must be internal (a
    /// weight-0 leaf is an error) and sit below the sentinels, so every
    /// red node contributes 0 to its paths' weight sums.
    pub zero_weight_internals: usize,
    /// The common weighted root-to-leaf path sum of the chromatic tree
    /// (`None` when the dictionary is empty). All paths must agree — any
    /// mismatch is an error — so after a merged-run install this equals
    /// the replaced leaf's old path sum: the mini-subtree root's `w − 1`
    /// plus its weight-0 internals plus a weight-1 leaf.
    pub weighted_path_sum: Option<u64>,
    /// Invariant breaches found; empty means the structure is a valid
    /// chromatic tree.
    pub errors: Vec<String>,
}

impl AuditReport {
    /// Total violations (the `c` bound of §5.3 applies to this).
    pub fn violations(&self) -> usize {
        self.red_red_violations + self.overweight_violations
    }

    /// Whether the structure is a valid chromatic tree (zero violations
    /// additionally make it a red-black tree).
    pub fn is_valid(&self) -> bool {
        self.errors.is_empty()
    }
}

impl<K, V> ChromaticTree<K, V>
where
    K: Ord + Clone + Send + Sync + 'static + std::fmt::Debug,
    V: Clone + Send + Sync + 'static,
{
    /// Verifies every chromatic-tree invariant and reports violation counts
    /// and the height. Intended for quiescent moments (tests, experiment
    /// checkpoints); concurrent updates may produce transient reports.
    pub fn audit(&self) -> AuditReport {
        with_guard(|guard| {
            let mut report = AuditReport::default();
            let entry = self.entry(guard);
            // SAFETY: entry is never removed.
            let entry_ref = unsafe { entry.deref() };
            if entry_ref.weight() != 1 || !entry_ref.is_sentinel_key() {
                report
                    .errors
                    .push("entry must be a weight-1 sentinel".into());
            }
            let below = entry_ref.read_child(0, guard);
            if below.is_null() {
                report.errors.push("entry has no left child".into());
                return report;
            }
            // SAFETY: `below` is non-null (checked above) and reached under `guard`.
            let below_ref = unsafe { below.deref() };
            if below_ref.is_leaf(guard) {
                // Empty dictionary: Fig. 10(a).
                if !below_ref.is_sentinel_key() || below_ref.weight() != 1 {
                    report
                        .errors
                        .push("empty-tree sentinel leaf must be (∞, w=1)".into());
                }
                return report;
            }
            // Fig. 10(b): second sentinel with the chromatic root as left child.
            if !below_ref.is_sentinel_key() || below_ref.weight() != 1 {
                report
                    .errors
                    .push("second sentinel must be (∞, w=1)".into());
            }
            let inf_leaf = below_ref.read_child(1, guard);
            // SAFETY: children of a live internal node are non-null (C2), reached
            // under `guard`.
            let inf_ref = unsafe { inf_leaf.deref() };
            if !inf_ref.is_leaf(guard) || !inf_ref.is_sentinel_key() {
                report
                    .errors
                    .push("second sentinel's right child must be the ∞ leaf".into());
            }
            let root = below_ref.read_child(0, guard);
            // Note: the chromatic root may transiently be red (weight 0): an
            // insertion below the sentinel creates it with `l.w − 1`. That is
            // not a violation (its parent, the sentinel, is black), so nothing
            // rebalances it; rebalancing steps and deletions at the root force
            // weight 1 (Lemma 28), so it can never be overweight from them.
            let mut path_weight = None;
            self.audit_rec(
                root,
                None,
                None,
                u32::MAX, // parent weight "not red" marker for the root
                0,
                1,
                &mut path_weight,
                &mut report,
                guard,
            );
            report.weighted_path_sum = path_weight;
            report
        })
    }

    /// Recursive checker: BST key ranges, leaf-orientation, weight rules,
    /// equal weighted path sums, violation tally.
    #[allow(clippy::too_many_arguments)] // ALLOW: recursion carries the full per-subtree invariant context; a bag struct would obscure which bound each check uses
    fn audit_rec<'g>(
        &self,
        n: Shared<'g, Node<K, V>>,
        lo: Option<&K>,
        hi: Option<&K>, // exclusive upper bound; None = +∞
        parent_weight: u32,
        depth: usize,
        weight_sum: u64,
        path_weight: &mut Option<u64>,
        report: &mut AuditReport,
        guard: &'g Guard,
    ) {
        if n.is_null() {
            report.errors.push("null child of internal node".into());
            return;
        }
        // SAFETY: reached from entry under `guard`.
        let node = unsafe { n.deref() };
        report.nodes += 1;
        report.height = report.height.max(depth + 1);
        let w = node.weight();
        if w == 0 && parent_weight == 0 {
            report.red_red_violations += 1;
        }
        if w > 1 {
            report.overweight_violations += (w - 1) as usize;
        }
        let sum = weight_sum + w as u64;

        if node.is_leaf(guard) {
            if node.is_sentinel_key() {
                report
                    .errors
                    .push("sentinel leaf inside the chromatic tree".into());
                return;
            }
            report.keys += 1;
            if w == 0 {
                report.errors.push("leaf with weight 0".into());
            }
            let k = node.key().expect("non-sentinel leaf has a key");
            if let Some(lo) = lo {
                if k < lo {
                    report.errors.push(format!("leaf {k:?} below range"));
                }
            }
            if let Some(hi) = hi {
                if k >= hi {
                    report.errors.push(format!("leaf {k:?} above range"));
                }
            }
            match path_weight {
                None => *path_weight = Some(sum),
                Some(expect) => {
                    if sum != *expect {
                        report
                            .errors
                            .push(format!("unequal weighted path sums: {sum} vs {expect}"));
                    }
                }
            }
        } else {
            if w == 0 {
                report.zero_weight_internals += 1;
            }
            let Some(key) = node.key() else {
                report
                    .errors
                    .push("sentinel key on internal node inside the tree".into());
                return;
            };
            if let Some(lo) = lo {
                if key < lo {
                    report
                        .errors
                        .push(format!("internal key {key:?} below range"));
                }
            }
            if let Some(hi) = hi {
                if key > hi {
                    report
                        .errors
                        .push(format!("internal key {key:?} above range"));
                }
            }
            self.audit_rec(
                node.read_child(0, guard),
                lo,
                Some(key),
                w,
                depth + 1,
                sum,
                path_weight,
                report,
                guard,
            );
            self.audit_rec(
                node.read_child(1, guard),
                Some(key),
                hi,
                w,
                depth + 1,
                sum,
                path_weight,
                report,
                guard,
            );
        }
    }

    /// Longest root-to-leaf path of the chromatic tree (0 when empty).
    pub fn height(&self) -> usize {
        self.audit().height
    }

    /// Sequential oracle check for [`range`](ChromaticTree::range): compares
    /// the VLX-validated scan of `[lo, hi]` against the plain in-order
    /// traversal restricted to the interval. Intended for quiescent moments
    /// (tests and experiment checkpoints, like [`audit`](ChromaticTree::audit));
    /// under concurrent updates the two snapshots may legitimately differ.
    /// Returns the number of keys in the interval.
    pub fn audit_range(&self, lo: &K, hi: &K) -> Result<usize, String>
    where
        V: PartialEq + std::fmt::Debug,
    {
        let scanned = self.range(lo.clone()..=hi.clone());
        let oracle: Vec<(K, V)> = self
            .collect()
            .into_iter()
            .filter(|(k, _)| k >= lo && k <= hi)
            .collect();
        if scanned.len() != oracle.len() {
            return Err(format!(
                "range [{lo:?}, {hi:?}] returned {} keys, oracle has {}",
                scanned.len(),
                oracle.len()
            ));
        }
        // Element-wise (key, value) equality with the in-order oracle also
        // certifies sortedness and duplicate-freedom (the oracle is
        // strictly sorted) — and that no key was paired with another
        // leaf's or a stale value.
        for ((ks, vs), (ko, vo)) in scanned.iter().zip(oracle.iter()) {
            if ks != ko {
                return Err(format!(
                    "range [{lo:?}, {hi:?}] diverges from oracle at key {ks:?} (oracle {ko:?})"
                ));
            }
            if vs != vo {
                return Err(format!(
                    "range [{lo:?}, {hi:?}] value for key {ks:?} is {vs:?}, oracle has {vo:?}"
                ));
            }
        }
        Ok(scanned.len())
    }
}

impl<K, V> ChromaticTree<K, V>
where
    K: Ord + Clone + Send + Sync + 'static + std::fmt::Debug,
    V: Clone + Send + Sync + 'static,
{
    /// Prints the tree structure (keys and weights) to stderr, down to
    /// `max_depth`. Diagnostic helper for tests and debugging.
    pub fn debug_dump(&self, max_depth: usize) {
        with_guard(|guard| {
            fn rec<
                K: Ord + Clone + Send + Sync + 'static + std::fmt::Debug,
                V: Clone + Send + Sync + 'static,
            >(
                n: Shared<'_, Node<K, V>>,
                depth: usize,
                max_depth: usize,
                guard: &llxscx::epoch::Guard,
            ) {
                if n.is_null() || depth > max_depth {
                    return;
                }
                // SAFETY: reached from entry under `guard`.
                let node = unsafe { n.deref() };
                let pad = "  ".repeat(depth);
                let kind = if node.is_leaf(guard) { "leaf" } else { "int " };
                eprintln!("{pad}{kind} k={:?} w={}", node.key(), node.weight());
                if !node.is_leaf(guard) {
                    rec(node.read_child(0, guard), depth + 1, max_depth, guard);
                    rec(node.read_child(1, guard), depth + 1, max_depth, guard);
                }
            }
            rec(self.entry(guard), 0, max_depth, guard);
        })
    }
}
