//! Sorted-bulk updates: shared search-path prefixes, same-leaf run
//! merging, chunked pins.
//!
//! [`ChromaticTree::insert_bulk`] and [`ChromaticTree::remove_bulk`] are
//! the tree-level half of the suite's batch story (the sharded façade's
//! shard grouping is the other half). Both sort the batch and apply it in
//! ascending key order, so consecutive keys usually land in nearby leaves
//! — and instead of re-searching from the entry sentinel for every key,
//! they **cache the search path** of the previous update and restart the
//! descent from the deepest cached ancestor whose subtree can still
//! contain the next key. For a batch of `n` uniform keys over a tree of
//! `N` keys that cuts the per-key search from `log N` hops to roughly
//! `log(N/n)` fresh hops plus a shared prefix. Epoch pins are weighted
//! ([`llxscx::guard_cache::with_guard_weighted`]) and taken **per
//! repin-interval chunk**, not per batch: a batch-long pin delays every
//! retirement to the batch boundary, and the resulting garbage wave
//! measurably cost more than the pins it saved.
//!
//! # Run merging: one SCX per same-leaf run
//!
//! The SCX template replaces an arbitrary connected subgraph atomically,
//! so a *maximal run* of sorted keys that all route to one leaf does not
//! need one SCX per key. `insert_bulk` detects such runs during the
//! cached-path descent — every batch key smaller than the reached leaf's
//! exclusive window bound lands in that leaf — and installs the whole run
//! with a single LLX/SCX over the same `⟨p, l⟩` section a point insert
//! freezes ([`ChromaticTree::try_insert_run`]): the run plus the old
//! leaf's payload is rebuilt off-line as a balanced mini-subtree whose
//! root takes the Insert1 weight `l.w − 1`, whose internals are weight 0
//! and whose leaves are fresh weight-1 leaves. Every path through the new
//! section then sums to the old leaf's weight regardless of depth, so the
//! equal-weighted-path-sums invariant holds *by construction* and the
//! Fig. 11 rebalancing steps apply unchanged; the only violations the
//! install can create are red-red edges among the fresh weight-0
//! internals, handled by the ordinary `allowed_violations` policy. A run
//! of length 1, or any run whose SCX loses to a concurrent update, falls
//! back to the per-element path.
//!
//! `remove_bulk` merges symmetrically at pair granularity: when the
//! current key's leaf and its right sibling hold two *consecutive* batch
//! keys, both deletions collapse into one SCX that contracts the shared
//! parent's whole subtree ([`ChromaticTree::try_delete_pair`]) — the
//! weight the contraction produces (`gp.w + c.w`) is exactly what the
//! second of two sequential deletes would leave, because the intermediate
//! sibling copy is itself deleted and its weight never surfaces.
//!
//! # Why restarting from a cached ancestor is safe
//!
//! The paper's searches may traverse nodes that a concurrent update has
//! already removed; correctness comes from the update validating its
//! section with LLX before the SCX ([`try_insert`] re-checks that the
//! parent is unfinalized and the leaf is still its child). Restarting a
//! descent below the root adds one proof obligation: the cached ancestor
//! must still be a correct starting point *for the new key*. That holds
//! because in these leaf-oriented template trees a surviving node's
//! feasible key interval (its *window*) *never shrinks*:
//!
//! * an insertion splits a leaf into fresh nodes — surviving windows are
//!   untouched;
//! * a deletion replaces the sibling with a copy whose window absorbs the
//!   deleted leaf's interval — windows only widen;
//! * every Fig. 11 rebalancing step is a local restructuring that
//!   preserves the in-order partition of the untouched subtrees.
//!
//! During descent we track each path node's *upper* window bound as
//! implied by the routing keys actually followed (keys ascend, so the
//! lower bound needs no tracking: the next key is ≥ the previous one,
//! which the cached prefix already admitted). When the next key is below
//! the cached bound of a node, the key was inside that node's window at
//! the moment the path traversed it, hence inside every later window of
//! that node while it remains in the tree. The descent below it then
//! follows current child pointers exactly like a root search, and the
//! final LLX/SCX validation in [`try_insert`] rejects any placement whose
//! parent left the tree in the meantime — on such a failure the cache is
//! discarded and the key retries from the entry sentinel, exactly like a
//! point insert's retry.
//!
//! [`try_insert`]: ChromaticTree::insert

use llxscx::epoch::Shared;

use super::{ChromaticTree, SearchResult};
use crate::node::Node;

/// One cached step of the previous descent: the node and the exclusive
/// upper bound of its window as implied by the routing keys followed to
/// reach it (`None` = `∞`). References stay valid for the whole bulk call
/// because the epoch guard is held across it.
struct PathEntry<'g, K: Send + Sync + 'static, V: Send + Sync + 'static> {
    node: Shared<'g, Node<K, V>>,
    hi: Option<&'g K>,
}

// Manual impls: `derive` would demand `K: Clone`/`V: Clone` on the entry
// itself, which the `Shared`/reference pair does not need.
impl<K: Send + Sync + 'static, V: Send + Sync + 'static> Clone for PathEntry<'_, K, V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K: Send + Sync + 'static, V: Send + Sync + 'static> Copy for PathEntry<'_, K, V> {}

impl<K, V> ChromaticTree<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Inserts a whole batch, returning the displaced value per element
    /// in **input order**.
    ///
    /// The batch is stably key-sorted (a no-op for pre-sorted input, as
    /// delivered by the sharded façade) and applied in ascending key
    /// order under chunked weighted epoch pins, with the search-path
    /// prefix shared between consecutive keys (see module docs). Semantics
    /// match sequential input-order application: each element linearizes
    /// individually (a batch is not a transaction — concurrent readers
    /// can observe it partially applied, in key order), and elements with
    /// equal keys keep their batch order, so the last duplicate wins.
    ///
    /// This is the implementation behind the chromatic registry entries'
    /// trait-level `insert_batch` override and, transitively, behind each
    /// per-shard group of the sharded façade's `insert_batch`.
    ///
    /// ```
    /// let tree = nbtree::ChromaticTree::new();
    /// tree.insert(20, "old");
    /// let displaced = tree.insert_bulk(&[(10, "a"), (20, "b"), (10, "c")]);
    /// // Input-order results: 10 was absent, 20 held "old", 10 then held "a".
    /// assert_eq!(displaced, vec![None, Some("old"), Some("a")]);
    /// assert_eq!(tree.get(&10), Some("c"), "last duplicate wins");
    /// ```
    pub fn insert_bulk(&self, pairs: &[(K, V)]) -> Vec<Option<V>> {
        if pairs.is_empty() {
            return Vec::new();
        }
        assert!(
            pairs.len() <= u32::MAX as usize,
            "bulk batches are limited to u32::MAX elements"
        );
        // Already-sorted batches (the common case: the sharded façade
        // pre-sorts every per-shard group by key) skip the sort buffer
        // entirely — input order IS key order, duplicates included, and
        // the chunk loop below walks `0..n` directly with no index
        // buffer at all. The probe early-exits on the first inversion,
        // so unsorted inputs pay a couple of comparisons.
        //
        // Otherwise sort a contiguous (key, index) buffer rather than
        // indices with an indirect comparator (two random reads per
        // comparison was visible at batch 512). The index tiebreaker
        // keeps duplicate keys in input order under the unstable sort,
        // which is what makes "apply in key order" indistinguishable
        // (result-wise) from input-order application.
        let presorted = pairs.windows(2).all(|w| w[0].0 <= w[1].0);
        let sorted_order: Option<Vec<u32>> = if presorted {
            None
        } else {
            let mut keyed: Vec<(K, u32)> = pairs
                .iter()
                .enumerate()
                .map(|(i, (k, _))| (k.clone(), i as u32))
                .collect();
            keyed.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
            Some(keyed.into_iter().map(|(_, i)| i).collect())
        };
        let index_of = |j: usize| sorted_order.as_ref().map_or(j, |order| order[j] as usize);
        let mut out: Vec<Option<V>> = vec![None; pairs.len()];
        // One pin per repin-interval-sized chunk, not per batch: a pin
        // spanning hundreds of updates delays every retirement to the
        // batch boundary, and the resulting garbage wave (hundreds of
        // nodes re-entering the allocator cold) measurably outweighed the
        // saved pin traffic at batch 512. Chunking keeps the reclamation
        // cadence identical to the point path; only the first key of each
        // chunk pays a full root descent (the path cache cannot outlive
        // its guard).
        let repin = llxscx::guard_cache::REPIN_OPS as usize;
        let mut chunk_start = 0;
        while chunk_start < pairs.len() {
            let chunk_end = (chunk_start + repin).min(pairs.len());
            let weight = (chunk_end - chunk_start) as u32;
            llxscx::guard_cache::with_guard_weighted(weight, |guard| {
                // The cached path: entry sentinel first, deepest node last.
                // Every entry is an internal node; `hi` is the exclusive
                // upper bound its subtree admitted when the path traversed
                // it.
                let mut path: Vec<PathEntry<'_, K, V>> = Vec::with_capacity(32);
                path.push(PathEntry {
                    node: self.entry(guard),
                    hi: None,
                });
                // Elements below `fallback_until` skip run merging: after a
                // merged install loses its SCX, the whole run retries
                // per-element (the ISSUE's fallback rule) — contention that
                // beat the big install once is likely to beat it again, and
                // the per-element path makes progress one key at a time.
                let mut fallback_until = chunk_start;
                let mut j = chunk_start;
                while j < chunk_end {
                    let i = index_of(j);
                    let (key, value) = &pairs[i];
                    let advance = loop {
                        // Drop cached ancestors whose window cannot contain
                        // `key` (keys ascend, so only the upper bound can be
                        // violated). The entry sentinel (`hi == None`) always
                        // survives.
                        while let Some(top) = path.last() {
                            match top.hi {
                                Some(hi) if hi <= key => path.pop(),
                                _ => break,
                            };
                        }
                        debug_assert!(!path.is_empty(), "entry sentinel popped");
                        // Fresh descent from the deepest surviving ancestor,
                        // tallying violations along the traversed suffix for
                        // the `allowed_violations` policy (an undercount
                        // relative to a full root walk — it can only defer a
                        // Cleanup, never skip a necessary one: with `k = 0`
                        // any created violation still triggers it). The loop
                        // mirrors `search`'s register discipline — the current
                        // node and its deref are loop-carried locals, the path
                        // vector is only appended to — so the shared-prefix
                        // saving is not spent on stack traffic.
                        let mut violations = 0u32;
                        let mut top = *path.last().expect("path holds at least entry");
                        // SAFETY: reached from entry under `guard` (property
                        // C3); see module docs for the cached-prefix argument.
                        let mut top_ref = unsafe { top.node.deref() };
                        let mut gp = if path.len() >= 2 {
                            path[path.len() - 2].node
                        } else {
                            Shared::null()
                        };
                        let (p, leaf, leaf_hi) = loop {
                            let dir = if top_ref.route_left(key) { 0 } else { 1 };
                            let child_hi = if dir == 0 { top_ref.key() } else { top.hi };
                            let child = top_ref.read_child(dir, guard);
                            // SAFETY: as above; the entry sentinel's null right
                            // child is unreachable (its ∞ key routes left).
                            let child_ref = unsafe { child.deref() };
                            if child_ref.weight() > 1 {
                                violations += child_ref.weight() - 1;
                            } else if child_ref.weight() == 0 && top_ref.weight() == 0 {
                                violations += 1;
                            }
                            if child_ref.is_leaf(guard) {
                                break (top.node, child, child_hi);
                            }
                            gp = top.node;
                            top = PathEntry {
                                node: child,
                                hi: child_hi,
                            };
                            top_ref = child_ref;
                            path.push(top);
                        };
                        let res = SearchResult {
                            gp,
                            p,
                            leaf,
                            violations_seen: violations,
                        };
                        // Run detection: every later batch key below the
                        // leaf's exclusive window bound routes to this same
                        // leaf (the window argument of the module docs —
                        // keys ascend, so the lower bound is already
                        // admitted). Runs never cross the chunk boundary:
                        // the path cache cannot outlive its pin, and neither
                        // should a frozen section.
                        let mut m = j + 1;
                        if j >= fallback_until {
                            while m < chunk_end {
                                let (k2, _) = &pairs[index_of(m)];
                                if !crate::node::probe_lt_key(k2, leaf_hi) {
                                    break;
                                }
                                m += 1;
                            }
                        }
                        if m - j >= 2 {
                            // Dedup the run in place: positions are sorted
                            // with duplicates in batch order, so keeping the
                            // last value per key is last-duplicate-wins.
                            let mut run_items: Vec<(&K, &V)> = Vec::with_capacity(m - j);
                            for t in j..m {
                                let (k, v) = &pairs[index_of(t)];
                                match run_items.last_mut() {
                                    Some(last) if last.0 == k => last.1 = v,
                                    _ => run_items.push((k, v)),
                                }
                            }
                            match self.try_insert_run(&res, &run_items, guard) {
                                Ok(red_reds) => {
                                    // Displaced values, computed from the
                                    // replaced leaf's immutable payload: the
                                    // first occurrence of a key displaces the
                                    // leaf's value (if it held that key),
                                    // later duplicates displace the previous
                                    // occurrence.
                                    // SAFETY: content reads; see module docs.
                                    let leaf_ref = unsafe { leaf.deref() };
                                    let mut prev: Option<(&K, &V)> = None;
                                    for t in j..m {
                                        let it = index_of(t);
                                        let (k, v) = &pairs[it];
                                        out[it] = match prev {
                                            Some((pk, pv)) if pk == k => Some(pv.clone()),
                                            _ if leaf_ref.key_eq(k) => leaf_ref.value().cloned(),
                                            _ => None,
                                        };
                                        prev = Some((k, v));
                                    }
                                    self.stats.bump_merged_insert((m - j) as u64);
                                    if red_reds > 0 {
                                        self.stats.bump_violations_created();
                                        if violations + red_reds > self.allowed_violations {
                                            // Each created red-red lies on the
                                            // path to at least one run key, so
                                            // cleaning every distinct run key
                                            // restores the eager guarantee.
                                            for (k, _) in &run_items {
                                                self.cleanup(k);
                                            }
                                            path.truncate(1);
                                        }
                                    }
                                    break m - j;
                                }
                                Err(()) => {
                                    // The merged SCX lost: fall back to
                                    // per-element inserts for this run.
                                    self.stats.bump_insert_retries();
                                    fallback_until = m;
                                    path.truncate(1);
                                    continue;
                                }
                            }
                        }
                        match self.try_insert(&res, key, value, guard) {
                            Ok((old, created_violation)) => {
                                out[i] = old;
                                if created_violation {
                                    self.stats.bump_violations_created();
                                    if violations + 1 > self.allowed_violations {
                                        // Cleanup restructures arbitrarily; the
                                        // cached prefix stays sound (windows
                                        // only widen; stale nodes fail their
                                        // LLX), but re-validate conservatively
                                        // by restarting the next descent from
                                        // the entry sentinel.
                                        self.cleanup(key);
                                        path.truncate(1);
                                    }
                                }
                                break 1;
                            }
                            Err(()) => {
                                // Concurrent interference: discard the cache
                                // and retry this key from the entry sentinel,
                                // like a point insert.
                                self.stats.bump_insert_retries();
                                path.truncate(1);
                            }
                        }
                    };
                    j += advance;
                }
            });
            chunk_start = chunk_end;
        }
        out
    }

    /// Removes a whole batch of keys, returning the removed value per key
    /// in **input order** — the symmetric path to
    /// [`insert_bulk`](Self::insert_bulk).
    ///
    /// The batch is stably key-sorted and applied in ascending key order
    /// under chunked weighted epoch pins with the cached-path descent of
    /// the module docs. When two *consecutive* batch keys turn out to live
    /// in sibling leaves, both deletions collapse into one SCX that
    /// contracts the shared parent's subtree (`try_delete_pair`; see the
    /// module docs);
    /// otherwise each key deletes exactly like a point remove. Semantics
    /// match sequential input-order application: each element linearizes
    /// individually and duplicate keys behave as if removed one at a time
    /// (the first duplicate wins, the rest observe the key absent).
    ///
    /// ```
    /// let tree = nbtree::ChromaticTree::new();
    /// tree.insert_bulk(&[(1, "a"), (2, "b"), (3, "c")]);
    /// let removed = tree.remove_bulk(&[2, 9, 2, 1]);
    /// assert_eq!(removed, vec![Some("b"), None, None, Some("a")]);
    /// assert_eq!(tree.collect(), vec![(3, "c")]);
    /// ```
    pub fn remove_bulk(&self, keys: &[K]) -> Vec<Option<V>> {
        if keys.is_empty() {
            return Vec::new();
        }
        assert!(
            keys.len() <= u32::MAX as usize,
            "bulk batches are limited to u32::MAX elements"
        );
        let presorted = keys.windows(2).all(|w| w[0] <= w[1]);
        let sorted_order: Option<Vec<u32>> = if presorted {
            None
        } else {
            let mut keyed: Vec<(K, u32)> = keys
                .iter()
                .enumerate()
                .map(|(i, k)| (k.clone(), i as u32))
                .collect();
            keyed.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
            Some(keyed.into_iter().map(|(_, i)| i).collect())
        };
        let index_of = |j: usize| sorted_order.as_ref().map_or(j, |order| order[j] as usize);
        let mut out: Vec<Option<V>> = vec![None; keys.len()];
        let repin = llxscx::guard_cache::REPIN_OPS as usize;
        let mut chunk_start = 0;
        while chunk_start < keys.len() {
            let chunk_end = (chunk_start + repin).min(keys.len());
            let weight = (chunk_end - chunk_start) as u32;
            llxscx::guard_cache::with_guard_weighted(weight, |guard| {
                let mut path: Vec<PathEntry<'_, K, V>> = Vec::with_capacity(32);
                path.push(PathEntry {
                    node: self.entry(guard),
                    hi: None,
                });
                // As in `insert_bulk`: after a merged SCX loses, the pair
                // retries per-element.
                let mut fallback_until = chunk_start;
                let mut j = chunk_start;
                while j < chunk_end {
                    let i = index_of(j);
                    let key = &keys[i];
                    let advance = loop {
                        while let Some(top) = path.last() {
                            match top.hi {
                                Some(hi) if hi <= key => path.pop(),
                                _ => break,
                            };
                        }
                        debug_assert!(!path.is_empty(), "entry sentinel popped");
                        let mut violations = 0u32;
                        let mut top = *path.last().expect("path holds at least entry");
                        // SAFETY: reached from entry under `guard` (property
                        // C3); see module docs for the cached-prefix argument.
                        let mut top_ref = unsafe { top.node.deref() };
                        let mut gp = if path.len() >= 2 {
                            path[path.len() - 2].node
                        } else {
                            Shared::null()
                        };
                        let (p, leaf) = loop {
                            let dir = if top_ref.route_left(key) { 0 } else { 1 };
                            let child_hi = if dir == 0 { top_ref.key() } else { top.hi };
                            let child = top_ref.read_child(dir, guard);
                            // SAFETY: as above.
                            let child_ref = unsafe { child.deref() };
                            if child_ref.weight() > 1 {
                                violations += child_ref.weight() - 1;
                            } else if child_ref.weight() == 0 && top_ref.weight() == 0 {
                                violations += 1;
                            }
                            if child_ref.is_leaf(guard) {
                                break (top.node, child);
                            }
                            gp = top.node;
                            top = PathEntry {
                                node: child,
                                hi: child_hi,
                            };
                            top_ref = child_ref;
                            path.push(top);
                        };
                        // SAFETY: content reads of an immutable payload.
                        let leaf_ref = unsafe { leaf.deref() };
                        if gp.is_null() || !leaf_ref.key_eq(key) {
                            // Absent key (or empty tree): linearizes like a
                            // query, nothing to do.
                            break 1;
                        }
                        // Pair merging: the next batch key must be distinct,
                        // inside this chunk, and sitting in the right
                        // sibling leaf; the contraction also needs a real
                        // great-grandparent in the cached path (`path` ends
                        // at `p`, so `len ≥ 3` means entry…ggp, gp, p).
                        if j >= fallback_until && j + 1 < chunk_end && path.len() >= 3 {
                            let i2 = index_of(j + 1);
                            let key2 = &keys[i2];
                            // SAFETY: as above.
                            let p_ref = unsafe { p.deref() };
                            let sib = p_ref.read_child(1, guard);
                            let sib_ok = key2 != key && p_ref.read_child(0, guard) == leaf && {
                                // SAFETY: as above.
                                let sib_ref = unsafe { sib.deref() };
                                sib_ref.is_leaf(guard) && sib_ref.key_eq(key2)
                            };
                            if sib_ok {
                                let ggp = path[path.len() - 3].node;
                                match self.try_delete_pair(ggp, gp, p, leaf, key2, guard) {
                                    Ok((old1, old2, created_violation)) => {
                                        out[i] = old1;
                                        out[i2] = old2;
                                        self.stats.bump_merged_remove_scxs();
                                        // `p` and `gp` are finalized: drop
                                        // them from the cache so the next
                                        // descent restarts at `ggp`.
                                        path.pop();
                                        path.pop();
                                        if created_violation {
                                            self.stats.bump_violations_created();
                                            if violations + 1 > self.allowed_violations {
                                                self.cleanup(key);
                                                path.truncate(1);
                                            }
                                        }
                                        break 2;
                                    }
                                    Err(()) => {
                                        self.stats.bump_delete_retries();
                                        fallback_until = j + 2;
                                        path.truncate(1);
                                        continue;
                                    }
                                }
                            }
                        }
                        let res = SearchResult {
                            gp,
                            p,
                            leaf,
                            violations_seen: violations,
                        };
                        match self.try_delete(&res, key, guard) {
                            Ok((old, created_violation)) => {
                                if old.is_some() {
                                    // The SCX finalized `p`: drop it from the
                                    // cache (its replacement hangs off `gp`).
                                    path.pop();
                                }
                                out[i] = old;
                                if created_violation {
                                    self.stats.bump_violations_created();
                                    if violations + 1 > self.allowed_violations {
                                        self.cleanup(key);
                                        path.truncate(1);
                                    }
                                }
                                break 1;
                            }
                            Err(()) => {
                                self.stats.bump_delete_retries();
                                path.truncate(1);
                            }
                        }
                    };
                    j += advance;
                }
            });
            chunk_start = chunk_end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_bulk_is_a_noop() {
        let t = ChromaticTree::<u64, u64>::new();
        assert_eq!(t.insert_bulk(&[]), Vec::<Option<u64>>::new());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn bulk_matches_sequential_application() {
        let t = ChromaticTree::new();
        t.insert(5u64, 50u64);
        let batch = vec![(3, 30), (5, 51), (9, 90), (3, 31), (7, 70)];
        let got = t.insert_bulk(&batch);
        // Sequential input-order application over {5: 50}.
        assert_eq!(got, vec![None, Some(50), None, Some(30), None]);
        assert_eq!(
            t.collect(),
            vec![(3, 31), (5, 51), (7, 70), (9, 90)],
            "last duplicate wins, all keys present"
        );
        let report = t.audit();
        assert!(report.is_valid(), "{:?}", report.errors);
    }

    #[test]
    fn descending_and_random_input_orders_agree() {
        // The batch is sorted internally, so input order must not matter
        // for distinct keys.
        let asc = ChromaticTree::new();
        let desc = ChromaticTree::new();
        let keys: Vec<(u64, u64)> = (0..500u64).map(|k| (k * 7 % 501, k)).collect();
        let mut rev = keys.clone();
        rev.reverse();
        asc.insert_bulk(&keys);
        desc.insert_bulk(&rev);
        // Reversal also reverses duplicate resolution; with this key
        // pattern all keys are distinct, so contents must be identical.
        assert_eq!(asc.collect(), desc.collect());
        assert!(asc.audit().is_valid());
    }

    #[test]
    fn bulk_into_chromatic6_defers_rebalancing_but_stays_valid() {
        let t = ChromaticTree::with_allowed_violations(6);
        let batch: Vec<(u64, u64)> = (0..2000u64).map(|k| (k, k)).collect();
        t.insert_bulk(&batch);
        assert_eq!(t.len(), 2000);
        let report = t.audit();
        assert!(report.is_valid(), "{:?}", report.errors);
    }

    #[test]
    fn whole_batch_into_empty_tree_installs_in_one_scx() {
        // Large allowance: the mini-subtree's intentional red-reds stay in
        // place, so the installed shape is observable.
        let t = ChromaticTree::with_allowed_violations(1000);
        let batch: Vec<(u64, u64)> = (0..64u64).map(|k| (k, 2 * k)).collect();
        let got = t.insert_bulk(&batch);
        assert!(got.iter().all(Option::is_none));
        assert_eq!(t.stats().merged_insert_scxs(), 1, "one SCX for the run");
        assert_eq!(t.stats().merged_insert_keys(), 64);
        assert_eq!(t.len(), 64);
        let report = t.audit();
        assert!(report.is_valid(), "{:?}", report.errors);
        // Black root over weight-0 internals over weight-1 leaves: every
        // weighted path sums to 3 (audit's baseline 1 + root 1 + leaf 1),
        // and all 62 non-root internals of the 64-leaf subtree are red.
        assert_eq!(report.weighted_path_sum, Some(3));
        assert_eq!(report.zero_weight_internals, 62);
        assert_eq!(report.red_red_violations, 60);
    }

    #[test]
    fn eager_policy_cleans_merged_installs() {
        let t = ChromaticTree::new(); // allowed_violations = 0
        let batch: Vec<(u64, u64)> = (0..256u64).map(|k| (k, k)).collect();
        t.insert_bulk(&batch);
        assert!(t.stats().merged_insert_scxs() >= 1);
        let report = t.audit();
        assert!(report.is_valid(), "{:?}", report.errors);
        assert_eq!(
            report.red_red_violations, 0,
            "eager cleanup leaves no red-red behind"
        );
        assert!(report.weighted_path_sum.is_some());
    }

    #[test]
    fn clustered_batch_merges_runs() {
        let t = ChromaticTree::new();
        // Spread-out keys, then a clustered run inside one leaf's window.
        for k in (0..1000u64).step_by(100) {
            t.insert(k, k);
        }
        let batch: Vec<(u64, u64)> = (250..290u64).map(|k| (k, k)).collect();
        let got = t.insert_bulk(&batch);
        assert!(got.iter().all(Option::is_none));
        assert!(t.stats().merged_insert_scxs() >= 1);
        assert!(t.stats().merged_insert_keys() >= 2);
        let report = t.audit();
        assert!(report.is_valid(), "{:?}", report.errors);
        assert_eq!(t.len(), 10 + 40);
    }

    #[test]
    fn empty_remove_bulk_is_a_noop() {
        let t = ChromaticTree::<u64, u64>::new();
        assert_eq!(t.remove_bulk(&[]), Vec::<Option<u64>>::new());
        t.insert(1, 1);
        assert_eq!(t.remove_bulk(&[]), Vec::<Option<u64>>::new());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_bulk_matches_sequential_application() {
        let t = ChromaticTree::new();
        t.insert_bulk(&(0..10u64).map(|k| (k, 10 * k)).collect::<Vec<_>>());
        // Duplicates: the first removal wins, the second sees the key gone.
        let got = t.remove_bulk(&[7, 3, 99, 7, 0]);
        assert_eq!(got, vec![Some(70), Some(30), None, None, Some(0)]);
        assert_eq!(t.len(), 7);
        let report = t.audit();
        assert!(report.is_valid(), "{:?}", report.errors);
    }

    #[test]
    fn remove_bulk_pair_collapse_empties_sibling_leaves() {
        let t = ChromaticTree::new();
        t.insert_bulk(&(0..64u64).map(|k| (k, k)).collect::<Vec<_>>());
        let before = t.stats().merged_remove_scxs();
        let got = t.remove_bulk(&(0..64u64).collect::<Vec<_>>());
        assert!(got.iter().all(Option::is_some));
        assert!(
            t.stats().merged_remove_scxs() > before,
            "consecutive keys in sibling leaves must collapse in one SCX"
        );
        assert_eq!(t.len(), 0);
        let report = t.audit();
        assert!(report.is_valid(), "{:?}", report.errors);
        assert_eq!(report.weighted_path_sum, None, "tree drained to Fig. 10(a)");
    }

    #[test]
    fn remove_bulk_descending_and_random_orders_agree() {
        // 13 is invertible mod 301, so the keys are distinct.
        let keys: Vec<u64> = (0..300u64).map(|k| k * 13 % 301).collect();
        let asc = ChromaticTree::new();
        let desc = ChromaticTree::new();
        for t in [&asc, &desc] {
            t.insert_bulk(&keys.iter().map(|&k| (k, k)).collect::<Vec<_>>());
        }
        let victims: Vec<u64> = keys.iter().copied().step_by(2).collect();
        let mut rev = victims.clone();
        rev.reverse();
        let a = asc.remove_bulk(&victims);
        let mut d = desc.remove_bulk(&rev);
        d.reverse();
        // All victims distinct, so order must not matter.
        assert_eq!(a, d);
        assert_eq!(asc.collect(), desc.collect());
        assert!(asc.audit().is_valid());
        assert!(desc.audit().is_valid());
    }

    #[test]
    fn interleaved_bulk_insert_and_remove_keep_the_tree_valid() {
        let t = ChromaticTree::with_allowed_violations(6);
        for round in 0..8u64 {
            let base = round * 97;
            let batch: Vec<(u64, u64)> = (base..base + 200).map(|k| (k, k)).collect();
            t.insert_bulk(&batch);
            let victims: Vec<u64> = (base..base + 200).step_by(3).collect();
            let removed = t.remove_bulk(&victims);
            assert!(removed.iter().all(Option::is_some));
            let report = t.audit();
            assert!(report.is_valid(), "round {round}: {:?}", report.errors);
        }
    }
}
