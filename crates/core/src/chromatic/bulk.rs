//! Sorted-bulk insertion: shared search-path prefixes, chunked pins.
//!
//! [`ChromaticTree::insert_bulk`] is the tree-level half of the suite's
//! batch story (the sharded façade's shard grouping is the other half).
//! It sorts the batch and inserts in ascending key order, so consecutive
//! keys usually land in nearby leaves — and instead of re-searching from
//! the entry sentinel for every key, it **caches the search path** of the
//! previous insertion and restarts the descent from the deepest cached
//! ancestor whose subtree can still contain the next key. For a batch of
//! `n` uniform keys over a tree of `N` keys that cuts the per-key search
//! from `log N` hops to roughly `log(N/n)` fresh hops plus a shared
//! prefix. Epoch pins are weighted
//! ([`llxscx::guard_cache::with_guard_weighted`]) and taken **per
//! repin-interval chunk**, not per batch: a batch-long pin delays every
//! retirement to the batch boundary, and the resulting garbage wave
//! measurably cost more than the pins it saved.
//!
//! # Why restarting from a cached ancestor is safe
//!
//! The paper's searches may traverse nodes that a concurrent update has
//! already removed; correctness comes from the update validating its
//! section with LLX before the SCX ([`try_insert`] re-checks that the
//! parent is unfinalized and the leaf is still its child). Restarting a
//! descent below the root adds one proof obligation: the cached ancestor
//! must still be a correct starting point *for the new key*. That holds
//! because in these leaf-oriented template trees a surviving node's
//! feasible key interval (its *window*) *never shrinks*:
//!
//! * an insertion splits a leaf into fresh nodes — surviving windows are
//!   untouched;
//! * a deletion replaces the sibling with a copy whose window absorbs the
//!   deleted leaf's interval — windows only widen;
//! * every Fig. 11 rebalancing step is a local restructuring that
//!   preserves the in-order partition of the untouched subtrees.
//!
//! During descent we track each path node's *upper* window bound as
//! implied by the routing keys actually followed (keys ascend, so the
//! lower bound needs no tracking: the next key is ≥ the previous one,
//! which the cached prefix already admitted). When the next key is below
//! the cached bound of a node, the key was inside that node's window at
//! the moment the path traversed it, hence inside every later window of
//! that node while it remains in the tree. The descent below it then
//! follows current child pointers exactly like a root search, and the
//! final LLX/SCX validation in [`try_insert`] rejects any placement whose
//! parent left the tree in the meantime — on such a failure the cache is
//! discarded and the key retries from the entry sentinel, exactly like a
//! point insert's retry.
//!
//! [`try_insert`]: ChromaticTree::insert

use llxscx::epoch::Shared;

use super::{ChromaticTree, SearchResult};
use crate::node::Node;

/// One cached step of the previous descent: the node and the exclusive
/// upper bound of its window as implied by the routing keys followed to
/// reach it (`None` = `∞`). References stay valid for the whole bulk call
/// because the epoch guard is held across it.
struct PathEntry<'g, K: Send + Sync + 'static, V: Send + Sync + 'static> {
    node: Shared<'g, Node<K, V>>,
    hi: Option<&'g K>,
}

// Manual impls: `derive` would demand `K: Clone`/`V: Clone` on the entry
// itself, which the `Shared`/reference pair does not need.
impl<K: Send + Sync + 'static, V: Send + Sync + 'static> Clone for PathEntry<'_, K, V> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<K: Send + Sync + 'static, V: Send + Sync + 'static> Copy for PathEntry<'_, K, V> {}

impl<K, V> ChromaticTree<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Inserts a whole batch, returning the displaced value per element
    /// in **input order**.
    ///
    /// The batch is stably key-sorted (a no-op for pre-sorted input, as
    /// delivered by the sharded façade) and applied in ascending key
    /// order under chunked weighted epoch pins, with the search-path
    /// prefix shared between consecutive keys (see module docs). Semantics
    /// match sequential input-order application: each element linearizes
    /// individually (a batch is not a transaction — concurrent readers
    /// can observe it partially applied, in key order), and elements with
    /// equal keys keep their batch order, so the last duplicate wins.
    ///
    /// This is the implementation behind the chromatic registry entries'
    /// trait-level `insert_batch` override and, transitively, behind each
    /// per-shard group of the sharded façade's `insert_batch`.
    ///
    /// ```
    /// let tree = nbtree::ChromaticTree::new();
    /// tree.insert(20, "old");
    /// let displaced = tree.insert_bulk(&[(10, "a"), (20, "b"), (10, "c")]);
    /// // Input-order results: 10 was absent, 20 held "old", 10 then held "a".
    /// assert_eq!(displaced, vec![None, Some("old"), Some("a")]);
    /// assert_eq!(tree.get(&10), Some("c"), "last duplicate wins");
    /// ```
    pub fn insert_bulk(&self, pairs: &[(K, V)]) -> Vec<Option<V>> {
        if pairs.is_empty() {
            return Vec::new();
        }
        assert!(
            pairs.len() <= u32::MAX as usize,
            "bulk batches are limited to u32::MAX elements"
        );
        // Already-sorted batches (the common case: the sharded façade
        // pre-sorts every per-shard group by key) skip the sort buffer
        // entirely — input order IS key order, duplicates included, and
        // the chunk loop below walks `0..n` directly with no index
        // buffer at all. The probe early-exits on the first inversion,
        // so unsorted inputs pay a couple of comparisons.
        //
        // Otherwise sort a contiguous (key, index) buffer rather than
        // indices with an indirect comparator (two random reads per
        // comparison was visible at batch 512). The index tiebreaker
        // keeps duplicate keys in input order under the unstable sort,
        // which is what makes "apply in key order" indistinguishable
        // (result-wise) from input-order application.
        let presorted = pairs.windows(2).all(|w| w[0].0 <= w[1].0);
        let sorted_order: Option<Vec<u32>> = if presorted {
            None
        } else {
            let mut keyed: Vec<(K, u32)> = pairs
                .iter()
                .enumerate()
                .map(|(i, (k, _))| (k.clone(), i as u32))
                .collect();
            keyed.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
            Some(keyed.into_iter().map(|(_, i)| i).collect())
        };
        let index_of = |j: usize| sorted_order.as_ref().map_or(j, |order| order[j] as usize);
        let mut out: Vec<Option<V>> = vec![None; pairs.len()];
        // One pin per repin-interval-sized chunk, not per batch: a pin
        // spanning hundreds of updates delays every retirement to the
        // batch boundary, and the resulting garbage wave (hundreds of
        // nodes re-entering the allocator cold) measurably outweighed the
        // saved pin traffic at batch 512. Chunking keeps the reclamation
        // cadence identical to the point path; only the first key of each
        // chunk pays a full root descent (the path cache cannot outlive
        // its guard).
        let repin = llxscx::guard_cache::REPIN_OPS as usize;
        let mut chunk_start = 0;
        while chunk_start < pairs.len() {
            let chunk_end = (chunk_start + repin).min(pairs.len());
            let weight = (chunk_end - chunk_start) as u32;
            llxscx::guard_cache::with_guard_weighted(weight, |guard| {
                // The cached path: entry sentinel first, deepest node last.
                // Every entry is an internal node; `hi` is the exclusive
                // upper bound its subtree admitted when the path traversed
                // it.
                let mut path: Vec<PathEntry<'_, K, V>> = Vec::with_capacity(32);
                path.push(PathEntry {
                    node: self.entry(guard),
                    hi: None,
                });
                for j in chunk_start..chunk_end {
                    let i = index_of(j);
                    let (key, value) = &pairs[i];
                    loop {
                        // Drop cached ancestors whose window cannot contain
                        // `key` (keys ascend, so only the upper bound can be
                        // violated). The entry sentinel (`hi == None`) always
                        // survives.
                        while let Some(top) = path.last() {
                            match top.hi {
                                Some(hi) if hi <= key => path.pop(),
                                _ => break,
                            };
                        }
                        debug_assert!(!path.is_empty(), "entry sentinel popped");
                        // Fresh descent from the deepest surviving ancestor,
                        // tallying violations along the traversed suffix for
                        // the `allowed_violations` policy (an undercount
                        // relative to a full root walk — it can only defer a
                        // Cleanup, never skip a necessary one: with `k = 0`
                        // any created violation still triggers it). The loop
                        // mirrors `search`'s register discipline — the current
                        // node and its deref are loop-carried locals, the path
                        // vector is only appended to — so the shared-prefix
                        // saving is not spent on stack traffic.
                        let mut violations = 0u32;
                        let mut top = *path.last().expect("path holds at least entry");
                        // SAFETY: reached from entry under `guard` (property
                        // C3); see module docs for the cached-prefix argument.
                        let mut top_ref = unsafe { top.node.deref() };
                        let mut gp = if path.len() >= 2 {
                            path[path.len() - 2].node
                        } else {
                            Shared::null()
                        };
                        let (p, leaf) = loop {
                            let dir = if top_ref.route_left(key) { 0 } else { 1 };
                            let child_hi = if dir == 0 { top_ref.key() } else { top.hi };
                            let child = top_ref.read_child(dir, guard);
                            // SAFETY: as above; the entry sentinel's null right
                            // child is unreachable (its ∞ key routes left).
                            let child_ref = unsafe { child.deref() };
                            if child_ref.weight() > 1 {
                                violations += child_ref.weight() - 1;
                            } else if child_ref.weight() == 0 && top_ref.weight() == 0 {
                                violations += 1;
                            }
                            if child_ref.is_leaf(guard) {
                                break (top.node, child);
                            }
                            gp = top.node;
                            top = PathEntry {
                                node: child,
                                hi: child_hi,
                            };
                            top_ref = child_ref;
                            path.push(top);
                        };
                        let res = SearchResult {
                            gp,
                            p,
                            leaf,
                            violations_seen: violations,
                        };
                        match self.try_insert(&res, key, value, guard) {
                            Ok((old, created_violation)) => {
                                out[i] = old;
                                if created_violation {
                                    self.stats.bump_violations_created();
                                    if violations + 1 > self.allowed_violations {
                                        // Cleanup restructures arbitrarily; the
                                        // cached prefix stays sound (windows
                                        // only widen; stale nodes fail their
                                        // LLX), but re-validate conservatively
                                        // by restarting the next descent from
                                        // the entry sentinel.
                                        self.cleanup(key);
                                        path.truncate(1);
                                    }
                                }
                                break;
                            }
                            Err(()) => {
                                // Concurrent interference: discard the cache
                                // and retry this key from the entry sentinel,
                                // like a point insert.
                                self.stats.bump_insert_retries();
                                path.truncate(1);
                            }
                        }
                    }
                }
            });
            chunk_start = chunk_end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_bulk_is_a_noop() {
        let t = ChromaticTree::<u64, u64>::new();
        assert_eq!(t.insert_bulk(&[]), Vec::<Option<u64>>::new());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn bulk_matches_sequential_application() {
        let t = ChromaticTree::new();
        t.insert(5u64, 50u64);
        let batch = vec![(3, 30), (5, 51), (9, 90), (3, 31), (7, 70)];
        let got = t.insert_bulk(&batch);
        // Sequential input-order application over {5: 50}.
        assert_eq!(got, vec![None, Some(50), None, Some(30), None]);
        assert_eq!(
            t.collect(),
            vec![(3, 31), (5, 51), (7, 70), (9, 90)],
            "last duplicate wins, all keys present"
        );
        let report = t.audit();
        assert!(report.is_valid(), "{:?}", report.errors);
    }

    #[test]
    fn descending_and_random_input_orders_agree() {
        // The batch is sorted internally, so input order must not matter
        // for distinct keys.
        let asc = ChromaticTree::new();
        let desc = ChromaticTree::new();
        let keys: Vec<(u64, u64)> = (0..500u64).map(|k| (k * 7 % 501, k)).collect();
        let mut rev = keys.clone();
        rev.reverse();
        asc.insert_bulk(&keys);
        desc.insert_bulk(&rev);
        // Reversal also reverses duplicate resolution; with this key
        // pattern all keys are distinct, so contents must be identical.
        assert_eq!(asc.collect(), desc.collect());
        assert!(asc.audit().is_valid());
    }

    #[test]
    fn bulk_into_chromatic6_defers_rebalancing_but_stays_valid() {
        let t = ChromaticTree::with_allowed_violations(6);
        let batch: Vec<(u64, u64)> = (0..2000u64).map(|k| (k, k)).collect();
        t.insert_bulk(&batch);
        assert_eq!(t.len(), 2000);
        let report = t.audit();
        assert!(report.is_valid(), "{:?}", report.errors);
    }
}
