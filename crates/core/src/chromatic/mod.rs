//! The non-blocking chromatic tree (paper §5).
//!
//! A chromatic tree is a relaxed-balance red-black tree: colours are
//! generalized to non-negative integer *weights* (0 = red, 1 = black,
//! `w > 1` = `w − 1` *overweight violations*), and the balance conditions
//! may be violated transiently. Insertions and deletions perform one
//! localized update each (following the tree update template) and then
//! restore balance with a sequence of localized rebalancing steps that can
//! be freely interleaved with other operations.

mod audit;
mod bulk;
mod query;
mod rebalance;
pub mod stats;
mod update;

pub use audit::AuditReport;
pub use stats::Stats;

use std::sync::atomic::Ordering;

use llxscx::epoch::{Atomic, Guard, Shared};
use llxscx::with_guard;

use crate::node::Node;

/// Whether event tracing (`NBTREE_TRACE=1`) is enabled; cached per process.
/// Diagnostic aid for debugging rare concurrent interleavings.
pub(crate) fn trace_enabled() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| std::env::var("NBTREE_TRACE").is_ok())
}

/// A concurrent, non-blocking ordered dictionary backed by a chromatic tree.
///
/// All operations are linearizable and the implementation is lock-free:
/// some operation always completes in a finite number of steps, regardless
/// of the delays or failures of other threads.
///
/// The tree is *leaf-oriented*: dictionary keys live in the leaves and
/// internal nodes only route searches. At all times the height is
/// `O(k + c + log n)` where `n` is the number of keys, `c` the number of
/// in-progress insertions/deletions, and `k` the configured
/// [`allowed_violations`](Self::with_allowed_violations) threshold.
///
/// # Examples
///
/// ```
/// let tree = nbtree::ChromaticTree::new();
/// assert_eq!(tree.insert(3, "three"), None);
/// assert_eq!(tree.get(&3), Some("three"));
/// assert_eq!(tree.remove(&3), Some("three"));
/// assert_eq!(tree.get(&3), None);
/// ```
pub struct ChromaticTree<K: Send + Sync + 'static, V: Send + Sync + 'static> {
    /// The `entry` Data-record (paper Fig. 10): key `∞`, weight 1, never
    /// removed. Its left child is the second sentinel (or, when the
    /// dictionary is empty, a single `∞` leaf); its right child is unused.
    pub(crate) entry: Atomic<Node<K, V>>,
    /// Invoke `Cleanup` only when the number of violations seen on the
    /// update's search path (plus the one it created) exceeds this bound
    /// (§5.6). `0` is the paper's plain "Chromatic"; `6` is "Chromatic6".
    pub(crate) allowed_violations: u32,
    pub(crate) stats: Stats,
}

// SAFETY: all shared mutable state is accessed through atomics/epoch guards.
unsafe impl<K: Send + Sync + 'static, V: Send + Sync + 'static> Send for ChromaticTree<K, V> {}
// SAFETY: same argument as `Send`.
unsafe impl<K: Send + Sync + 'static, V: Send + Sync + 'static> Sync for ChromaticTree<K, V> {}

/// The result of a search: the grandparent, parent and leaf on the search
/// path (grandparent is null when the tree is empty — the leaf's parent is
/// then `entry` itself).
pub(crate) struct SearchResult<'g, K, V> {
    pub gp: Shared<'g, Node<K, V>>,
    pub p: Shared<'g, Node<K, V>>,
    pub leaf: Shared<'g, Node<K, V>>,
    /// Violations (red-red and units of overweight) observed on the path,
    /// used by the `allowed_violations` policy.
    pub violations_seen: u32,
}

impl<K, V> ChromaticTree<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// An empty tree with the paper's eager rebalancing policy (an update
    /// that creates a violation cleans it up before returning).
    pub fn new() -> Self {
        Self::with_allowed_violations(0)
    }

    /// An empty tree that tolerates up to `k` violations on a search path
    /// before an update triggers `Cleanup` (§5.6). The paper's
    /// "Chromatic6" is `k = 6`; larger `k` trades search depth for fewer
    /// rebalancing steps, giving height `O(k + c + log n)`.
    pub fn with_allowed_violations(k: u32) -> Self {
        // SAFETY: construction — the tree is not yet shared with any thread.
        let guard = unsafe { llxscx::epoch::unprotected() };
        // Fig. 10(a): entry(∞, w=1) with a single ∞ leaf as its left child.
        let leaf = Node::leaf(None, None, 1).into_shared(guard);
        let entry = Node::internal(None, 1, leaf, Shared::null());
        ChromaticTree {
            entry: Atomic::from(entry),
            allowed_violations: k,
            stats: Stats::new(),
        }
    }

    /// Operation counters (rebalancing steps, retries, ...). Cheap,
    /// always-on relaxed atomics; used by the benchmark harness.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Memory-ordering audit: `Acquire` — the entry pointer is written once
    /// at construction and never changes; the acquiring load only needs to
    /// see the sentinel nodes' initialization (release-published when the
    /// tree was handed to other threads), same argument as
    /// [`Node::read_child`].
    #[inline]
    pub(crate) fn entry<'g>(&self, guard: &'g Guard) -> Shared<'g, Node<K, V>> {
        self.entry.load(Ordering::Acquire, guard)
    }

    /// The paper's `Search(key)` (Fig. 5): pure reads from `entry` down to a
    /// leaf, remembering the last three nodes. Also tallies violations on
    /// the path for the `allowed_violations` policy.
    ///
    /// `#[inline]`: this loop is the whole read path and most of every
    /// update path; inlining it into `get`/`insert`/`remove` lets the
    /// compiler keep the probe key and the three path pointers in registers.
    #[inline]
    pub(crate) fn search<'g>(&self, key: &K, guard: &'g Guard) -> SearchResult<'g, K, V> {
        let mut gp = Shared::null();
        let mut p = self.entry(guard);
        // SAFETY: entry is never removed.
        let mut leaf = unsafe { p.deref() }.read_child(0, guard);
        let mut violations = 0u32;
        loop {
            // SAFETY: reached by child pointers under `guard` (property C3).
            let leaf_ref = unsafe { leaf.deref() };
            // SAFETY: `p` was `leaf`'s parent on this search path; same liveness
            // argument as `leaf` (C3 under `guard`).
            let p_ref = unsafe { p.deref() };
            if leaf_ref.weight() > 1 {
                violations += leaf_ref.weight() - 1;
            } else if leaf_ref.weight() == 0 && p_ref.weight() == 0 {
                violations += 1;
            }
            if leaf_ref.is_leaf(guard) {
                return SearchResult {
                    gp,
                    p,
                    leaf,
                    violations_seen: violations,
                };
            }
            gp = p;
            p = leaf;
            let dir = if leaf_ref.route_left(key) { 0 } else { 1 };
            leaf = leaf_ref.read_child(dir, guard);
        }
    }

    /// Returns the value associated with `key`, if present.
    ///
    /// Uses only plain reads (no LLX), exactly like a sequential BST search;
    /// correctness under concurrency is the paper's property C3 (§5.4).
    /// Runs under the amortized cached guard ([`llxscx::with_guard`]), so
    /// the epoch pin costs a thread-local re-entry rather than global
    /// atomics — the paper's "searches perform no synchronization" design.
    pub fn get(&self, key: &K) -> Option<V> {
        with_guard(|guard| {
            let res = self.search(key, guard);
            // SAFETY: see search.
            let leaf = unsafe { res.leaf.deref() };
            if leaf.key_eq(key) {
                leaf.value().cloned()
            } else {
                None
            }
        })
    }

    /// Whether the dictionary contains `key`.
    pub fn contains_key(&self, key: &K) -> bool {
        with_guard(|guard| {
            let res = self.search(key, guard);
            // SAFETY: `search` always lands on a leaf: non-null, alive under `guard`.
            unsafe { res.leaf.deref() }.key_eq(key)
        })
    }

    /// Associates `value` with `key`; returns the previously associated
    /// value, or `None` if `key` was absent. Lock-free; linearizes at the
    /// SCX of the successful attempt.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        loop {
            // One attempt per cached-guard entry: retries cross a
            // `with_guard` boundary, so a long retry storm still lets the
            // epoch advance at the repin interval.
            let attempt = with_guard(|guard| {
                let res = self.search(&key, guard);
                self.try_insert(&res, &key, &value, guard)
                    .map(|(old, viol)| (old, viol, res.violations_seen))
            });
            match attempt {
                Ok((old, created_violation, violations_seen)) => {
                    if trace_enabled() {
                        eprintln!(
                            "[{:?}] INSERT committed viol={}",
                            std::thread::current().id(),
                            created_violation
                        );
                    }
                    if created_violation {
                        self.stats.bump_violations_created();
                        if violations_seen + 1 > self.allowed_violations {
                            self.cleanup(&key);
                            if trace_enabled() {
                                eprintln!(
                                    "[{:?}] INSERT cleanup done",
                                    std::thread::current().id()
                                );
                            }
                        }
                    }
                    return old;
                }
                Err(()) => self.stats.bump_insert_retries(),
            }
        }
    }

    /// Removes `key`; returns the value that was associated with it, or
    /// `None` if it was absent. Lock-free; linearizes at the SCX of the
    /// successful attempt (or, when the key is absent, like a query).
    pub fn remove(&self, key: &K) -> Option<V> {
        loop {
            let attempt = with_guard(|guard| {
                let res = self.search(key, guard);
                self.try_delete(&res, key, guard)
                    .map(|(old, viol)| (old, viol, res.violations_seen))
            });
            match attempt {
                Ok((old, created_violation, violations_seen)) => {
                    if trace_enabled() {
                        eprintln!(
                            "[{:?}] DELETE committed viol={}",
                            std::thread::current().id(),
                            created_violation
                        );
                    }
                    if created_violation {
                        self.stats.bump_violations_created();
                        if violations_seen + 1 > self.allowed_violations {
                            self.cleanup(key);
                            if trace_enabled() {
                                eprintln!(
                                    "[{:?}] DELETE cleanup done",
                                    std::thread::current().id()
                                );
                            }
                        }
                    }
                    return old;
                }
                Err(()) => self.stats.bump_delete_retries(),
            }
        }
    }

    /// Number of keys. Takes a traversal snapshot (O(n)); not linearizable
    /// with respect to concurrent updates, like size in most concurrent maps.
    pub fn len(&self) -> usize {
        with_guard(|guard| {
            let mut count = 0usize;
            let mut stack = vec![self.entry(guard)];
            while let Some(n) = stack.pop() {
                if n.is_null() {
                    continue;
                }
                // SAFETY: reached from entry under `guard`.
                let node = unsafe { n.deref() };
                if node.is_leaf(guard) {
                    if !node.is_sentinel_key() {
                        count += 1;
                    }
                } else {
                    stack.push(node.read_child(0, guard));
                    stack.push(node.read_child(1, guard));
                }
            }
            count
        })
    }

    /// Whether the dictionary is empty (same caveats as [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        with_guard(|guard| {
            // SAFETY: the entry sentinel is never reclaimed.
            let entry = unsafe { self.entry(guard).deref() };
            // SAFETY: the entry is internal, so its left child is non-null (C2).
            unsafe { entry.read_child(0, guard).deref() }.is_leaf(guard)
        })
    }

    /// A sorted snapshot of all key/value pairs, by in-order traversal.
    /// Not atomic with respect to concurrent updates (each key's presence
    /// is individually linearizable; use [`successor`](Self::successor) for
    /// atomic adjacent-pair queries).
    pub fn collect(&self) -> Vec<(K, V)> {
        with_guard(|guard| {
            let mut out = Vec::new();
            self.collect_rec(self.entry(guard), &mut out, guard);
            out
        })
    }

    fn collect_rec<'g>(&self, n: Shared<'g, Node<K, V>>, out: &mut Vec<(K, V)>, guard: &'g Guard) {
        if n.is_null() {
            return;
        }
        // SAFETY: `n` is non-null (checked above) and reached under `guard`.
        let node = unsafe { n.deref() };
        if node.is_leaf(guard) {
            if let (Some(k), Some(v)) = (node.key(), node.value()) {
                out.push((k.clone(), v.clone()));
            }
        } else {
            self.collect_rec(node.read_child(0, guard), out, guard);
            self.collect_rec(node.read_child(1, guard), out, guard);
        }
    }
}

impl<K, V> Default for ChromaticTree<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Send + Sync + 'static, V: Send + Sync + 'static> Drop for ChromaticTree<K, V> {
    fn drop(&mut self) {
        // Exclusive access: free every node still in the tree. Descriptors
        // are released transitively by their reference counts.
        // SAFETY: exclusive `&mut self` in Drop — no concurrent readers, so the
        // unprotected guard is sound.
        let guard = unsafe { llxscx::epoch::unprotected() };
        // SEQCST: teardown/cold path; kept uniform with the entry's accesses.
        let mut stack = vec![self.entry.load(Ordering::SeqCst, guard)];
        while let Some(n) = stack.pop() {
            if n.is_null() {
                continue;
            }
            // SAFETY: exclusive access; every node reachable exactly once
            // (down-tree, indegree 1).
            unsafe {
                let node = n.deref();
                stack.push(node.read_child(0, guard));
                stack.push(node.read_child(1, guard));
                llxscx::reclaim::dispose_record(n.as_raw());
            }
        }
    }
}
