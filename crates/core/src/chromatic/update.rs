//! `TryInsert` and `TryDelete` (paper Figs. 6, 12, 13): the localized
//! updates, each a single instance of the tree update template.

use llxscx::epoch::Guard;
use llxscx::{llx, scx, Llx, ScxArgs};

use super::{ChromaticTree, SearchResult};
use crate::node::Node;

impl<K, V> ChromaticTree<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// One attempt to insert `key`. On success returns the previous value
    /// and whether the update created a violation; `Err(())` means a
    /// concurrent update interfered and the caller should retry.
    ///
    /// Two template instances (paper Fig. 11):
    /// * **Insert2** (`key` present): replace the leaf by a fresh leaf with
    ///   the same weight — `V = ⟨p, l⟩`, `R = ⟨l⟩`.
    /// * **Insert1** (`key` absent): replace the leaf by a fresh internal
    ///   node (weight `l.w − 1`) with two fresh weight-1 leaves: one for
    ///   `key` and one copying `l` — `V = ⟨p, l⟩`, `R = ⟨l⟩`.
    pub(crate) fn try_insert<'g>(
        &self,
        res: &SearchResult<'g, K, V>,
        key: &K,
        value: &V,
        guard: &'g Guard,
    ) -> Result<(Option<V>, bool), ()> {
        let hp = match llx(res.p, guard) {
            Llx::Snapshot(h) => h,
            _ => return Err(()),
        };
        // Confirm the leaf is still the parent's child, and find which side.
        let dir = if hp.left() == res.leaf {
            0
        } else if hp.right() == res.leaf {
            1
        } else {
            return Err(());
        };
        let hl = match llx(res.leaf, guard) {
            Llx::Snapshot(h) => h,
            _ => return Err(()),
        };
        let l = hl.node_ref();
        let p_weight = hp.node_ref().weight();

        if l.key_eq(key) {
            // Insert2: value replacement; cannot create a violation
            // (leaves always have weight ≥ 1).
            let old = l.value().cloned();
            let new_leaf =
                Node::leaf(Some(key.clone()), Some(value.clone()), l.weight()).into_shared(guard);
            let ok = scx(
                &ScxArgs {
                    v: &[hp, hl],
                    finalize: 0b10,
                    fld_record: 0,
                    fld_idx: dir,
                    new: new_leaf,
                },
                guard,
            );
            if ok {
                Ok((old, false))
            } else {
                // SAFETY: `new_leaf` was never published.
                unsafe { llxscx::reclaim::dispose_record(new_leaf.as_raw()) };
                Err(())
            }
        } else {
            // Insert1: grow the tree by one leaf. Weight rule: like the
            // Delete of Fig. 6 (line 24), force weight 1 whenever the new
            // node becomes the chromatic tree root (its parent carries the
            // sentinel key) — this keeps the root black, which Lemma 15.2's
            // "rebalancing never touches the sentinels" argument relies on.
            // (Fig. 12 line 28 only special-cases `l` itself being a
            // sentinel; taken literally that makes the root red on the
            // second insertion and the ensuing red-red fix would replace
            // the second sentinel.)
            let new_weight = if l.is_sentinel_key() || hp.node_ref().is_sentinel_key() {
                1
            } else {
                l.weight().max(1) - 1
            };
            // Both children of the new internal are *fresh weight-1 leaves*
            // (Fig. 11: "+ + 1 1"): the existing leaf is copied, not reused,
            // because its weight must drop to 1 to keep path sums equal
            // (paths through a reused overweight leaf would gain `l.w − 1`).
            // Correspondingly the old leaf is finalized (R = ⟨l⟩, Fig. 12).
            let new_leaf = Node::leaf(Some(key.clone()), Some(value.clone()), 1).into_shared(guard);
            let l_copy = Node::leaf(l.key().cloned(), l.value().cloned(), 1).into_shared(guard);
            let new = if l.route_left(key) {
                // key < l.k: the new internal routes on l's key.
                Node::internal(l.key().cloned(), new_weight, new_leaf, l_copy)
            } else {
                Node::internal(Some(key.clone()), new_weight, l_copy, new_leaf)
            }
            .into_shared(guard);
            let ok = scx(
                &ScxArgs {
                    v: &[hp, hl],
                    finalize: 0b10, // R = ⟨l⟩: the old leaf is replaced by its copy
                    fld_record: 0,
                    fld_idx: dir,
                    new,
                },
                guard,
            );
            if ok {
                Ok((None, new_weight == 0 && p_weight == 0))
            } else {
                // SAFETY: none of the nodes were published.
                unsafe {
                    llxscx::reclaim::dispose_record(new.as_raw());
                    llxscx::reclaim::dispose_record(l_copy.as_raw());
                    llxscx::reclaim::dispose_record(new_leaf.as_raw());
                }
                Err(())
            }
        }
    }

    /// One attempt to delete `key` (paper Fig. 6). Replaces the leaf's
    /// sibling subtree root for the parent: `V = ⟨gp, p, l, s⟩` in
    /// breadth-first order, `R = ⟨p, l, s⟩`, and `new` is a fresh copy of
    /// the sibling with weight `p.w + s.w` (1 when the copy becomes the
    /// chromatic tree root). A resulting weight > 1 is an overweight
    /// violation, reported to the caller.
    pub(crate) fn try_delete<'g>(
        &self,
        res: &SearchResult<'g, K, V>,
        key: &K,
        guard: &'g Guard,
    ) -> Result<(Option<V>, bool), ()> {
        // Empty tree: Fig. 10(a), no grandparent exists.
        if res.gp.is_null() {
            return Ok((None, false));
        }
        // Key absent: linearizes like a query.
        // SAFETY: reached from entry under `guard`.
        if !unsafe { res.leaf.deref() }.key_eq(key) {
            return Ok((None, false));
        }

        let hgp = match llx(res.gp, guard) {
            Llx::Snapshot(h) => h,
            _ => return Err(()),
        };
        let dir_gp = if hgp.left() == res.p {
            0
        } else if hgp.right() == res.p {
            1
        } else {
            return Err(());
        };
        let hp = match llx(res.p, guard) {
            Llx::Snapshot(h) => h,
            _ => return Err(()),
        };
        let (sibling, leaf_is_left) = if hp.left() == res.leaf {
            (hp.right(), true)
        } else if hp.right() == res.leaf {
            (hp.left(), false)
        } else {
            return Err(());
        };
        let hl = match llx(res.leaf, guard) {
            Llx::Snapshot(h) => h,
            _ => return Err(()),
        };
        let hs = match llx(sibling, guard) {
            Llx::Snapshot(h) => h,
            _ => return Err(()),
        };

        let gp_ref = hgp.node_ref();
        let p_ref = hp.node_ref();
        let s_ref = hs.node_ref();
        let new_weight = if gp_ref.is_sentinel_key() || p_ref.is_sentinel_key() {
            1
        } else {
            p_ref.weight() + s_ref.weight()
        };
        // Fresh copy of the sibling: key/value are immutable (read from the
        // node), children come from the LLX snapshot (they are mutable).
        let new = if s_ref.is_leaf(guard) {
            Node::leaf(s_ref.key().cloned(), s_ref.value().cloned(), new_weight)
        } else {
            Node::internal(s_ref.key().cloned(), new_weight, hs.left(), hs.right())
        }
        .into_shared(guard);

        // V in breadth-first order (PC8): the leaf and sibling are ordered
        // left-to-right under their parent.
        let v = if leaf_is_left {
            [hgp, hp, hl, hs]
        } else {
            [hgp, hp, hs, hl]
        };
        let ok = scx(
            &ScxArgs {
                v: &v,
                finalize: 0b1110, // R = {p, l, s}
                fld_record: 0,
                fld_idx: dir_gp,
                new,
            },
            guard,
        );
        if ok {
            let old = hl.node_ref().value().cloned();
            Ok((old, new_weight > 1))
        } else {
            // SAFETY: `new` was never published.
            unsafe { llxscx::reclaim::dispose_record(new.as_raw()) };
            Err(())
        }
    }
}
