//! `TryInsert` and `TryDelete` (paper Figs. 6, 12, 13): the localized
//! updates, each a single instance of the tree update template.

use llxscx::epoch::{Guard, Shared};
use llxscx::{llx, scx, Llx, ScxArgs};

use super::{ChromaticTree, SearchResult};
use crate::node::Node;

/// Builds a balanced subtree over `items` (distinct, ascending) entirely
/// from fresh nodes: weight-0 internal routing nodes over weight-1 leaves.
/// Internal keys follow the leaf-oriented convention (the key is the
/// smallest key of the right subtree, `probe < key` routes left).
///
/// `parent_red` is whether the node this subtree hangs off has weight 0;
/// every red-red edge the construction introduces is tallied into
/// `red_reds` so the caller can apply the `allowed_violations` policy.
fn build_run_subtree<'g, K, V>(
    items: &[(&K, &V)],
    parent_red: bool,
    red_reds: &mut u32,
    guard: &'g Guard,
) -> Shared<'g, Node<K, V>>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    if let [(k, v)] = items {
        return Node::leaf(Some((*k).clone()), Some((*v).clone()), 1).into_shared(guard);
    }
    // This internal node is red (weight 0): a red parent makes the edge to
    // it a red-red violation.
    if parent_red {
        *red_reds += 1;
    }
    let mid = items.len() / 2;
    let left = build_run_subtree(&items[..mid], true, red_reds, guard);
    let right = build_run_subtree(&items[mid..], true, red_reds, guard);
    Node::internal(Some(items[mid].0.clone()), 0, left, right).into_shared(guard)
}

/// The top of a merged-run install: like [`build_run_subtree`] but the root
/// carries `root_weight` (the weight the replaced leaf's slot demands so
/// that every weighted path sum through the new section equals the old
/// leaf's path sum: `root_weight + 0·(internals) + 1·(leaf) = old w`).
fn build_run_root<'g, K, V>(
    items: &[(&K, &V)],
    root_weight: u32,
    parent_red: bool,
    red_reds: &mut u32,
    guard: &'g Guard,
) -> Shared<'g, Node<K, V>>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    if let [(k, v)] = items {
        // Degenerate run: a single distinct key. Only reached below the
        // sentinels, where the forced root weight is 1 — a plain leaf.
        return Node::leaf(Some((*k).clone()), Some((*v).clone()), root_weight.max(1))
            .into_shared(guard);
    }
    let root_red = root_weight == 0;
    if root_red && parent_red {
        *red_reds += 1;
    }
    let mid = items.len() / 2;
    let left = build_run_subtree(&items[..mid], root_red, red_reds, guard);
    let right = build_run_subtree(&items[mid..], root_red, red_reds, guard);
    Node::internal(Some(items[mid].0.clone()), root_weight, left, right).into_shared(guard)
}

/// Frees an unpublished subtree built by the run helpers after an SCX
/// failure. Children are pushed before the parent is disposed, so every
/// fresh node is visited exactly once.
///
/// # Safety
/// Every node reachable from `n` must be unpublished (exclusively owned by
/// the caller) and allocated through the record slab.
unsafe fn dispose_run_subtree<'g, K: Send + Sync + 'static, V: Send + Sync + 'static>(
    n: Shared<'g, Node<K, V>>,
    guard: &'g Guard,
) {
    let mut stack = vec![n];
    while let Some(s) = stack.pop() {
        if s.is_null() {
            continue;
        }
        let r = s.deref();
        stack.push(r.read_child(0, guard));
        stack.push(r.read_child(1, guard));
        llxscx::reclaim::dispose_record(s.as_raw());
    }
}

impl<K, V> ChromaticTree<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// One attempt to insert `key`. On success returns the previous value
    /// and whether the update created a violation; `Err(())` means a
    /// concurrent update interfered and the caller should retry.
    ///
    /// Two template instances (paper Fig. 11):
    /// * **Insert2** (`key` present): replace the leaf by a fresh leaf with
    ///   the same weight — `V = ⟨p, l⟩`, `R = ⟨l⟩`.
    /// * **Insert1** (`key` absent): replace the leaf by a fresh internal
    ///   node (weight `l.w − 1`) with two fresh weight-1 leaves: one for
    ///   `key` and one copying `l` — `V = ⟨p, l⟩`, `R = ⟨l⟩`.
    pub(crate) fn try_insert<'g>(
        &self,
        res: &SearchResult<'g, K, V>,
        key: &K,
        value: &V,
        guard: &'g Guard,
    ) -> Result<(Option<V>, bool), ()> {
        let hp = match llx(res.p, guard) {
            Llx::Snapshot(h) => h,
            _ => return Err(()),
        };
        // Confirm the leaf is still the parent's child, and find which side.
        let dir = if hp.left() == res.leaf {
            0
        } else if hp.right() == res.leaf {
            1
        } else {
            return Err(());
        };
        let hl = match llx(res.leaf, guard) {
            Llx::Snapshot(h) => h,
            _ => return Err(()),
        };
        let l = hl.node_ref();
        let p_weight = hp.node_ref().weight();

        if l.key_eq(key) {
            // Insert2: value replacement; cannot create a violation
            // (leaves always have weight ≥ 1).
            let old = l.value().cloned();
            let new_leaf =
                Node::leaf(Some(key.clone()), Some(value.clone()), l.weight()).into_shared(guard);
            let ok = scx(
                &ScxArgs {
                    v: &[hp, hl],
                    finalize: 0b10,
                    fld_record: 0,
                    fld_idx: dir,
                    new: new_leaf,
                },
                guard,
            );
            if ok {
                Ok((old, false))
            } else {
                // SAFETY: `new_leaf` was never published.
                unsafe { llxscx::reclaim::dispose_record(new_leaf.as_raw()) };
                Err(())
            }
        } else {
            // Insert1: grow the tree by one leaf. Weight rule: like the
            // Delete of Fig. 6 (line 24), force weight 1 whenever the new
            // node becomes the chromatic tree root (its parent carries the
            // sentinel key) — this keeps the root black, which Lemma 15.2's
            // "rebalancing never touches the sentinels" argument relies on.
            // (Fig. 12 line 28 only special-cases `l` itself being a
            // sentinel; taken literally that makes the root red on the
            // second insertion and the ensuing red-red fix would replace
            // the second sentinel.)
            let new_weight = if l.is_sentinel_key() || hp.node_ref().is_sentinel_key() {
                1
            } else {
                l.weight().max(1) - 1
            };
            // Both children of the new internal are *fresh weight-1 leaves*
            // (Fig. 11: "+ + 1 1"): the existing leaf is copied, not reused,
            // because its weight must drop to 1 to keep path sums equal
            // (paths through a reused overweight leaf would gain `l.w − 1`).
            // Correspondingly the old leaf is finalized (R = ⟨l⟩, Fig. 12).
            let new_leaf = Node::leaf(Some(key.clone()), Some(value.clone()), 1).into_shared(guard);
            let l_copy = Node::leaf(l.key().cloned(), l.value().cloned(), 1).into_shared(guard);
            let new = if l.route_left(key) {
                // key < l.k: the new internal routes on l's key.
                Node::internal(l.key().cloned(), new_weight, new_leaf, l_copy)
            } else {
                Node::internal(Some(key.clone()), new_weight, l_copy, new_leaf)
            }
            .into_shared(guard);
            let ok = scx(
                &ScxArgs {
                    v: &[hp, hl],
                    finalize: 0b10, // R = ⟨l⟩: the old leaf is replaced by its copy
                    fld_record: 0,
                    fld_idx: dir,
                    new,
                },
                guard,
            );
            if ok {
                Ok((None, new_weight == 0 && p_weight == 0))
            } else {
                // SAFETY: none of the nodes were published.
                unsafe {
                    llxscx::reclaim::dispose_record(new.as_raw());
                    llxscx::reclaim::dispose_record(l_copy.as_raw());
                    llxscx::reclaim::dispose_record(new_leaf.as_raw());
                }
                Err(())
            }
        }
    }

    /// One attempt to delete `key` (paper Fig. 6). Replaces the leaf's
    /// sibling subtree root for the parent: `V = ⟨gp, p, l, s⟩` in
    /// breadth-first order, `R = ⟨p, l, s⟩`, and `new` is a fresh copy of
    /// the sibling with weight `p.w + s.w` (1 when the copy becomes the
    /// chromatic tree root). A resulting weight > 1 is an overweight
    /// violation, reported to the caller.
    pub(crate) fn try_delete<'g>(
        &self,
        res: &SearchResult<'g, K, V>,
        key: &K,
        guard: &'g Guard,
    ) -> Result<(Option<V>, bool), ()> {
        // Empty tree: Fig. 10(a), no grandparent exists.
        if res.gp.is_null() {
            return Ok((None, false));
        }
        // Key absent: linearizes like a query.
        // SAFETY: reached from entry under `guard`.
        if !unsafe { res.leaf.deref() }.key_eq(key) {
            return Ok((None, false));
        }

        let hgp = match llx(res.gp, guard) {
            Llx::Snapshot(h) => h,
            _ => return Err(()),
        };
        let dir_gp = if hgp.left() == res.p {
            0
        } else if hgp.right() == res.p {
            1
        } else {
            return Err(());
        };
        let hp = match llx(res.p, guard) {
            Llx::Snapshot(h) => h,
            _ => return Err(()),
        };
        let (sibling, leaf_is_left) = if hp.left() == res.leaf {
            (hp.right(), true)
        } else if hp.right() == res.leaf {
            (hp.left(), false)
        } else {
            return Err(());
        };
        let hl = match llx(res.leaf, guard) {
            Llx::Snapshot(h) => h,
            _ => return Err(()),
        };
        let hs = match llx(sibling, guard) {
            Llx::Snapshot(h) => h,
            _ => return Err(()),
        };

        let gp_ref = hgp.node_ref();
        let p_ref = hp.node_ref();
        let s_ref = hs.node_ref();
        let new_weight = if gp_ref.is_sentinel_key() || p_ref.is_sentinel_key() {
            1
        } else {
            p_ref.weight() + s_ref.weight()
        };
        // Fresh copy of the sibling: key/value are immutable (read from the
        // node), children come from the LLX snapshot (they are mutable).
        let new = if s_ref.is_leaf(guard) {
            Node::leaf(s_ref.key().cloned(), s_ref.value().cloned(), new_weight)
        } else {
            Node::internal(s_ref.key().cloned(), new_weight, hs.left(), hs.right())
        }
        .into_shared(guard);

        // V in breadth-first order (PC8): the leaf and sibling are ordered
        // left-to-right under their parent.
        let v = if leaf_is_left {
            [hgp, hp, hl, hs]
        } else {
            [hgp, hp, hs, hl]
        };
        let ok = scx(
            &ScxArgs {
                v: &v,
                finalize: 0b1110, // R = {p, l, s}
                fld_record: 0,
                fld_idx: dir_gp,
                new,
            },
            guard,
        );
        if ok {
            let old = hl.node_ref().value().cloned();
            Ok((old, new_weight > 1))
        } else {
            // SAFETY: `new` was never published.
            unsafe { llxscx::reclaim::dispose_record(new.as_raw()) };
            Err(())
        }
    }

    /// One attempt to install a whole same-leaf **run** of a sorted batch
    /// with a single SCX: the template instance behind `insert_bulk`'s run
    /// merging. `run` holds the run's distinct keys in ascending order,
    /// each with its last-duplicate-wins value; every key must have been
    /// routed to `res.leaf` by the descent (the caller's window argument).
    ///
    /// The replaced leaf's payload is merged in (unless a run key
    /// overwrites it) and the whole set is rebuilt as a balanced
    /// mini-subtree: root weight `w − 1` (weight 1 below the sentinels,
    /// exactly the Insert1 rule), weight-0 internals, fresh weight-1
    /// leaves. Every root-to-leaf path through the new section then sums
    /// to the replaced leaf's weight regardless of depth, so the equal
    ///-path-sums invariant holds by construction and the Fig. 11
    /// rebalancing steps need no new cases — the only violations the
    /// install can create are red-red edges among the fresh weight-0
    /// internals, which are tallied and returned for the
    /// `allowed_violations` policy. `V = ⟨p, l⟩`, `R = ⟨l⟩`: the very same
    /// section a point Insert1 freezes, so the merged install wins or
    /// loses against concurrent updates exactly like a point insert.
    ///
    /// Returns the number of red-red violations created; `Err(())` means
    /// a concurrent update interfered and the caller should fall back to
    /// per-element inserts.
    pub(crate) fn try_insert_run<'g>(
        &self,
        res: &SearchResult<'g, K, V>,
        run: &[(&K, &V)],
        guard: &'g Guard,
    ) -> Result<u32, ()> {
        debug_assert!(!run.is_empty());
        debug_assert!(run.windows(2).all(|w| w[0].0 < w[1].0), "run not deduped");
        let hp = match llx(res.p, guard) {
            Llx::Snapshot(h) => h,
            _ => return Err(()),
        };
        let dir = if hp.left() == res.leaf {
            0
        } else if hp.right() == res.leaf {
            1
        } else {
            return Err(());
        };
        let hl = match llx(res.leaf, guard) {
            Llx::Snapshot(h) => h,
            _ => return Err(()),
        };
        let l = hl.node_ref();
        let p_ref = hp.node_ref();
        let p_weight = p_ref.weight();

        // Merge the replaced leaf's payload into the run (key/value are
        // immutable, so reading them before the SCX is safe; the SCX's
        // LLX validation certifies the leaf was still in place).
        let mut merged: Vec<(&K, &V)> = Vec::with_capacity(run.len() + 1);
        if l.is_sentinel_key() {
            merged.extend_from_slice(run);
        } else {
            let lk = l.key().expect("non-sentinel leaf has a key");
            let pos = run.partition_point(|&(k, _)| k < lk);
            if pos < run.len() && run[pos].0 == lk {
                // A run key overwrites the leaf: last duplicate wins.
                merged.extend_from_slice(run);
            } else {
                let lv = l.value().expect("non-sentinel leaf has a value");
                merged.extend_from_slice(&run[..pos]);
                merged.push((lk, lv));
                merged.extend_from_slice(&run[pos..]);
            }
        }

        let mut red_reds = 0u32;
        let new = if l.is_sentinel_key() {
            // Empty tree (the ∞ leaf is only reachable when it is the
            // entry's direct child, Fig. 10(a)): install the Fig. 10(b)
            // shape in one shot — a fresh second sentinel whose left child
            // is the built run (black root) and whose right child is a
            // fresh ∞ leaf.
            let root = build_run_root(&merged, 1, false, &mut red_reds, guard);
            let inf = Node::leaf(None, None, 1).into_shared(guard);
            Node::internal(None, 1, root, inf).into_shared(guard)
        } else if merged.len() == 1 {
            // Every run key collapsed onto the existing leaf's key: a pure
            // value replacement, exactly Insert2 (same weight).
            debug_assert!(l.key_eq(merged[0].0));
            Node::leaf(
                Some(merged[0].0.clone()),
                Some(merged[0].1.clone()),
                l.weight(),
            )
            .into_shared(guard)
        } else {
            // Insert1's weight rule, applied once for the whole run: the
            // mini-subtree root takes `l.w − 1` (1 when it becomes the
            // chromatic tree root — `p` carries the sentinel key).
            let root_weight = if p_ref.is_sentinel_key() {
                1
            } else {
                l.weight().max(1) - 1
            };
            build_run_root(&merged, root_weight, p_weight == 0, &mut red_reds, guard)
        };
        let ok = scx(
            &ScxArgs {
                v: &[hp, hl],
                finalize: 0b10, // R = ⟨l⟩, as in Insert1/Insert2
                fld_record: 0,
                fld_idx: dir,
                new,
            },
            guard,
        );
        if ok {
            Ok(red_reds)
        } else {
            // SAFETY: nothing under `new` was published; the fresh subtree
            // is still exclusively ours.
            unsafe { dispose_run_subtree(new, guard) };
            Err(())
        }
    }

    /// One attempt to remove two keys held by **sibling leaves** with a
    /// single SCX: the merged step behind `remove_bulk`. The caller has
    /// observed (by plain reads) that `leaf` — `p`'s left child — holds
    /// the current key and that `p`'s right child is a leaf holding
    /// `key2`, the next key of the sorted batch; this attempt re-validates
    /// the section under LLX and collapses both deletions at once:
    /// removing both of `p`'s leaves erases `p`'s entire subtree, so `gp`
    /// contracts to its other child `c`, whose fresh copy replaces `gp` at
    /// `ggp` with weight `gp.w + c.w` (1 when `ggp` or `gp` carries the
    /// sentinel key) — exactly the weight the second of two sequential
    /// Fig. 6 deletes would produce, because the intermediate sibling copy
    /// is itself deleted and its weight never surfaces.
    ///
    /// `V = ⟨ggp, gp, {p, c}, l, s⟩` in breadth-first order,
    /// `R = ⟨gp, p, c, l, s⟩`. On success returns the two removed values
    /// (in batch order) and whether the contraction created an overweight
    /// violation.
    pub(crate) fn try_delete_pair<'g>(
        &self,
        ggp: Shared<'g, Node<K, V>>,
        gp: Shared<'g, Node<K, V>>,
        p: Shared<'g, Node<K, V>>,
        leaf: Shared<'g, Node<K, V>>,
        key2: &K,
        guard: &'g Guard,
    ) -> Result<(Option<V>, Option<V>, bool), ()> {
        let hggp = match llx(ggp, guard) {
            Llx::Snapshot(h) => h,
            _ => return Err(()),
        };
        let dir_ggp = if hggp.left() == gp {
            0
        } else if hggp.right() == gp {
            1
        } else {
            return Err(());
        };
        let hgp = match llx(gp, guard) {
            Llx::Snapshot(h) => h,
            _ => return Err(()),
        };
        let (c, p_is_left) = if hgp.left() == p {
            (hgp.right(), true)
        } else if hgp.right() == p {
            (hgp.left(), false)
        } else {
            return Err(());
        };
        let hp = match llx(p, guard) {
            Llx::Snapshot(h) => h,
            _ => return Err(()),
        };
        // The batch is sorted, so the pair's first key lives in the left
        // leaf; if the section shifted under us, fall back.
        if hp.left() != leaf {
            return Err(());
        }
        let s = hp.right();
        let hc = match llx(c, guard) {
            Llx::Snapshot(h) => h,
            _ => return Err(()),
        };
        let hl = match llx(leaf, guard) {
            Llx::Snapshot(h) => h,
            _ => return Err(()),
        };
        let hs = match llx(s, guard) {
            Llx::Snapshot(h) => h,
            _ => return Err(()),
        };
        let s_ref = hs.node_ref();
        if !s_ref.is_leaf(guard) || !s_ref.key_eq(key2) {
            return Err(());
        }

        let c_ref = hc.node_ref();
        let new_weight = if hggp.node_ref().is_sentinel_key() || hgp.node_ref().is_sentinel_key() {
            1
        } else {
            hgp.node_ref().weight() + c_ref.weight()
        };
        // Fresh copy of `c`, like the sibling copy of a point delete. When
        // the pair empties the whole dictionary, `gp` is the second
        // sentinel and `c` its ∞ leaf: the copy is a weight-1 ∞ leaf and
        // the install restores the Fig. 10(a) empty shape at the entry.
        let new = if c_ref.is_leaf(guard) {
            Node::leaf(c_ref.key().cloned(), c_ref.value().cloned(), new_weight)
        } else {
            Node::internal(c_ref.key().cloned(), new_weight, hc.left(), hc.right())
        }
        .into_shared(guard);

        // V in breadth-first order (PC8): gp's children left-to-right,
        // then p's. R = everything below ggp.
        let v = if p_is_left {
            [hggp, hgp, hp, hc, hl, hs]
        } else {
            [hggp, hgp, hc, hp, hl, hs]
        };
        let ok = scx(
            &ScxArgs {
                v: &v,
                finalize: 0b111110, // R = {gp, p, c, l, s}
                fld_record: 0,
                fld_idx: dir_ggp,
                new,
            },
            guard,
        );
        if ok {
            let old1 = hl.node_ref().value().cloned();
            let old2 = s_ref.value().cloned();
            Ok((old1, old2, new_weight > 1))
        } else {
            // SAFETY: `new` was never published.
            unsafe { llxscx::reclaim::dispose_record(new.as_raw()) };
            Err(())
        }
    }
}
