//! `Cleanup`, `TryRebalance` and the 22 rebalancing steps (paper §5.2,
//! Figs. 11 and 14–17).
//!
//! Each rebalancing step is implemented once, parameterized by a direction
//! `d` (`0` = the left-hand version drawn in Fig. 11, `1` = its mirror), so
//! the 11 drawn transformations cover all 22. Every step is an instance of
//! the tree update template: LLXs on the affected nodes, then one SCX that
//! swings a single child pointer, replacing the removed set `R` by freshly
//! allocated nodes `N` while the fringe `F_N` is reused.
//!
//! The chosen step set satisfies the paper's **VIOL** property: a violation
//! on the search path to a key stays on that search path (or is eliminated),
//! which is what lets each insertion/deletion clean up the violation it
//! created by repeatedly searching for its own key.

use llxscx::epoch::{Guard, Shared};
use llxscx::{llx, scx, Llx, LlxHandle, ScxArgs};

use super::stats::Step;
use super::ChromaticTree;
use crate::node::Node;

type H<'g, K, V> = LlxHandle<'g, Node<K, V>>;

/// Convenience: LLX that propagates `Fail`/`Finalized` as `None`
/// (the rebalancing attempt is abandoned; `Cleanup` restarts from `entry`).
fn try_llx<'g, K: Send + Sync + 'static, V: Send + Sync + 'static>(
    node: Shared<'g, Node<K, V>>,
    guard: &'g Guard,
) -> Option<H<'g, K, V>> {
    match llx(node, guard) {
        Llx::Snapshot(h) => Some(h),
        _ => None,
    }
}

impl<K, V> ChromaticTree<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// The paper's `Cleanup(key)` (Fig. 15): repeatedly walk the search path
    /// for `key` from `entry`; at the first violation, attempt one
    /// rebalancing step and restart; return once a full walk reaches a leaf
    /// without seeing a violation. By VIOL, the violation this thread's
    /// update created is then guaranteed to be gone.
    #[allow(unused_assignments)] // ALLOW: the walk's final `gp/p` shifts are dead on the exit path; restructuring would obscure the paper's Fig. 12 loop
    pub(crate) fn cleanup(&self, key: &K) {
        loop {
            // One walk per cached-guard entry (see `ChromaticTree::insert`);
            // `true` means the walk was clean and cleanup is done.
            let clean = llxscx::with_guard(|guard| {
                self.stats.bump_cleanup_passes();
                let mut gp: Shared<'_, Node<K, V>> = Shared::null();
                let mut p: Shared<'_, Node<K, V>> = Shared::null();
                let mut ggp: Shared<'_, Node<K, V>> = Shared::null();
                let mut l = self.entry(guard);
                loop {
                    // SAFETY: reached from entry under `guard` (property C3).
                    let l_ref = unsafe { l.deref() };
                    if l_ref.is_leaf(guard) {
                        return true; // clean walk: our violation is gone
                    }
                    let dir = if l_ref.route_left(key) { 0 } else { 1 };
                    ggp = gp;
                    gp = p;
                    p = l;
                    l = l_ref.read_child(dir, guard);
                    // SAFETY: `l` is a child of a live internal node (leaf-oriented tree:
                    // children of internals are never null), read under `guard`.
                    let l2 = unsafe { l.deref() };
                    // SAFETY: `p` was `l`'s parent on this walk; same liveness argument.
                    let p2 = unsafe { p.deref() };
                    if l2.weight() > 1 || (p2.weight() == 0 && l2.weight() == 0) {
                        if !ggp.is_null() {
                            self.try_rebalance(ggp, gp, p, l, guard);
                        }
                        return false; // go back to entry and search again
                    }
                }
            });
            if clean {
                return;
            }
        }
    }

    /// One rebalancing attempt at the violation found at `l` with ancestors
    /// `p`, `gp`, `ggp` (paper Fig. 15, lines 94–130). Failure (a concurrent
    /// update interfered) is fine: the caller restarts its walk.
    pub(crate) fn try_rebalance<'g>(
        &self,
        ggp: Shared<'g, Node<K, V>>,
        gp: Shared<'g, Node<K, V>>,
        p: Shared<'g, Node<K, V>>,
        l: Shared<'g, Node<K, V>>,
        guard: &'g Guard,
    ) {
        let Some(hr) = try_llx(ggp, guard) else {
            return;
        };
        if hr.left() != gp && hr.right() != gp {
            return;
        }
        let Some(hrx) = try_llx(gp, guard) else {
            return;
        };
        if hrx.left() != p && hrx.right() != p {
            return;
        }
        let Some(hrxx) = try_llx(p, guard) else {
            return;
        };

        // SAFETY: `l` reached from entry under `guard`; weights immutable.
        let l_ref = unsafe { l.deref() };
        if l_ref.weight() > 1 {
            // Overweight violation at l.
            let d = if l == hrxx.left() {
                0
            } else if l == hrxx.right() {
                1
            } else {
                return;
            };
            let Some(hl) = try_llx(l, guard) else { return };
            self.overweight(&hr, &hrx, &hrxx, &hl, d, guard);
        } else {
            // Red-red violation at l (l.w = p.w = 0, gp.w ≠ 0).
            if p == hrx.left() {
                let rxr = hrx.right();
                // SAFETY: gp is internal (it has child p), so both children
                // are non-null.
                if unsafe { rxr.deref() }.weight() == 0 {
                    let Some(hrxr) = try_llx(rxr, guard) else {
                        return;
                    };
                    self.do_blk(&hr, &hrx, &hrxx, &hrxr, guard);
                } else if l == hrxx.left() {
                    self.do_rb1(&hr, &hrx, &hrxx, 0, guard);
                } else if l == hrxx.right() {
                    let Some(hl) = try_llx(l, guard) else { return };
                    self.do_rb2(&hr, &hrx, &hrxx, &hl, 0, guard);
                }
            } else if p == hrx.right() {
                let rxl = hrx.left();
                // SAFETY: `rx` is internal (its child `p` exists), so `rxl` is non-null.
                if unsafe { rxl.deref() }.weight() == 0 {
                    let Some(hrxl) = try_llx(rxl, guard) else {
                        return;
                    };
                    self.do_blk(&hr, &hrx, &hrxl, &hrxx, guard);
                } else if l == hrxx.right() {
                    self.do_rb1(&hr, &hrx, &hrxx, 1, guard);
                } else if l == hrxx.left() {
                    let Some(hl) = try_llx(l, guard) else { return };
                    self.do_rb2(&hr, &hrx, &hrxx, &hl, 1, guard);
                }
            }
        }
    }

    /// `OverweightLeft`/`OverweightRight` (paper Fig. 16), merged via the
    /// direction `d` of the overweight child under its parent `rxx`.
    ///
    /// Handles: `hr → r (ggp)`, `hrx → rx (gp)`, `hrxx → rxx (p)`,
    /// `hl → the overweight child`.
    fn overweight<'g>(
        &self,
        hr: &H<'g, K, V>,
        hrx: &H<'g, K, V>,
        hrxx: &H<'g, K, V>,
        hl: &H<'g, K, V>,
        d: usize,
        guard: &'g Guard,
    ) {
        let o = 1 - d;
        let sib = hrxx.child(o);
        debug_assert!(!sib.is_null(), "overweight node's parent must be internal");
        // SAFETY: weights are immutable; nodes protected by `guard`.
        let sib_w = unsafe { sib.deref() }.weight();
        let rxx_w = hrxx.node_ref().weight();

        if sib_w == 0 {
            if rxx_w == 0 {
                // rxx is red with a red child (the sibling): fix that
                // red-red violation first, one level up (u = r, ux = rx).
                if hrxx.node == hrx.left() {
                    let rxr = hrx.right();
                    // SAFETY: `rxx` is a child of internal `rx`, so `rxr` is non-null.
                    if unsafe { rxr.deref() }.weight() == 0 {
                        let Some(hrxr) = try_llx(rxr, guard) else {
                            return;
                        };
                        self.do_blk(hr, hrx, hrxx, &hrxr, guard);
                    } else if o == 1 {
                        // red-red at rxx's right child, rxx a left child: inside
                        let Some(hs) = try_llx(sib, guard) else {
                            return;
                        };
                        self.do_rb2(hr, hrx, hrxx, &hs, 0, guard);
                    } else {
                        // red-red at rxx's left child, rxx a left child: outside
                        self.do_rb1(hr, hrx, hrxx, 0, guard);
                    }
                } else if hrxx.node == hrx.right() {
                    let rxl = hrx.left();
                    // SAFETY: `rxx` is a child of internal `rx`, so `rxl` is non-null.
                    if unsafe { rxl.deref() }.weight() == 0 {
                        let Some(hrxl) = try_llx(rxl, guard) else {
                            return;
                        };
                        self.do_blk(hr, hrx, &hrxl, hrxx, guard);
                    } else if o == 1 {
                        // red-red at rxx's right child, rxx a right child: outside
                        self.do_rb1(hr, hrx, hrxx, 1, guard);
                    } else {
                        let Some(hs) = try_llx(sib, guard) else {
                            return;
                        };
                        self.do_rb2(hr, hrx, hrxx, &hs, 1, guard);
                    }
                }
                return;
            }
            // Red sibling, black parent: W1–W4 / an RB2 at the rx level,
            // depending on the sibling's child nearer the violation.
            let Some(hs) = try_llx(sib, guard) else {
                return;
            };
            let sl = hs.child(d);
            if sl.is_null() {
                return; // sibling became a leaf: a node changed under us
            }
            // SAFETY: `s` was re-checked internal above, so `sl` is non-null.
            let sl_w = unsafe { sl.deref() }.weight();
            let Some(hsl) = try_llx(sl, guard) else {
                return;
            };
            if sl_w > 1 {
                self.do_w1(hrx, hrxx, hl, &hs, &hsl, d, guard);
            } else if sl_w == 0 {
                // Red-red at sl under the red sibling: rotate it out
                // (u = rx... here u = rxx's parent level: u = rx? No —
                // paper line 152: V = ⟨rx, rxx, rxxr, rxxrl⟩, u = rx).
                self.do_rb2(hrx, hrxx, &hs, &hsl, o, guard);
            } else {
                // sl.w == 1: W2/W3/W4 based on sl's children.
                let far = hsl.child(o);
                if far.is_null() {
                    return; // sl is a leaf: a node we LLXed was modified
                }
                // SAFETY: `sl` was re-checked internal above; its children are non-null.
                if unsafe { far.deref() }.weight() == 0 {
                    let Some(hfar) = try_llx(far, guard) else {
                        return;
                    };
                    self.do_w4(hrx, hrxx, hl, &hs, &hsl, &hfar, d, guard);
                } else {
                    let near = hsl.child(d);
                    // SAFETY: as for `far`: child of the internal `sl`.
                    if unsafe { near.deref() }.weight() == 0 {
                        let Some(hnear) = try_llx(near, guard) else {
                            return;
                        };
                        self.do_w3(hrx, hrxx, hl, &hs, &hsl, &hnear, d, guard);
                    } else {
                        self.do_w2(hrx, hrxx, hl, &hs, &hsl, d, guard);
                    }
                }
            }
        } else if sib_w == 1 {
            let Some(hs) = try_llx(sib, guard) else {
                return;
            };
            let far = hs.child(o);
            if far.is_null() {
                return; // sibling is a leaf: a node we LLXed was modified
            }
            // SAFETY: `s` was re-checked internal above; its children are non-null.
            if unsafe { far.deref() }.weight() == 0 {
                let Some(hfar) = try_llx(far, guard) else {
                    return;
                };
                self.do_w5(hrx, hrxx, hl, &hs, &hfar, d, guard);
            } else {
                let near = hs.child(d);
                // SAFETY: as for `far`: child of the internal `s`.
                if unsafe { near.deref() }.weight() == 0 {
                    let Some(hnear) = try_llx(near, guard) else {
                        return;
                    };
                    self.do_w6(hrx, hrxx, hl, &hs, &hnear, d, guard);
                } else {
                    self.do_push(hrx, hrxx, hl, &hs, d, guard);
                }
            }
        } else {
            // Sibling also overweight: W7.
            let Some(hs) = try_llx(sib, guard) else {
                return;
            };
            self.do_w7(hrx, hrxx, hl, &hs, d, guard);
        }
    }
}

// ---------------------------------------------------------------------------
// The transformations of Fig. 11. Shared helpers first.
// ---------------------------------------------------------------------------

impl<K, V> ChromaticTree<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// Weight for a replacement node installed under `u`: the chromatic tree
    /// root (parent has the sentinel key `∞`) always keeps weight 1
    /// (paper §C.4, proof of Lemma 28).
    fn top_weight(hu: &H<'_, K, V>, computed: u32) -> u32 {
        if hu.node_ref().is_sentinel_key() {
            1
        } else {
            computed
        }
    }

    /// Fresh copy of the node behind `h` with a new weight; children (the
    /// mutable fields) come from the LLX snapshot.
    fn copy<'g>(h: &H<'g, K, V>, weight: u32, guard: &'g Guard) -> Shared<'g, Node<K, V>> {
        let n = h.node_ref();
        if h.left().is_null() {
            Node::leaf(n.key().cloned(), n.value().cloned(), weight)
        } else {
            Node::internal(n.key().cloned(), weight, h.left(), h.right())
        }
        .into_shared(guard)
    }

    /// Fresh internal node with children given per *side* index.
    fn mk<'g>(
        key: Option<&K>,
        weight: u32,
        d: usize,
        child_d: Shared<'g, Node<K, V>>,
        child_o: Shared<'g, Node<K, V>>,
        guard: &'g Guard,
    ) -> Shared<'g, Node<K, V>> {
        let (l, r) = if d == 0 {
            (child_d, child_o)
        } else {
            (child_o, child_d)
        };
        Node::internal(key.cloned(), weight, l, r).into_shared(guard)
    }

    /// Runs the SCX for a rebalancing step: `v` in BFS order, finalizing all
    /// of `v` except the first entry (`u`), swinging `u`'s pointer to `ux`.
    /// On failure the freshly built nodes in `created` are released.
    fn commit_step<'g>(
        &self,
        step: Step,
        v: &[H<'g, K, V>],
        new: Shared<'g, Node<K, V>>,
        created: &[Shared<'g, Node<K, V>>],
        guard: &'g Guard,
    ) -> bool {
        let hu = &v[0];
        let hux = &v[1];
        let fld_idx = if hu.left() == hux.node {
            0
        } else if hu.right() == hux.node {
            1
        } else {
            // Should be impossible: callers validated the edge. Treat as a
            // failed attempt.
            for &n in created {
                // SAFETY: never published.
                unsafe { llxscx::reclaim::dispose_record(n.as_raw()) };
            }
            return false;
        };
        let finalize = ((1u16 << v.len()) - 2) as u8; // all of V except u
        let ok = scx(
            &ScxArgs {
                v,
                finalize,
                fld_record: 0,
                fld_idx,
                new,
            },
            guard,
        );
        if ok {
            self.stats.bump_step(step);
            if crate::chromatic::trace_enabled() {
                eprintln!(
                    "[{:?}] STEP {:?} u.w={} ux.w={} vlen={}",
                    std::thread::current().id(),
                    step,
                    hu.node_ref().weight(),
                    hux.node_ref().weight(),
                    v.len()
                );
            }
        } else {
            for &n in created {
                // SAFETY: never published (the SCX failed before the update
                // CAS could store `new`).
                unsafe { llxscx::reclaim::dispose_record(n.as_raw()) };
            }
        }
        ok
    }

    /// Orders the two children handles of `ux` in breadth-first (left,
    /// right) order given the side `d` of the first.
    fn bfs2<'g>(a: H<'g, K, V>, b: H<'g, K, V>, d: usize) -> [H<'g, K, V>; 2] {
        if d == 0 {
            [a, b]
        } else {
            [b, a]
        }
    }

    /// **BLK** (recolor, its own mirror image): `ux` with two red children
    /// is replaced by a copy of weight `ux.w − 1` whose children are copies
    /// with weight 1. Applied only when a red-red violation exists below.
    fn do_blk<'g>(
        &self,
        hu: &H<'g, K, V>,
        hux: &H<'g, K, V>,
        huxl: &H<'g, K, V>,
        huxr: &H<'g, K, V>,
        guard: &'g Guard,
    ) -> bool {
        let nl = Self::copy(huxl, 1, guard);
        let nr = Self::copy(huxr, 1, guard);
        let w = Self::top_weight(hu, hux.node_ref().weight().max(1) - 1);
        let n = Node::internal(hux.node_ref().key().cloned(), w, nl, nr).into_shared(guard);
        self.commit_step(
            Step::Blk,
            &[*hu, *hux, *huxl, *huxr],
            n,
            &[nl, nr, n],
            guard,
        )
    }

    /// **RB1 / RB1s** (single rotation): fixes a red-red violation at the
    /// *outside* grandchild. `hc` is `ux`'s child on side `d` (red, with a
    /// red child on side `d`).
    fn do_rb1<'g>(
        &self,
        hu: &H<'g, K, V>,
        hux: &H<'g, K, V>,
        hc: &H<'g, K, V>,
        d: usize,
        guard: &'g Guard,
    ) -> bool {
        let o = 1 - d;
        let inner = Self::mk(hux.node_ref().key(), 0, d, hc.child(o), hux.child(o), guard);
        let w = Self::top_weight(hu, hux.node_ref().weight());
        let n = Self::mk(hc.node_ref().key(), w, d, hc.child(d), inner, guard);
        self.commit_step(Step::Rb1, &[*hu, *hux, *hc], n, &[inner, n], guard)
    }

    /// **RB2 / RB2s** (double rotation, Fig. 17): fixes a red-red violation
    /// at the *inside* grandchild. `hc` is `ux`'s child on side `d` (red);
    /// `hgc` is `hc`'s child on side `1 − d` (red).
    fn do_rb2<'g>(
        &self,
        hu: &H<'g, K, V>,
        hux: &H<'g, K, V>,
        hc: &H<'g, K, V>,
        hgc: &H<'g, K, V>,
        d: usize,
        guard: &'g Guard,
    ) -> bool {
        let o = 1 - d;
        let nd = Self::mk(hc.node_ref().key(), 0, d, hc.child(d), hgc.child(d), guard);
        let no = Self::mk(
            hux.node_ref().key(),
            0,
            d,
            hgc.child(o),
            hux.child(o),
            guard,
        );
        let w = Self::top_weight(hu, hux.node_ref().weight());
        let n = Self::mk(hgc.node_ref().key(), w, d, nd, no, guard);
        self.commit_step(Step::Rb2, &[*hu, *hux, *hc, *hgc], n, &[nd, no, n], guard)
    }

    /// **PUSH / PUSHs**: the overweight child `ha` (side `d`) gives one
    /// weight unit to the parent; the weight-1 sibling `hs` goes red.
    /// Applied only when the sibling's children are not red.
    fn do_push<'g>(
        &self,
        hu: &H<'g, K, V>,
        hux: &H<'g, K, V>,
        ha: &H<'g, K, V>,
        hs: &H<'g, K, V>,
        d: usize,
        guard: &'g Guard,
    ) -> bool {
        let na = Self::copy(ha, ha.node_ref().weight() - 1, guard);
        let ns = Self::copy(hs, 0, guard);
        let w = Self::top_weight(hu, hux.node_ref().weight() + 1);
        let n = Self::mk(hux.node_ref().key(), w, d, na, ns, guard);
        let [c0, c1] = Self::bfs2(*ha, *hs, d);
        self.commit_step(Step::Push, &[*hu, *hux, c0, c1], n, &[na, ns, n], guard)
    }

    /// **W1 / W1s**: red sibling whose near child is also overweight — one
    /// rotation reduces both overweights.
    #[allow(clippy::too_many_arguments)] // ALLOW: signature is the paper's rotation context — one handle per frozen node; bundling would hide which nodes each case freezes
    fn do_w1<'g>(
        &self,
        hu: &H<'g, K, V>,
        hux: &H<'g, K, V>,
        ha: &H<'g, K, V>,
        hs: &H<'g, K, V>,
        hsl: &H<'g, K, V>,
        d: usize,
        guard: &'g Guard,
    ) -> bool {
        let o = 1 - d;
        let na = Self::copy(ha, ha.node_ref().weight() - 1, guard);
        let nsl = Self::copy(hsl, hsl.node_ref().weight() - 1, guard);
        let nl = Self::mk(hux.node_ref().key(), 1, d, na, nsl, guard);
        let w = Self::top_weight(hu, hux.node_ref().weight());
        let n = Self::mk(hs.node_ref().key(), w, d, nl, hs.child(o), guard);
        let [c0, c1] = Self::bfs2(*ha, *hs, d);
        self.commit_step(
            Step::W1,
            &[*hu, *hux, c0, c1, *hsl],
            n,
            &[na, nsl, nl, n],
            guard,
        )
    }

    /// **W2 / W2s**: red sibling, near child weight 1 with no red child —
    /// rotation; the near child goes red.
    #[allow(clippy::too_many_arguments)] // ALLOW: signature is the paper's rotation context — one handle per frozen node; bundling would hide which nodes each case freezes
    fn do_w2<'g>(
        &self,
        hu: &H<'g, K, V>,
        hux: &H<'g, K, V>,
        ha: &H<'g, K, V>,
        hs: &H<'g, K, V>,
        hsl: &H<'g, K, V>,
        d: usize,
        guard: &'g Guard,
    ) -> bool {
        let o = 1 - d;
        let na = Self::copy(ha, ha.node_ref().weight() - 1, guard);
        let nsl = Self::copy(hsl, 0, guard);
        let nl = Self::mk(hux.node_ref().key(), 1, d, na, nsl, guard);
        let w = Self::top_weight(hu, hux.node_ref().weight());
        let n = Self::mk(hs.node_ref().key(), w, d, nl, hs.child(o), guard);
        let [c0, c1] = Self::bfs2(*ha, *hs, d);
        self.commit_step(
            Step::W2,
            &[*hu, *hux, c0, c1, *hsl],
            n,
            &[na, nsl, nl, n],
            guard,
        )
    }

    /// **W3 / W3s**: red sibling, near child weight 1 whose *near* child is
    /// red — double rotation through that red grandchild (`hd`).
    #[allow(clippy::too_many_arguments)] // ALLOW: signature is the paper's rotation context — one handle per frozen node; bundling would hide which nodes each case freezes
    fn do_w3<'g>(
        &self,
        hu: &H<'g, K, V>,
        hux: &H<'g, K, V>,
        ha: &H<'g, K, V>,
        hs: &H<'g, K, V>,
        hsl: &H<'g, K, V>,
        hd: &H<'g, K, V>,
        d: usize,
        guard: &'g Guard,
    ) -> bool {
        let o = 1 - d;
        let na = Self::copy(ha, ha.node_ref().weight() - 1, guard);
        let nll = Self::mk(hux.node_ref().key(), 0, d, na, hd.child(d), guard);
        let nlr = Self::mk(hsl.node_ref().key(), 0, d, hd.child(o), hsl.child(o), guard);
        let nl = Self::mk(hd.node_ref().key(), 1, d, nll, nlr, guard);
        let w = Self::top_weight(hu, hux.node_ref().weight());
        let n = Self::mk(hs.node_ref().key(), w, d, nl, hs.child(o), guard);
        let [c0, c1] = Self::bfs2(*ha, *hs, d);
        self.commit_step(
            Step::W3,
            &[*hu, *hux, c0, c1, *hsl, *hd],
            n,
            &[na, nll, nlr, nl, n],
            guard,
        )
    }

    /// **W4 / W4s**: red sibling, near child weight 1 whose *far* child is
    /// red — rotation through the near child (`hsl`); `hfar` is its red
    /// child on the far side.
    ///
    /// Weight placement: the replacement triple is `(0, 1, 1)` — a red node
    /// over two weight-1 internals — NOT `(1, 0, 0)`. Both preserve path
    /// sums, but with `(1, 0, 0)` the sibling's *near* grandchild (whose
    /// weight is unconstrained here, unlike in W2/W3) would sit under a red
    /// new node and, if itself red, mint a red-red violation that no
    /// in-progress operation owns — breaking Lemma 26's accounting and
    /// leaving a violation nothing ever cleans up (observed as a `Cleanup`
    /// livelock under contention before this was fixed).
    #[allow(clippy::too_many_arguments)] // ALLOW: signature is the paper's rotation context — one handle per frozen node; bundling would hide which nodes each case freezes
    fn do_w4<'g>(
        &self,
        hu: &H<'g, K, V>,
        hux: &H<'g, K, V>,
        ha: &H<'g, K, V>,
        hs: &H<'g, K, V>,
        hsl: &H<'g, K, V>,
        hfar: &H<'g, K, V>,
        d: usize,
        guard: &'g Guard,
    ) -> bool {
        let o = 1 - d;
        let na = Self::copy(ha, ha.node_ref().weight() - 1, guard);
        let p2 = Self::mk(hux.node_ref().key(), 1, d, na, hsl.child(d), guard);
        let p3 = Self::mk(
            hfar.node_ref().key(),
            1,
            d,
            hfar.child(d),
            hfar.child(o),
            guard,
        );
        let p = Self::mk(hsl.node_ref().key(), 0, d, p2, p3, guard);
        let w = Self::top_weight(hu, hux.node_ref().weight());
        let n = Self::mk(hs.node_ref().key(), w, d, p, hs.child(o), guard);
        let [c0, c1] = Self::bfs2(*ha, *hs, d);
        self.commit_step(
            Step::W4,
            &[*hu, *hux, c0, c1, *hsl, *hfar],
            n,
            &[na, p2, p3, p, n],
            guard,
        )
    }

    /// **W5 / W5s**: weight-1 sibling whose *far* child is red — single
    /// rotation (the classic red-black "case 4").
    #[allow(clippy::too_many_arguments)] // ALLOW: signature is the paper's rotation context — one handle per frozen node; bundling would hide which nodes each case freezes
    fn do_w5<'g>(
        &self,
        hu: &H<'g, K, V>,
        hux: &H<'g, K, V>,
        ha: &H<'g, K, V>,
        hs: &H<'g, K, V>,
        hfar: &H<'g, K, V>,
        d: usize,
        guard: &'g Guard,
    ) -> bool {
        let o = 1 - d;
        let na = Self::copy(ha, ha.node_ref().weight() - 1, guard);
        let nl = Self::mk(hux.node_ref().key(), 1, d, na, hs.child(d), guard);
        let nr = Self::mk(
            hfar.node_ref().key(),
            1,
            d,
            hfar.child(d),
            hfar.child(o),
            guard,
        );
        let w = Self::top_weight(hu, hux.node_ref().weight());
        let n = Self::mk(hs.node_ref().key(), w, d, nl, nr, guard);
        let [c0, c1] = Self::bfs2(*ha, *hs, d);
        self.commit_step(
            Step::W5,
            &[*hu, *hux, c0, c1, *hfar],
            n,
            &[na, nl, nr, n],
            guard,
        )
    }

    /// **W6 / W6s**: weight-1 sibling whose *near* child is red — double
    /// rotation (the classic red-black "case 3").
    #[allow(clippy::too_many_arguments)] // ALLOW: signature is the paper's rotation context — one handle per frozen node; bundling would hide which nodes each case freezes
    fn do_w6<'g>(
        &self,
        hu: &H<'g, K, V>,
        hux: &H<'g, K, V>,
        ha: &H<'g, K, V>,
        hs: &H<'g, K, V>,
        hnear: &H<'g, K, V>,
        d: usize,
        guard: &'g Guard,
    ) -> bool {
        let o = 1 - d;
        let na = Self::copy(ha, ha.node_ref().weight() - 1, guard);
        let nl = Self::mk(hux.node_ref().key(), 1, d, na, hnear.child(d), guard);
        let nr = Self::mk(
            hs.node_ref().key(),
            1,
            d,
            hnear.child(o),
            hs.child(o),
            guard,
        );
        let w = Self::top_weight(hu, hux.node_ref().weight());
        let n = Self::mk(hnear.node_ref().key(), w, d, nl, nr, guard);
        let [c0, c1] = Self::bfs2(*ha, *hs, d);
        self.commit_step(
            Step::W6,
            &[*hu, *hux, c0, c1, *hnear],
            n,
            &[na, nl, nr, n],
            guard,
        )
    }

    /// **W7 / W7s**: both children overweight — each gives one weight unit
    /// to the parent.
    fn do_w7<'g>(
        &self,
        hu: &H<'g, K, V>,
        hux: &H<'g, K, V>,
        ha: &H<'g, K, V>,
        hs: &H<'g, K, V>,
        d: usize,
        guard: &'g Guard,
    ) -> bool {
        let na = Self::copy(ha, ha.node_ref().weight() - 1, guard);
        let ns = Self::copy(hs, hs.node_ref().weight() - 1, guard);
        let w = Self::top_weight(hu, hux.node_ref().weight() + 1);
        let n = Self::mk(hux.node_ref().key(), w, d, na, ns, guard);
        let [c0, c1] = Self::bfs2(*ha, *hs, d);
        self.commit_step(Step::W7, &[*hu, *hux, c0, c1], n, &[na, ns, n], guard)
    }
}
