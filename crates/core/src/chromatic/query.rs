//! Ordered queries: `Successor`, `Predecessor` (paper §5.5) and the
//! VLX-validated range scan built on the same idea.
//!
//! These walk to the target leaf performing LLXs, then (when the answer is
//! in an *adjacent* leaf) walk to that leaf and validate the connecting path
//! with a VLX, which linearizes the query at the VLX. [`ChromaticTree::range`]
//! extends the scheme from a path to a whole subtree; the scan itself lives
//! in [`crate::range`] so the other template trees can reuse it.

use std::ops::RangeBounds;

use llxscx::epoch::Guard;
use llxscx::{llx, vlx, with_guard, Llx, LlxHandle};

use super::ChromaticTree;
use crate::node::Node;
use crate::range::try_range_scan;

type H<'g, K, V> = LlxHandle<'g, Node<K, V>>;

/// Outcome of one attempt; `Interfered` means retry from scratch.
enum Attempt<T> {
    Done(T),
    Interfered,
}

impl<K, V> ChromaticTree<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// The smallest key strictly greater than `key` (and its value), or
    /// `None` if no such key exists. Linearizable (§5.5).
    pub fn successor(&self, key: &K) -> Option<(K, V)> {
        loop {
            // One attempt per cached-guard entry (see `ChromaticTree::insert`).
            if let Attempt::Done(r) = with_guard(|guard| self.try_adjacent(key, 0, guard)) {
                return r;
            }
        }
    }

    /// The largest key strictly smaller than `key` (and its value), or
    /// `None` if no such key exists. Linearizable (mirror of `successor`).
    pub fn predecessor(&self, key: &K) -> Option<(K, V)> {
        loop {
            if let Attempt::Done(r) = with_guard(|guard| self.try_adjacent(key, 1, guard)) {
                return r;
            }
        }
    }

    /// One attempt at an adjacent-leaf query. `d = 0` finds the successor
    /// (remember the last *left* turn, then take the leftmost leaf of its
    /// right subtree); `d = 1` the predecessor (mirror).
    fn try_adjacent<'g>(&self, key: &K, d: usize, guard: &'g Guard) -> Attempt<Option<(K, V)>> {
        let o = 1 - d;
        let entry = self.entry(guard);
        // Path of handles from the last `d`-side turn down to the current
        // node; the final VLX validates exactly the region connecting the
        // two adjacent leaves.
        let mut path: Vec<H<'g, K, V>> = Vec::with_capacity(32);
        let mut last_turn: Option<H<'g, K, V>> = None;

        let mut h = match llx(entry, guard) {
            Llx::Snapshot(h) => h,
            _ => return Attempt::Interfered,
        };
        loop {
            let node = h.node_ref();
            if node.is_leaf(guard) {
                break;
            }
            let go_left = node.route_left(key);
            let turn_matches = (d == 0 && go_left) || (d == 1 && !go_left);
            let next = if go_left { h.left() } else { h.right() };
            if turn_matches {
                last_turn = Some(h);
                path.clear();
                path.push(h);
            }
            h = match llx(next, guard) {
                Llx::Snapshot(h) => h,
                _ => return Attempt::Interfered,
            };
            path.push(h);
        }

        let leaf = h.node_ref();
        if d == 0 {
            // Successor: the dictionary is empty iff the only left turn was
            // at `entry` itself.
            if let Some(t) = &last_turn {
                if t.node == entry {
                    return Attempt::Done(None);
                }
            }
            // The leaf on the search path already answers the query.
            if let Some(k) = leaf.key() {
                if key < k {
                    return Attempt::Done(Some((k.clone(), leaf.value().cloned().unwrap())));
                }
            }
        } else {
            // Predecessor: the leaf on the search path already answers the
            // query when its key is smaller than the probe (this includes
            // paths with no right turn that end at a small leaf).
            if let Some(k) = leaf.key() {
                if k < key {
                    return Attempt::Done(Some((k.clone(), leaf.value().cloned().unwrap())));
                }
            }
            // Otherwise: never having turned right means key ≤ every key,
            // which the generic fall-through below reports as None.
        }
        let Some(turn) = last_turn else {
            return Attempt::Done(None);
        };
        if turn.node == entry {
            return Attempt::Done(None);
        }

        // The answer is the adjacent leaf: the `d`-most leaf of the turn
        // node's `o`-side subtree (e.g. for successor: leftmost leaf of the
        // right subtree of the last left turn).
        let mut cur = turn.child(o);
        let adj = loop {
            let h = match llx(cur, guard) {
                Llx::Snapshot(h) => h,
                _ => return Attempt::Interfered,
            };
            path.push(h);
            if h.node_ref().is_leaf(guard) {
                break h;
            }
            cur = h.child(d);
        };
        let result = adj
            .node_ref()
            .key()
            .map(|k| (k.clone(), adj.node_ref().value().cloned().unwrap()));
        if vlx(&path, guard) {
            Attempt::Done(result)
        } else {
            Attempt::Interfered
        }
    }

    /// All key/value pairs whose key lies in `bounds`, sorted by key — an
    /// **atomic snapshot** of the interval, linearized at the successful
    /// VLX of the final attempt (see [`crate::range`] for the argument).
    ///
    /// Lock-free: an attempt only fails because a concurrent SCX committed
    /// (or was helped to a terminal state), and each failed attempt falls
    /// back to a full re-traversal from the entry point. Retries are
    /// tallied in [`stats`](ChromaticTree::stats). Use
    /// [`range_attempts`](Self::range_attempts) for a bounded retry budget.
    ///
    /// ```
    /// let t = nbtree::ChromaticTree::new();
    /// for k in [1u64, 5, 9] {
    ///     t.insert(k, k * 10);
    /// }
    /// assert_eq!(t.range(2..=9), vec![(5, 50), (9, 90)]);
    /// assert_eq!(t.range(..), vec![(1, 10), (5, 50), (9, 90)]);
    /// ```
    pub fn range<B: RangeBounds<K>>(&self, bounds: B) -> Vec<(K, V)> {
        self.stats.bump_range_queries();
        loop {
            // One attempt per cached-guard entry, like the update paths: a
            // retry storm still lets the epoch advance at repin intervals.
            if let Some(out) = with_guard(|guard| try_range_scan(self.entry(guard), &bounds, guard))
            {
                return out;
            }
            self.stats.bump_range_retries();
        }
    }

    /// Like [`range`](Self::range) but gives up after `attempts` failed
    /// validations instead of waiting out a write-heavy phase, returning
    /// `None`. `range` is `range_attempts` with an unbounded budget.
    ///
    /// ```
    /// let t = nbtree::ChromaticTree::new();
    /// for k in 0u64..100 {
    ///     t.insert(k, k);
    /// }
    /// // Quiescent tree: the first attempt validates.
    /// assert_eq!(t.range_attempts(10..=19, 1).unwrap().len(), 10);
    /// // A zero budget never scans at all.
    /// assert_eq!(t.range_attempts(10..=19, 0), None);
    /// ```
    pub fn range_attempts<B: RangeBounds<K>>(
        &self,
        bounds: B,
        attempts: usize,
    ) -> Option<Vec<(K, V)>> {
        self.stats.bump_range_queries();
        for _ in 0..attempts {
            if let Some(out) = with_guard(|guard| try_range_scan(self.entry(guard), &bounds, guard))
            {
                return Some(out);
            }
            self.stats.bump_range_retries();
        }
        None
    }

    /// The smallest key (and value), or `None` when empty. Implemented as
    /// an adjacent-leaf walk validated by VLX.
    pub fn first(&self) -> Option<(K, V)> {
        loop {
            match with_guard(|guard| self.try_extreme(0, guard)) {
                Attempt::Done(r) => return r,
                Attempt::Interfered => continue,
            }
        }
    }

    /// The largest key (and value), or `None` when empty.
    pub fn last(&self) -> Option<(K, V)> {
        loop {
            match with_guard(|guard| self.try_extreme(1, guard)) {
                Attempt::Done(r) => return r,
                Attempt::Interfered => continue,
            }
        }
    }

    fn try_extreme<'g>(&self, d: usize, guard: &'g Guard) -> Attempt<Option<(K, V)>> {
        // Descend always to side `d` inside the chromatic tree; sentinels
        // force the first two hops left.
        let mut path: Vec<H<'g, K, V>> = Vec::with_capacity(32);
        let mut cur = self.entry(guard);
        let leaf = loop {
            let h = match llx(cur, guard) {
                Llx::Snapshot(h) => h,
                _ => return Attempt::Interfered,
            };
            path.push(h);
            let node = h.node_ref();
            if node.is_leaf(guard) {
                break h;
            }
            // Sentinel-keyed internal nodes route to the left (the whole
            // chromatic tree hangs off their left child); inside the tree
            // take side `d`. In the empty tree this ends at the ∞ leaf,
            // whose `None` key maps to a `None` result.
            cur = if node.is_sentinel_key() {
                h.left()
            } else {
                h.child(d)
            };
        };
        let result = leaf
            .node_ref()
            .key()
            .map(|k| (k.clone(), leaf.node_ref().value().cloned().unwrap()));
        if vlx(&path, guard) {
            Attempt::Done(result)
        } else {
            Attempt::Interfered
        }
    }
}
