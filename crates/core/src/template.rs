//! The tree update template (paper §4, Fig. 3), as a reusable driver.
//!
//! An update that follows the template performs LLXs on a sequence of
//! records chosen on the fly (`NextNode`/`Condition` in the paper), then a
//! single SCX computed from the snapshots (`SCX-Arguments`), returning a
//! locally computed result. The paper proves (§4.1) that *any* data
//! structure whose updates follow this discipline — with `SCX-Arguments`
//! satisfying postconditions PC1–PC9 — is linearizable and non-blocking,
//! and that each successful update atomically replaces the connected
//! subgraph `R ∪ F_N` by `N ∪ F_N`.
//!
//! The chromatic tree in this crate uses hand-unrolled instances of the
//! template for speed (as the paper's pseudocode does); the `nbbst` crate
//! demonstrates this generic driver.

use llxscx::epoch::{Guard, Shared};
use llxscx::{llx, scx, Llx, LlxHandle, Record, ScxArgs};

/// What the update's local computation decides after each LLX
/// (`Condition` + `NextNode` + `SCX-Arguments` from Fig. 3, fused).
pub enum TemplateStep<'g, N: Record, R> {
    /// Perform an LLX on this record next (it must have been reached via
    /// snapshots of earlier records, per the template).
    Llx(Shared<'g, N>),
    /// Enough records are loaded: attempt the SCX.
    Scx {
        /// Bitmask over the handle sequence selecting `R ⊆ V` (PC2).
        finalize: u8,
        /// Index of the record holding the modified field (PC3).
        fld_record: usize,
        /// Which child pointer of that record to swing.
        fld_idx: usize,
        /// Root of the freshly allocated subgraph `N` (PC4/PC7).
        new: Shared<'g, N>,
        /// Every node allocated for `N`, so a failed SCX can release them
        /// (they were never published).
        created: Vec<Shared<'g, N>>,
        /// Returned if the SCX succeeds (`Result` in Fig. 3).
        result: R,
    },
    /// The update completed without modifying the tree (e.g. deleting an
    /// absent key): linearized like a query.
    Done(R),
    /// A structural check failed; the caller should restart from scratch.
    Abort,
}

/// Why a template attempt failed (the caller re-runs the whole update,
/// including its preliminary search, as the paper's operations do).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interfered;

/// Runs one attempt of the tree update template.
///
/// `decide` is invoked with the snapshots collected so far (the paper's
/// `s_0, s'_0, …, s_i, s'_i` — immutable fields are read through the
/// handles) and chooses the next step. The driver guarantees the LLX/SCX
/// linking discipline; `decide` must guarantee PC1–PC9 for the provably
/// correct behaviour of §4.1 to apply.
pub fn tree_update<'g, N, R>(
    start: Shared<'g, N>,
    guard: &'g Guard,
    mut decide: impl FnMut(&[LlxHandle<'g, N>]) -> TemplateStep<'g, N, R>,
) -> Result<R, Interfered>
where
    N: Record,
{
    let mut handles: Vec<LlxHandle<'g, N>> = Vec::with_capacity(8);
    let mut target = start;
    loop {
        match llx(target, guard) {
            Llx::Snapshot(h) => handles.push(h),
            _ => return Err(Interfered),
        }
        match decide(&handles) {
            TemplateStep::Llx(next) => target = next,
            TemplateStep::Scx {
                finalize,
                fld_record,
                fld_idx,
                new,
                created,
                result,
            } => {
                let ok = scx(
                    &ScxArgs {
                        v: &handles,
                        finalize,
                        fld_record,
                        fld_idx,
                        new,
                    },
                    guard,
                );
                if ok {
                    return Ok(result);
                }
                for n in created {
                    // SAFETY: allocated by `decide` for this attempt and
                    // never published (the SCX failed).
                    unsafe { llxscx::reclaim::dispose_record(n.as_raw()) };
                }
                return Err(Interfered);
            }
            TemplateStep::Done(r) => return Ok(r),
            TemplateStep::Abort => return Err(Interfered),
        }
    }
}
