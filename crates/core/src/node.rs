//! The Data-record used by all trees in this crate: a binary tree node with
//! immutable key/value/weight and two mutable child pointers.

use std::sync::atomic::Ordering;

use llxscx::epoch::{Atomic, Guard, Owned, Shared};
use llxscx::{Record, RecordHeader};

/// A node of a leaf-oriented chromatic tree.
///
/// Following the paper (§5.1), the child pointers are the only mutable
/// fields; `key`, `value` and `weight` are immutable, so updates that would
/// change them replace the node by a fresh copy. `key = None` encodes the
/// sentinel key `∞`, which is larger than every dictionary key.
///
/// Cache-line aligned: a search touches one node per level, and without
/// alignment a ~72-byte node (for word-sized keys) straddles two lines,
/// doubling the miss cost of every hop; alignment also keeps the hot
/// `info`/`marked` header words of different nodes out of each other's
/// lines (false sharing under concurrent freezing).
#[repr(align(64))]
pub struct Node<K, V> {
    header: RecordHeader<Self>,
    children: [Atomic<Self>; 2],
    key: Option<K>,
    value: Option<V>,
    weight: u32,
}

impl<K: Send + Sync + 'static, V: Send + Sync + 'static> Record for Node<K, V> {
    const ARITY: usize = 2;
    #[inline]
    fn header(&self) -> &RecordHeader<Self> {
        &self.header
    }
    #[inline]
    fn child(&self, i: usize) -> &Atomic<Self> {
        &self.children[i]
    }
}

impl<K: Send + Sync + 'static, V: Send + Sync + 'static> Node<K, V> {
    /// A leaf holding `key` (or the sentinel `∞` if `None`).
    ///
    /// Allocated through the thread-local record cache
    /// ([`llxscx::slab`]): updates replace nodes constantly, and the
    /// cache turns those aligned allocate/free pairs into pointer pushes.
    pub fn leaf(key: Option<K>, value: Option<V>, weight: u32) -> Owned<Self> {
        llxscx::slab::alloc_owned(Node {
            header: RecordHeader::new(),
            children: [Atomic::null(), Atomic::null()],
            key,
            value,
            weight,
        })
    }

    /// An internal routing node with the given children.
    ///
    /// The children are stored with `Release` ordering, but the node is only
    /// published by the SCX's update CAS (SeqCst), which is what makes it
    /// visible to other threads.
    pub fn internal(
        key: Option<K>,
        weight: u32,
        left: Shared<'_, Self>,
        right: Shared<'_, Self>,
    ) -> Owned<Self> {
        let node = Node {
            header: RecordHeader::new(),
            children: [Atomic::null(), Atomic::null()],
            key,
            value: None,
            weight,
        };
        node.children[0].store(left, Ordering::Release);
        node.children[1].store(right, Ordering::Release);
        llxscx::slab::alloc_owned(node)
    }

    /// The node's key; `None` is the sentinel `∞`.
    #[inline]
    pub fn key(&self) -> Option<&K> {
        self.key.as_ref()
    }

    /// The value stored in a leaf (`None` for internal and sentinel nodes).
    #[inline]
    pub fn value(&self) -> Option<&V> {
        self.value.as_ref()
    }

    /// The node's weight (0 = red, 1 = black, >1 = overweight).
    #[inline]
    pub fn weight(&self) -> u32 {
        self.weight
    }

    /// Whether this node carries the sentinel key `∞`.
    #[inline]
    pub fn is_sentinel_key(&self) -> bool {
        self.key.is_none()
    }

    /// `true` iff a search for `probe` descends into the left child:
    /// the BST routing rule `probe < node.key`, where `∞` compares greater
    /// than every key.
    #[inline]
    pub fn route_left<Q>(&self, probe: &Q) -> bool
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        match &self.key {
            None => true,
            Some(k) => probe < k.borrow(),
        }
    }

    /// Whether the node's key equals `probe` (the sentinel never does).
    #[inline]
    pub fn key_eq<Q>(&self, probe: &Q) -> bool
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        match &self.key {
            None => false,
            Some(k) => k.borrow() == probe,
        }
    }

    /// Loads the left (`0`) or right (`1`) child — the access pattern of
    /// the paper's read-only searches.
    ///
    /// Memory-ordering audit: `Acquire`, not `SeqCst`. A search only needs
    /// property C3 (§5.4): every child pointer it follows leads to a node
    /// that was fully initialized before it was published. Children are
    /// published either at node construction (happens-before the SCX update
    /// CAS that publishes the node, which is `SeqCst` and hence a release)
    /// or by the update CAS itself; an acquiring load of the child pointer
    /// therefore sees the pointee's initialization. No search decision
    /// depends on a total order of child loads across different nodes.
    #[inline]
    pub fn read_child<'g>(&self, dir: usize, guard: &'g Guard) -> Shared<'g, Self> {
        self.children[dir].load(Ordering::Acquire, guard)
    }

    /// Whether this node is a leaf. Leaves are created with both children
    /// null and children of internal nodes are never set to null, so reading
    /// one child suffices.
    #[inline]
    pub fn is_leaf(&self, guard: &Guard) -> bool {
        self.read_child(0, guard).is_null()
    }
}

/// Compares an optional (sentinel-aware) key with a probe key for routing:
/// `None` (= `∞`) is greater than everything.
pub fn probe_lt_key<K: Ord>(probe: &K, key: Option<&K>) -> bool {
    match key {
        None => true,
        Some(k) => probe < k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llxscx::pin;

    #[test]
    fn sentinel_routing() {
        let guard = &pin();
        let leaf = Node::<u64, u64>::leaf(None, None, 1).into_shared(guard);
        // SAFETY: freshly allocated leaf; never shared.
        let n = unsafe { leaf.deref() };
        assert!(n.route_left(&u64::MAX));
        assert!(!n.key_eq(&0));
        assert!(n.is_sentinel_key());
        assert!(n.is_leaf(guard));
        // SAFETY: test-local node; disposed exactly once.
        unsafe { llxscx::reclaim::dispose_record(leaf.as_raw()) };
    }

    #[test]
    fn leaf_vs_internal() {
        let guard = &pin();
        let a = Node::leaf(Some(1u64), Some(10u64), 1).into_shared(guard);
        let b = Node::leaf(Some(2u64), Some(20u64), 1).into_shared(guard);
        let p = Node::internal(Some(2u64), 1, a, b).into_shared(guard);
        // SAFETY: freshly allocated internal node; never shared.
        let pn = unsafe { p.deref() };
        assert!(!pn.is_leaf(guard));
        assert_eq!(pn.read_child(0, guard), a);
        assert_eq!(pn.read_child(1, guard), b);
        assert!(pn.route_left(&1));
        assert!(!pn.route_left(&2));
        // SAFETY: test-local nodes; each disposed exactly once.
        unsafe {
            llxscx::reclaim::dispose_record(a.as_raw());
            llxscx::reclaim::dispose_record(b.as_raw());
            llxscx::reclaim::dispose_record(p.as_raw());
        }
    }
}
