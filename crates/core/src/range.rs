//! VLX-validated range scans over leaf-oriented template trees.
//!
//! The scan generalizes the adjacent-leaf queries of §5.5 from "the next
//! leaf" to "every leaf in a key interval": one attempt LLXes every internal
//! node whose key interval intersects the query, reads the in-range leaves
//! through those snapshots, and then issues a single [`vlx`] over all the
//! handles. A successful VLX proves no visited node changed since its LLX,
//! so the collected leaves are exactly the dictionary's contents in the
//! interval at the VLX's linearization point — an atomic snapshot obtained
//! without freezing a single record or slowing any writer down.
//!
//! On interference (an LLX that fails or finds a finalized node, or a failed
//! final VLX) the attempt reports failure and the caller falls back to a
//! full re-traversal from the entry point; there is no partial revalidation.
//! The retry loop is lock-free by the usual helping argument: every failure
//! is caused by a concurrent SCX that committed or is being helped to a
//! terminal state, so system-wide progress is preserved. A bounded variant
//! ([`ChromaticTree::range_attempts`](crate::ChromaticTree::range_attempts))
//! surfaces the retry budget to callers that prefer `None` over waiting out
//! a write-heavy phase.
//!
//! Why leaves are not LLXed: leaf keys and values are immutable, and any
//! update that inserts, removes or replaces a leaf must swing a child
//! pointer of a *visited internal node* — which requires freezing that node
//! and therefore changes its `info` word, failing the VLX. Validating the
//! internal nodes alone certifies the leaves for free and halves the handle
//! count of a scan.

use std::ops::{Bound, RangeBounds};

use llxscx::epoch::{Guard, Shared};
use llxscx::{llx, vlx, Llx, LlxHandle};

use crate::node::Node;

/// Whether the query interval can contain a key strictly below `k` — i.e.
/// whether a scan must descend into a left subtree (all keys `< k`).
#[inline]
fn may_contain_below<K: Ord, B: RangeBounds<K>>(bounds: &B, k: &K) -> bool {
    match bounds.start_bound() {
        Bound::Unbounded => true,
        Bound::Included(lo) | Bound::Excluded(lo) => lo < k,
    }
}

/// Whether the query interval can contain a key at or above `k` — i.e.
/// whether a scan must descend into a right subtree (all keys `>= k`).
#[inline]
fn may_contain_at_or_above<K: Ord, B: RangeBounds<K>>(bounds: &B, k: &K) -> bool {
    match bounds.end_bound() {
        Bound::Unbounded => true,
        Bound::Included(hi) => hi >= k,
        Bound::Excluded(hi) => hi > k,
    }
}

/// One attempt at an atomic range scan from `entry` (the never-removed
/// sentinel of a leaf-oriented template tree — chromatic, NbBST or relaxed
/// AVL, which share [`Node`] and its sentinel layout).
///
/// Returns `None` when a concurrent update interfered; the caller should
/// re-traverse. `Some(pairs)` is sorted by key, duplicate-free, and is the
/// exact interval content at the final VLX (the query's linearization
/// point).
///
/// # Example
///
/// One attempt over a hand-built leaf-oriented tree (entry sentinel →
/// second `∞` sentinel → one routing node over two leaves — the shape of
/// paper Fig. 10 after two inserts). At quiescence the attempt must
/// validate on the first try:
///
/// ```
/// use nbtree::node::Node;
/// use nbtree::try_range_scan;
/// use llxscx::{pin, Shared};
///
/// let guard = &pin();
/// let l10 = Node::leaf(Some(10u64), Some("a"), 1).into_shared(guard);
/// let l20 = Node::leaf(Some(20u64), Some("b"), 1).into_shared(guard);
/// let inner = Node::internal(Some(20), 1, l10, l20).into_shared(guard);
/// let inf = Node::leaf(None, None, 1).into_shared(guard);
/// let sentinel = Node::internal(None, 1, inner, inf).into_shared(guard);
/// let entry = Node::internal(None, 1, sentinel, Shared::null()).into_shared(guard);
///
/// let snap = try_range_scan(entry, &(5u64..=25), guard)
///     .expect("no concurrent updates: the VLX must validate");
/// assert_eq!(snap, vec![(10, "a"), (20, "b")]);
/// // Pruning on the routing key keeps out-of-interval leaves unvisited.
/// assert_eq!(try_range_scan(entry, &(..10u64), guard).unwrap(), vec![]);
/// ```
///
/// (`ChromaticTree::range` wraps this in the retry loop; the example
/// leaks its six nodes, which is fine for a doctest process.)
pub fn try_range_scan<'g, K, V, B>(
    entry: Shared<'g, Node<K, V>>,
    bounds: &B,
    guard: &'g Guard,
) -> Option<Vec<(K, V)>>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    B: RangeBounds<K>,
{
    let mut handles: Vec<LlxHandle<'g, Node<K, V>>> = Vec::with_capacity(32);
    let mut out: Vec<(K, V)> = Vec::new();
    // Explicit DFS stack (right pushed first so leaves emit in key order);
    // iterative to stay safe on degenerate NbBST shapes of depth Θ(n).
    let mut stack: Vec<Shared<'g, Node<K, V>>> = vec![entry];
    while let Some(n) = stack.pop() {
        if n.is_null() {
            // The entry sentinel's unused right child.
            continue;
        }
        // SAFETY: reached from `entry` under `guard` (property C3); nodes
        // stay allocated for the guard's lifetime.
        let n_ref = unsafe { n.deref() };
        if n_ref.is_leaf(guard) {
            // Read through the parent's validated snapshot: leaf contents
            // are immutable, so no LLX is needed (see module docs).
            if let (Some(k), Some(v)) = (n_ref.key(), n_ref.value()) {
                if bounds.contains(k) {
                    out.push((k.clone(), v.clone()));
                }
            }
            continue;
        }
        let h = match llx(n, guard) {
            Llx::Snapshot(h) => h,
            // Frozen or already removed: this attempt cannot linearize.
            _ => return None,
        };
        handles.push(h);
        match h.node_ref().key() {
            // Sentinel ∞ internal node (entry or second sentinel): the
            // dictionary hangs off the left child; the right child is the
            // ∞ leaf (or null at entry) and can never hold a query key.
            None => stack.push(h.left()),
            Some(k) => {
                // Prune on the node's immutable routing key. A pruned
                // subtree can only hold keys outside the query (left: all
                // `< k`, right: all `>= k`), and the pruning node itself is
                // VLX-validated, so pruning stays sound at linearization.
                if may_contain_at_or_above(bounds, k) {
                    stack.push(h.right());
                }
                if may_contain_below(bounds, k) {
                    stack.push(h.left());
                }
            }
        }
    }
    vlx(&handles, guard).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChromaticTree;

    #[test]
    fn bound_helpers() {
        assert!(may_contain_below(&(..), &5));
        assert!(may_contain_below(&(3..), &5));
        assert!(!may_contain_below(&(5..), &5));
        assert!(!may_contain_below(&(7..), &5));
        assert!(may_contain_at_or_above(&(..), &5));
        assert!(may_contain_at_or_above(&(..=5), &5));
        assert!(!may_contain_at_or_above(&(..5), &5));
        assert!(may_contain_at_or_above(&(..9), &5));
    }

    #[test]
    fn range_matches_collect_filter() {
        let t = ChromaticTree::new();
        for k in 0..200u64 {
            t.insert(k * 3 % 199, k);
        }
        let all = t.collect();
        for (lo, hi) in [(0u64, 0u64), (10, 50), (0, 198), (150, 10_000)] {
            let expect: Vec<_> = all
                .iter()
                .filter(|(k, _)| (lo..=hi).contains(k))
                .cloned()
                .collect();
            assert_eq!(t.range(lo..=hi), expect, "[{lo}, {hi}]");
        }
        // Half-open, exclusive and unbounded flavors.
        assert_eq!(
            t.range(10..20),
            all.iter()
                .filter(|(k, _)| (10..20).contains(k))
                .cloned()
                .collect::<Vec<_>>()
        );
        assert_eq!(t.range(..), all);
        use std::ops::Bound;
        assert_eq!(
            t.range((Bound::Excluded(10), Bound::Unbounded)),
            all.iter()
                .filter(|(k, _)| *k > 10)
                .cloned()
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn range_on_empty_tree() {
        let t = ChromaticTree::<u64, u64>::new();
        assert!(t.range(..).is_empty());
        assert!(t.range(5..=100).is_empty());
    }
}
