//! # Non-blocking trees from the tree update template
//!
//! A Rust reproduction of **"A General Technique for Non-blocking Trees"**
//! (Brown, Ellen, Ruppert — PPoPP 2014). The paper contributes:
//!
//! 1. a **tree update template** ([`template`]) that turns any down-tree
//!    data structure into a provably linearizable, non-blocking one, built
//!    on the LLX/SCX/VLX primitives (crate [`llxscx`]);
//! 2. a **non-blocking chromatic tree** ([`ChromaticTree`]) — the first
//!    provably correct non-blocking balanced BST with fine-grained
//!    synchronization — with height `O(c + log n)` for `n` keys and `c`
//!    in-progress updates.
//!
//! The ordered-dictionary API: [`ChromaticTree::get`],
//! [`insert`](ChromaticTree::insert), [`remove`](ChromaticTree::remove),
//! [`successor`](ChromaticTree::successor),
//! [`predecessor`](ChromaticTree::predecessor),
//! [`range`](ChromaticTree::range) — all linearizable, all lock-free;
//! `get` uses only plain reads, and `range` takes an atomic multi-key
//! snapshot through a VLX-validated scan (the [`range`] module) without
//! freezing records or slowing writers.
//!
//! ```
//! use nbtree::ChromaticTree;
//!
//! let tree = ChromaticTree::new();
//! tree.insert(10, "ten");
//! tree.insert(20, "twenty");
//! assert_eq!(tree.successor(&10), Some((20, "twenty")));
//! assert_eq!(tree.remove(&10), Some("ten"));
//!
//! // The "Chromatic6" variant of the paper (§5.6): tolerate up to six
//! // violations on a search path before rebalancing.
//! let relaxed = ChromaticTree::with_allowed_violations(6);
//! relaxed.insert(1, 1);
//! ```

#![warn(missing_docs)]

pub mod chromatic;
pub mod node;
pub mod range;
pub mod template;

pub use chromatic::stats::STEP_NAMES;
pub use chromatic::{AuditReport, ChromaticTree, Stats};
pub use range::try_range_scan;
pub use template::{tree_update, Interfered, TemplateStep};
