//! # Lock-free skip list
//!
//! A Harris–Michael style lock-free skip list ordered map, the stand-in for
//! the Java Class Library's `ConcurrentSkipListMap` ("SkipList" in the
//! paper's Figure 8). Deleted nodes are *marked* by tagging their `next`
//! pointers (bit 0 of the pointer word) and then physically unlinked by
//! subsequent `find` traversals; memory is reclaimed with crossbeam-epoch.
//!
//! Updates are simple single-CAS events at the bottom level (towers above
//! are best-effort), which is why skip lists scale so well on update-heavy
//! workloads — the effect the paper observes under high contention.

#![warn(missing_docs)]

use std::sync::atomic::Ordering;

use crossbeam_epoch::{Atomic, Guard, Owned, Shared};
use llxscx::guard_cache::with_guard;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::cell::RefCell;

const MAX_LEVEL: usize = 20;

struct SkipNode<K, V> {
    key: Option<K>, // None = head sentinel (−∞)
    value: Option<V>,
    next: Vec<Atomic<SkipNode<K, V>>>,
}

impl<K, V> SkipNode<K, V> {
    fn height(&self) -> usize {
        self.next.len()
    }
}

/// A concurrent lock-free ordered map backed by a skip list.
///
/// ```
/// let m = nbskiplist::SkipListMap::new();
/// m.insert(1, "one");
/// assert_eq!(m.get(&1), Some("one"));
/// ```
pub struct SkipListMap<K, V> {
    head: Atomic<SkipNode<K, V>>,
}

// SAFETY: shared state behind epoch-managed atomics.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for SkipListMap<K, V> {}
// SAFETY: same argument as `Send` — all shared mutation goes through the
// epoch-managed atomic links.
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for SkipListMap<K, V> {}

thread_local! {
    static LEVEL_RNG: RefCell<SmallRng> = RefCell::new(SmallRng::from_entropy());
}

fn random_height() -> usize {
    LEVEL_RNG.with(|r| {
        let mut h = 1;
        let mut rng = r.borrow_mut();
        while h < MAX_LEVEL && rng.gen_bool(0.5) {
            h += 1;
        }
        h
    })
}

/// The result of a `find`: predecessor and successor at every level, with
/// marked nodes physically unlinked along the way.
struct FindResult<'g, K, V> {
    preds: [Shared<'g, SkipNode<K, V>>; MAX_LEVEL],
    succs: [Shared<'g, SkipNode<K, V>>; MAX_LEVEL],
    /// The bottom-level successor if it carries exactly `key`.
    found: Option<Shared<'g, SkipNode<K, V>>>,
}

impl<K, V> SkipListMap<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// An empty map.
    pub fn new() -> Self {
        let head = SkipNode {
            key: None,
            value: None,
            next: (0..MAX_LEVEL).map(|_| Atomic::null()).collect(),
        };
        SkipListMap {
            head: Atomic::from(Owned::new(head)),
        }
    }

    fn head<'g>(&self, guard: &'g Guard) -> Shared<'g, SkipNode<K, V>> {
        // SEQCST: pairs with the marking CASes' total order.
        self.head.load(Ordering::SeqCst, guard)
    }

    /// Harris–Michael find with physical unlinking of marked nodes.
    /// Restarts internally when a CAS to unlink fails.
    fn find<'g>(&self, key: &K, guard: &'g Guard) -> FindResult<'g, K, V> {
        'retry: loop {
            let mut preds = [Shared::null(); MAX_LEVEL];
            let mut succs = [Shared::null(); MAX_LEVEL];
            let head = self.head(guard);
            let mut pred = head;
            for level in (0..MAX_LEVEL).rev() {
                // SAFETY: nodes reached via the list under `guard`.
                let mut curr = unsafe { pred.deref() }.next[level]
                    // SEQCST: pairs with the marking CASes' total order.
                    .load(Ordering::SeqCst, guard)
                    .with_tag(0);
                loop {
                    if curr.is_null() {
                        break;
                    }
                    // SAFETY: `curr` is non-null (loop condition) and was read from a live link
                    // under `guard`; unlinked nodes are epoch-retired, not freed.
                    let curr_ref = unsafe { curr.deref() };
                    // SEQCST: pairs with the marking CASes' total order.
                    let succ = curr_ref.next[level].load(Ordering::SeqCst, guard);
                    if succ.tag() == 1 {
                        // curr is marked: unlink it at this level.
                        // SAFETY: `pred` was either the head sentinel or a node reached under
                        // `guard` this traversal; both stay allocated while pinned.
                        let unlinked = unsafe { pred.deref() }.next[level]
                            // SEQCST: mark/link CASes must totally order across levels (Harris–Michael).
                            .compare_exchange(
                                curr.with_tag(0),
                                succ.with_tag(0),
                                Ordering::SeqCst,
                                Ordering::SeqCst,
                                guard,
                            )
                            .is_ok();
                        if !unlinked {
                            continue 'retry;
                        }
                        if level == 0 {
                            // Fully unlinked at the bottom: retire. Towers
                            // above were unlinked first (find descends),
                            // and any remaining links are cleaned by other
                            // finds before they can be traversed... they
                            // can still be traversed, which is why the
                            // retirement is epoch-deferred.
                            // SAFETY: the CAS above removed the only level-`level` link to `curr`;
                            // level 0 is the last unlink, after which no new traversal can reach it.
                            unsafe {
                                guard.defer_destroy(curr);
                            }
                        }
                        curr = succ.with_tag(0);
                        continue;
                    }
                    // Unmarked: check ordering.
                    match curr_ref.key.as_ref() {
                        Some(k) if k < key => {
                            pred = curr;
                            curr = succ.with_tag(0);
                        }
                        _ => break,
                    }
                }
                preds[level] = pred;
                succs[level] = curr;
            }
            let found = (!succs[0].is_null()
                // SAFETY: `succs[0]` is non-null (checked) and was reached under `guard`.
                && unsafe { succs[0].deref() }.key.as_ref() == Some(key))
            .then_some(succs[0]);
            return FindResult {
                preds,
                succs,
                found,
            };
        }
    }

    /// Looks up `key` with a wait-free traversal (no unlinking).
    pub fn get(&self, key: &K) -> Option<V> {
        with_guard(|guard| {
            let mut pred = self.head(guard);
            let mut result = None;
            for level in (0..MAX_LEVEL).rev() {
                // SAFETY: list nodes under `guard`.
                let mut curr = unsafe { pred.deref() }.next[level]
                    // SEQCST: pairs with the marking CASes' total order.
                    .load(Ordering::SeqCst, guard)
                    .with_tag(0);
                while !curr.is_null() {
                    // SAFETY: `curr` is non-null (loop condition) and alive under `guard`.
                    let curr_ref = unsafe { curr.deref() };
                    // SEQCST: pairs with the marking CASes' total order.
                    let succ = curr_ref.next[level].load(Ordering::SeqCst, guard);
                    let marked = succ.tag() == 1;
                    match curr_ref.key.as_ref() {
                        Some(k) if k < key => {
                            pred = curr;
                            curr = succ.with_tag(0);
                        }
                        Some(k) if k == key && !marked => {
                            result = curr_ref.value.clone();
                            return result;
                        }
                        _ => break,
                    }
                }
            }
            result
        })
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `key → value`. If the key is present, the *node is replaced*
    /// (marked and re-inserted), returning the old value.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        with_guard(|guard| {
            // The value displaced by this insert: set when we win the mark race
            // on an existing node for the key (delete + insert = replace).
            let mut previous: Option<V> = None;
            loop {
                let f = self.find(&key, guard);
                if let Some(existing) = f.found {
                    // Presence: replace by delete + retry-insert, which keeps
                    // the node immutable (values never change in place).
                    // SAFETY: `existing` came from `find` under `guard`; marked-but-unlinked
                    // nodes remain allocated until every guard drops.
                    let old = unsafe { existing.deref() }.value.clone();
                    if self.mark_node(existing, guard) {
                        previous = old;
                        // Physically unlink before inserting the replacement.
                        let _ = self.find(&key, guard);
                    }
                    // (On a lost race the key may reappear; re-find either way.)
                    continue;
                }
                let height = random_height();
                let node = Owned::new(SkipNode {
                    key: Some(key.clone()),
                    value: Some(value.clone()),
                    next: (0..height).map(|_| Atomic::null()).collect(),
                });
                for (level, nxt) in node.next.iter().enumerate().take(height) {
                    nxt.store(f.succs[level], Ordering::Relaxed);
                }
                let node = node.into_shared(guard);
                // Linearization: CAS at the bottom level.
                // SAFETY: preds are list nodes under `guard`.
                let bottom = unsafe { f.preds[0].deref() };
                if bottom.next[0]
                    // SEQCST: mark/link CASes must totally order across levels (Harris–Michael).
                    .compare_exchange(f.succs[0], node, Ordering::SeqCst, Ordering::SeqCst, guard)
                    .is_err()
                {
                    // SAFETY: never published.
                    unsafe { drop(node.into_owned()) };
                    continue;
                }
                // Best-effort tower construction.
                for level in 1..height {
                    loop {
                        let succ =
                            // SAFETY: `node` is this insert's own allocation, published under `guard`.
                            // SEQCST: pairs with the marking CASes' total order.
                            unsafe { node.deref() }.next[level].load(Ordering::SeqCst, guard);
                        if succ.tag() == 1 {
                            return previous; // concurrently deleted; done
                        }
                        let pred = f.preds[level];
                        // SAFETY: `preds[level]` was reached by `find` under `guard`.
                        if unsafe { pred.deref() }.next[level]
                            // SEQCST: mark/link CASes must totally order across levels (Harris–Michael).
                            .compare_exchange(
                                succ.with_tag(0),
                                node,
                                Ordering::SeqCst,
                                Ordering::SeqCst,
                                guard,
                            )
                            .is_ok()
                        {
                            break;
                        }
                        // Re-find to refresh preds/succs for this level.
                        let f2 = self.find(&key, guard);
                        if f2.found != Some(node) {
                            return previous; // deleted meanwhile
                        }
                        let expected = f2.succs[level];
                        // SAFETY: `node` is this insert's own allocation, alive under `guard`.
                        if unsafe { node.deref() }.next[level]
                            // SEQCST: mark/link CASes must totally order across levels (Harris–Michael).
                            .compare_exchange(
                                succ.with_tag(0),
                                expected,
                                Ordering::SeqCst,
                                Ordering::SeqCst,
                                guard,
                            )
                            .is_err()
                        {
                            return previous; // marked underneath us
                        }
                        // SAFETY: fresh predecessor from the re-run `find`, reached under `guard`.
                        if unsafe { f2.preds[level].deref() }.next[level]
                            // SEQCST: mark/link CASes must totally order across levels (Harris–Michael).
                            .compare_exchange(
                                expected,
                                node,
                                Ordering::SeqCst,
                                Ordering::SeqCst,
                                guard,
                            )
                            .is_ok()
                        {
                            break;
                        }
                    }
                }
                return previous;
            }
        })
    }

    /// Marks every level of `node`, bottom last. Returns `true` iff this
    /// call won the bottom-level mark (the linearization of the delete).
    fn mark_node<'g>(&self, node: Shared<'g, SkipNode<K, V>>, guard: &'g Guard) -> bool {
        // SAFETY: `node` reached via the list under `guard`.
        let node_ref = unsafe { node.deref() };
        let h = node_ref.height();
        for level in (1..h).rev() {
            loop {
                // SEQCST: pairs with the marking CASes' total order.
                let succ = node_ref.next[level].load(Ordering::SeqCst, guard);
                if succ.tag() == 1 {
                    break;
                }
                if node_ref.next[level]
                    // SEQCST: mark/link CASes must totally order across levels (Harris–Michael).
                    .compare_exchange(
                        succ,
                        succ.with_tag(1),
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                        guard,
                    )
                    .is_ok()
                {
                    break;
                }
            }
        }
        loop {
            // SEQCST: pairs with the marking CASes' total order.
            let succ = node_ref.next[0].load(Ordering::SeqCst, guard);
            if succ.tag() == 1 {
                return false; // someone else's delete linearized first
            }
            if node_ref.next[0]
                // SEQCST: mark/link CASes must totally order across levels (Harris–Michael).
                .compare_exchange(
                    succ,
                    succ.with_tag(1),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                    guard,
                )
                .is_ok()
            {
                return true;
            }
        }
    }

    /// Removes `key`; returns its value if present.
    pub fn remove(&self, key: &K) -> Option<V> {
        with_guard(|guard| {
            loop {
                let f = self.find(key, guard);
                let node = f.found?;
                // SAFETY: `find` returned `node` non-null under `guard`.
                let value = unsafe { node.deref() }.value.clone();
                if self.mark_node(node, guard) {
                    // Physically unlink (also retires the node).
                    let _ = self.find(key, guard);
                    return value;
                }
                // Lost the race; the key may have been re-inserted — retry.
            }
        })
    }

    /// Smallest key strictly greater than `key` (with its value).
    pub fn successor(&self, key: &K) -> Option<(K, V)> {
        with_guard(|guard| {
            let f = self.find(key, guard);
            let mut cur = f.succs[0];
            loop {
                if cur.is_null() {
                    return None;
                }
                // SAFETY: list node under `guard`.
                let n = unsafe { cur.deref() };
                // SEQCST: pairs with the marking CASes' total order.
                let succ = n.next[0].load(Ordering::SeqCst, guard);
                let k = n.key.as_ref().expect("non-head node has a key");
                if succ.tag() == 0 && k > key {
                    return Some((k.clone(), n.value.clone().unwrap()));
                }
                cur = succ.with_tag(0);
            }
        })
    }

    /// Largest key strictly smaller than `key` (with its value).
    ///
    /// Skip lists do not support backwards traversal; like
    /// `ConcurrentSkipListMap`, this re-descends from the head.
    pub fn predecessor(&self, key: &K) -> Option<(K, V)> {
        with_guard(|guard| {
            let f = self.find(key, guard);
            let pred = f.preds[0];
            // SAFETY: list node under `guard`.
            let n = unsafe { pred.deref() };
            n.key
                .as_ref()
                .map(|k| (k.clone(), n.value.clone().unwrap()))
        })
    }

    /// All pairs with keys in `bounds`, sorted: descend to the first
    /// candidate with `find`, then walk the bottom level, skipping marked
    /// nodes, until the end bound is passed.
    ///
    /// Like `ConcurrentSkipListMap`'s submap iteration this is **not** an
    /// atomic snapshot: each key's presence is individually linearizable
    /// (the bottom-level `next` read), but the scan as a whole has no single
    /// linearization point. It is still sorted and duplicate-free, never
    /// reports a key that was never present, and never misses a key that
    /// was present for the scan's whole duration.
    pub fn range<B: std::ops::RangeBounds<K>>(&self, bounds: B) -> Vec<(K, V)> {
        use std::ops::Bound;
        with_guard(|guard| {
            let mut out = Vec::new();
            // Position at the first node with key >= the start bound; an
            // unbounded start walks from the head sentinel.
            let mut cur = match bounds.start_bound() {
                // SAFETY: the head sentinel is allocated in `new` and never reclaimed.
                Bound::Unbounded => unsafe { self.head(guard).deref() }.next[0]
                    // SEQCST: pairs with the marking CASes' total order.
                    .load(Ordering::SeqCst, guard)
                    .with_tag(0),
                Bound::Included(lo) | Bound::Excluded(lo) => self.find(lo, guard).succs[0],
            };
            while !cur.is_null() {
                // SAFETY: list node under `guard`.
                let n = unsafe { cur.deref() };
                // SEQCST: pairs with the marking CASes' total order.
                let succ = n.next[0].load(Ordering::SeqCst, guard);
                let k = n.key.as_ref().expect("non-head node has a key");
                match bounds.end_bound() {
                    Bound::Included(hi) if k > hi => break,
                    Bound::Excluded(hi) if k >= hi => break,
                    _ => {}
                }
                // tag == 1 means logically deleted; skip. An Excluded start
                // bound also skips the exact boundary key `find` may return.
                if succ.tag() == 0 && bounds.contains(k) {
                    out.push((k.clone(), n.value.clone().expect("data node has a value")));
                }
                cur = succ.with_tag(0);
            }
            out
        })
    }

    /// Number of keys (O(n) snapshot).
    pub fn len(&self) -> usize {
        with_guard(|guard| {
            let mut count = 0;
            // SAFETY: the head sentinel is allocated in `new` and never reclaimed.
            let mut cur = unsafe { self.head(guard).deref() }.next[0]
                // SEQCST: pairs with the marking CASes' total order.
                .load(Ordering::SeqCst, guard)
                .with_tag(0);
            while !cur.is_null() {
                // SAFETY: `cur` is non-null (loop condition) and alive under `guard`.
                let n = unsafe { cur.deref() };
                // SEQCST: pairs with the marking CASes' total order.
                let succ = n.next[0].load(Ordering::SeqCst, guard);
                if succ.tag() == 0 {
                    count += 1;
                }
                cur = succ.with_tag(0);
            }
            count
        })
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sorted snapshot of the contents.
    pub fn collect(&self) -> Vec<(K, V)> {
        with_guard(|guard| {
            let mut out = Vec::new();
            // SAFETY: the head sentinel is allocated in `new` and never reclaimed.
            let mut cur = unsafe { self.head(guard).deref() }.next[0]
                // SEQCST: pairs with the marking CASes' total order.
                .load(Ordering::SeqCst, guard)
                .with_tag(0);
            while !cur.is_null() {
                // SAFETY: `cur` is non-null (loop condition) and alive under `guard`.
                let n = unsafe { cur.deref() };
                // SEQCST: pairs with the marking CASes' total order.
                let succ = n.next[0].load(Ordering::SeqCst, guard);
                if succ.tag() == 0 {
                    out.push((n.key.clone().unwrap(), n.value.clone().unwrap()));
                }
                cur = succ.with_tag(0);
            }
            out
        })
    }
}

impl<K, V> Default for SkipListMap<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> Drop for SkipListMap<K, V> {
    fn drop(&mut self) {
        // SAFETY: exclusive `&mut self` in Drop — no concurrent threads, so the
        // unprotected guard cannot race with a reader.
        let guard = unsafe { crossbeam_epoch::unprotected() };
        // SEQCST: teardown/cold path; kept uniform with the entry's accesses.
        let mut cur = self.head.load(Ordering::SeqCst, guard);
        while !cur.is_null() {
            // SAFETY: exclusive access; bottom level links every node.
            // SEQCST: teardown/cold path; kept uniform with the entry's accesses.
            let next = unsafe { cur.deref() }.next[0].load(Ordering::SeqCst, guard);
            // SAFETY: every node is owned by the list and dropped exactly once here.
            unsafe { drop(cur.into_owned()) };
            cur = next.with_tag(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    #[test]
    fn basics() {
        let m = SkipListMap::new();
        assert_eq!(m.get(&3), None);
        assert_eq!(m.insert(3, 30), None);
        assert_eq!(m.get(&3), Some(30));
        assert_eq!(m.insert(3, 31), Some(30));
        assert_eq!(m.get(&3), Some(31));
        assert_eq!(m.remove(&3), Some(31));
        assert_eq!(m.remove(&3), None);
        assert!(m.is_empty());
    }

    #[test]
    fn random_against_model() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(12);
        let m = SkipListMap::new();
        let mut model = BTreeMap::new();
        for step in 0..10_000u64 {
            let k = rng.gen_range(0..400u64);
            match rng.gen_range(0..3) {
                0 => assert_eq!(m.insert(k, step), model.insert(k, step)),
                1 => assert_eq!(m.remove(&k), model.remove(&k)),
                _ => assert_eq!(m.get(&k), model.get(&k).copied()),
            }
        }
        assert_eq!(m.collect(), model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn successor_matches_model() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let m = SkipListMap::new();
        let mut model = BTreeMap::new();
        for _ in 0..2000 {
            let k = rng.gen_range(0..256u64);
            if rng.gen_bool(0.7) {
                m.insert(k, k);
                model.insert(k, k);
            } else {
                m.remove(&k);
                model.remove(&k);
            }
            let probe = rng.gen_range(0..256u64);
            let expect = model.range(probe + 1..).next().map(|(k, v)| (*k, *v));
            assert_eq!(m.successor(&probe), expect);
        }
    }

    #[test]
    fn range_matches_model() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        let m = SkipListMap::new();
        let mut model = BTreeMap::new();
        for step in 0..2000u64 {
            let k = rng.gen_range(0..256u64);
            if rng.gen_bool(0.7) {
                m.insert(k, step);
                model.insert(k, step);
            } else {
                m.remove(&k);
                model.remove(&k);
            }
            let lo = rng.gen_range(0..256u64);
            let hi = lo + rng.gen_range(0..64u64);
            let expect: Vec<_> = model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
            assert_eq!(m.range(lo..=hi), expect, "[{lo}, {hi}]");
            // Exclusive and half-open flavors.
            let expect_ex: Vec<_> = model.range(lo..hi.max(lo)).map(|(k, v)| (*k, *v)).collect();
            assert_eq!(m.range(lo..hi.max(lo)), expect_ex);
        }
        assert_eq!(m.range(..), model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_stripes() {
        let m = Arc::new(SkipListMap::new());
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    let base = tid * 2000;
                    for i in 0..2000 {
                        assert_eq!(m.insert(base + i, i), None);
                    }
                    for i in (0..2000).step_by(2) {
                        assert_eq!(m.remove(&(base + i)), Some(i));
                    }
                });
            }
        });
        assert_eq!(m.len(), 4 * 1000);
    }

    #[test]
    fn concurrent_shared_contention() {
        let m = Arc::new(SkipListMap::new());
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    use rand::{rngs::StdRng, Rng, SeedableRng};
                    let mut rng = StdRng::seed_from_u64(tid);
                    for i in 0..30_000u64 {
                        let k = rng.gen_range(0..64u64);
                        if i % 2 == 0 {
                            m.insert(k, i);
                        } else {
                            m.remove(&k);
                        }
                    }
                });
            }
        });
        // Sorted, unique keys within range.
        let snap = m.collect();
        for w in snap.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        assert!(snap.iter().all(|(k, _)| *k < 64));
    }
}
