//! # Workload generation and throughput measurement
//!
//! Reproduces the experimental methodology of §6: operation mixes `xi-yd`
//! (x% inserts, y% deletes, rest `get`s), key ranges controlling contention,
//! prefilling to the steady-state expected size, and timed multi-thread
//! trials measuring total throughput.

#![warn(missing_docs)]

pub mod adapters;
pub mod config;
pub mod dist;
pub mod latency;

pub use adapters::{
    make_hybrid, make_map, make_sharded, ConcurrentMap, HopShard, HybridShard, RangeTier, ALL_MAPS,
};
pub use config::SuiteConfig;
pub use dist::{KeyDist, KeySampler};
pub use latency::{Histogram, LatencySummary, OpHistograms, OpKind};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::{rngs::StdRng, Rng, SeedableRng};

/// An operation mix: percentages of inserts, deletes and range scans (the
/// remainder are lookups), plus the *batch* knob. The paper's mixes are
/// 50i-50d, 20i-10d and 0i-0d; range scans and batched execution extend
/// the scenario axis beyond the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mix {
    /// Percent of operations that are `insert`.
    pub inserts: u32,
    /// Percent of operations that are `remove`.
    pub deletes: u32,
    /// Percent of operations that are ordered `range` scans.
    pub ranges: u32,
    /// Width of each range scan in key space: a scan starting at `k`
    /// covers `[k, k + range_width)`. Ignored when `ranges == 0`.
    pub range_width: u64,
    /// Operations per batch. `1` (the default) drives point ops; `n > 1`
    /// makes [`run_trial`] issue the trait-level batch entry points
    /// (`insert_batch` / `remove_batch` / `get_batch`) with `n` uniform
    /// random keys per call, each call counting as `n` operations — so
    /// Mops/s stays comparable with point-op runs. See
    /// [`with_batch`](Mix::with_batch).
    pub batch: u32,
    /// Key clustering within a batch: each random draw yields a *run* of
    /// this many consecutive keys (`base, base+1, …`). `1` (the default)
    /// is the uniform flavor; `r > 1` makes batches land runs of keys on
    /// shared leaves, the shape the chromatic tree's single-SCX run
    /// merging is built for. Ignored when `batch == 1`. See
    /// [`with_run`](Mix::with_run).
    pub run: u32,
    /// Percent of operations that are read-modify-write: a `get` of the
    /// key followed by an `insert` of a derived value, timed and counted
    /// as **one** operation — the canonical counter/accumulator shape.
    /// See [`with_rmw`](Mix::with_rmw) and [`rmw`](Mix::rmw).
    pub rmws: u32,
    /// How keys are drawn from the key range: uniform (the default and
    /// the paper's methodology), zipfian-θ or hot-set. See
    /// [`with_zipf`](Mix::with_zipf) and
    /// [`with_hot_set`](Mix::with_hot_set). The harness pre-generates
    /// per-worker key streams from this distribution before the timing
    /// barrier, so a heavier sampler never runs inside the measured loop.
    pub dist: KeyDist,
}

impl Mix {
    /// The paper's three mixes (no range component, point ops).
    pub const ALL: [Mix; 3] = [
        Mix::updates(50, 50),
        Mix::updates(20, 10),
        Mix::updates(0, 0),
    ];

    /// An update/lookup mix: `inserts`% inserts, `deletes`% removes, the
    /// rest lookups — the paper's `xi-yd` notation.
    pub const fn updates(inserts: u32, deletes: u32) -> Mix {
        assert!(inserts + deletes <= 100, "mix percentages exceed 100");
        Mix {
            inserts,
            deletes,
            ranges: 0,
            range_width: 0,
            batch: 1,
            run: 1,
            rmws: 0,
            dist: KeyDist::Uniform,
        }
    }

    /// A read-modify-write mix: `pct`% RMW ops (lookup + write-back of a
    /// derived value, one timed op), the rest plain lookups — the
    /// counter/accumulator workload (`wm` label segment).
    pub const fn rmw(pct: u32) -> Mix {
        Mix::updates(0, 0).with_rmw(pct)
    }

    /// A scan-heavy mix: 80% ordered range scans of `width` keys under a
    /// light 5i-5d churn — the analytics-over-live-writes workload.
    pub const fn scan_heavy(width: u64) -> Mix {
        Mix::updates(5, 5).with_ranges(80, width)
    }

    /// Converts `pct` of the *lookup* share into read-modify-write ops
    /// (`xi-yd-wm` notation). Incompatible with batched execution: the
    /// trait batch entry points have no RMW flavor.
    pub const fn with_rmw(mut self, pct: u32) -> Mix {
        assert!(
            self.inserts + self.deletes + self.ranges + pct <= 100,
            "mix percentages exceed 100"
        );
        assert!(
            self.batch <= 1 || pct == 0,
            "read-modify-write has no batched entry point; set rmw before batch"
        );
        self.rmws = pct;
        self
    }

    /// Draws keys zipfian with exponent `theta` (`-zT.TT` label suffix):
    /// rank `r` of the scattered popularity order is drawn with
    /// probability ∝ `1/(r+1)^theta`. `theta = 0` is exactly uniform;
    /// YCSB's default hot skew is 0.9; `theta > 1` concentrates most ops
    /// on a handful of keys. Stored in integer percent so `Mix` stays
    /// `Copy + Eq` (θ resolution 0.01).
    pub fn with_zipf(mut self, theta: f64) -> Mix {
        assert!(
            (0.0..=5.0).contains(&theta),
            "zipf theta out of sane range [0, 5]"
        );
        let theta_pct = (theta * 100.0).round() as u32;
        // θ = 0 *is* the uniform distribution; normalize so labels and
        // `Mix` equality don't distinguish two spellings of the same mix.
        self.dist = if theta_pct == 0 {
            KeyDist::Uniform
        } else {
            KeyDist::Zipfian { theta_pct }
        };
        self
    }

    /// Directs `ops_pct`% of operations at a scattered hot set of
    /// `keys_pct`% of the key range (`-hKxO` label suffix) — the
    /// two-temperature alternative to zipf.
    pub fn with_hot_set(mut self, keys_pct: u32, ops_pct: u32) -> Mix {
        assert!(
            (1..=100).contains(&keys_pct) && ops_pct <= 100,
            "hot set: keys_pct in [1,100], ops_pct in [0,100]"
        );
        self.dist = KeyDist::HotSet { keys_pct, ops_pct };
        self
    }

    /// Converts `percent` of the *lookup* share into range scans of
    /// `width` keys each (`xi-yd-zr` notation).
    pub const fn with_ranges(mut self, percent: u32, width: u64) -> Mix {
        assert!(
            self.inserts + self.deletes + self.rmws + percent <= 100,
            "mix percentages exceed 100"
        );
        assert!(width > 0, "range width must be positive");
        assert!(
            self.batch <= 1,
            "range scans have no batched entry point; set ranges before batch"
        );
        self.ranges = percent;
        self.range_width = width;
        self
    }

    /// Batches the mix: [`run_trial`] workers draw one op kind per batch
    /// (with this mix's percentages) and execute it through the
    /// trait-level batch entry points, `n` uniform random keys per call
    /// (`xi-yd-bn` notation). `n = 1` restores point ops. Incompatible
    /// with range scans, which have no batched entry point.
    pub const fn with_batch(mut self, n: u32) -> Mix {
        assert!(n >= 1, "batch size must be at least 1");
        assert!(
            self.ranges == 0 || n == 1,
            "range scans have no batched entry point"
        );
        assert!(
            self.rmws == 0 || n == 1,
            "read-modify-write has no batched entry point"
        );
        self.batch = n;
        self
    }

    /// Clusters batched keys into runs of `r` consecutive keys per random
    /// draw (`xi-yd-bn-cr` notation): a batch of 64 with `r = 8` is eight
    /// random bases, each expanded to `base..base + 8`. This is the
    /// workload axis for the run-merging bulk paths — consecutive keys
    /// share destination leaves, so a merged install replaces `r` SCXs
    /// with one. `r = 1` restores uniform draws. Only meaningful on a
    /// batched mix.
    pub const fn with_run(mut self, r: u32) -> Mix {
        assert!(r >= 1, "run length must be at least 1");
        assert!(
            self.batch > 1 || r == 1,
            "clustered runs only apply to batched mixes; set batch first"
        );
        self.run = r;
        self
    }

    /// `xi-yd` label as used in the paper, extended to `xi-yd-zr` when the
    /// mix includes range scans, `-wm` for a read-modify-write share,
    /// `-bn` when it is batched, `-cr` when the batch keys are clustered
    /// into runs, and a distribution suffix (`-zT.TT` zipfian,
    /// `-hKxO` hot-set) when keys are not uniform (pure-update uniform
    /// point labels are unchanged so existing artifacts keep their keys).
    ///
    /// Allocation-free: formats into a fixed inline buffer. The previous
    /// `String`-returning version was called from measurement loops and put
    /// a heap allocation inside the timed region.
    pub fn label(&self) -> MixLabel {
        let mut out = MixLabel {
            buf: [0; MIX_LABEL_CAP],
            len: 0,
        };
        out.push_u32(self.inserts);
        out.push_byte(b'i');
        out.push_byte(b'-');
        out.push_u32(self.deletes);
        out.push_byte(b'd');
        if self.ranges > 0 {
            out.push_byte(b'-');
            out.push_u32(self.ranges);
            out.push_byte(b'r');
        }
        if self.rmws > 0 {
            out.push_byte(b'-');
            out.push_u32(self.rmws);
            out.push_byte(b'm');
        }
        if self.batch > 1 {
            out.push_byte(b'-');
            out.push_byte(b'b');
            out.push_u32(self.batch);
        }
        if self.run > 1 {
            out.push_byte(b'-');
            out.push_byte(b'c');
            out.push_u32(self.run);
        }
        match self.dist {
            KeyDist::Uniform => {}
            KeyDist::Zipfian { theta_pct } => {
                out.push_byte(b'-');
                out.push_byte(b'z');
                // θ printed with two decimals: `z0.90`, `z1.20`.
                out.push_u32(theta_pct / 100);
                out.push_byte(b'.');
                out.push_byte(b'0' + ((theta_pct / 10) % 10) as u8);
                out.push_byte(b'0' + (theta_pct % 10) as u8);
            }
            KeyDist::HotSet { keys_pct, ops_pct } => {
                out.push_byte(b'-');
                out.push_byte(b'h');
                out.push_u32(keys_pct);
                out.push_byte(b'x');
                out.push_u32(ops_pct);
            }
        }
        out
    }

    /// Expected steady-state size as a fraction of the key range (§6):
    /// 1/2 for 50i-50d (last op on a key equally likely insert or delete),
    /// 2/3 for 20i-10d (insert twice as likely), 1/2 for query-only.
    /// Range scans, like lookups, don't shift the steady state; RMW ops
    /// count as inserts (they always leave the key present). Presence at
    /// steady state is a per-key property of the *mix percentages* alone
    /// — conditioned on "the last update touched key k", the insert/
    /// delete split is the same for hot and cold keys — so the fraction
    /// (and uniform prefilling) is correct under skewed key
    /// distributions too.
    pub fn steady_state_fraction(&self) -> f64 {
        let ins = self.inserts + self.rmws;
        if ins + self.deletes == 0 {
            0.5
        } else {
            ins as f64 / (ins + self.deletes) as f64
        }
    }
}

/// Capacity of [`MixLabel`]'s inline buffer
/// (`"100i-100d-100r-100m-b4294967295-c4294967295-h100x100"` is 52
/// bytes).
const MIX_LABEL_CAP: usize = 56;

/// A stack-allocated `xi-yd` mix label; dereferences to `str`.
#[derive(Clone, Copy)]
pub struct MixLabel {
    buf: [u8; MIX_LABEL_CAP],
    len: usize,
}

impl MixLabel {
    fn push_byte(&mut self, b: u8) {
        self.buf[self.len] = b;
        self.len += 1;
    }

    fn push_u32(&mut self, mut n: u32) {
        let start = self.len;
        loop {
            self.push_byte(b'0' + (n % 10) as u8);
            n /= 10;
            if n == 0 {
                break;
            }
        }
        self.buf[start..self.len].reverse();
    }

    /// The label as a string slice.
    pub fn as_str(&self) -> &str {
        // The buffer only ever holds ASCII digits and `i`/`-`/`d`.
        std::str::from_utf8(&self.buf[..self.len]).expect("mix label is ASCII")
    }
}

impl std::ops::Deref for MixLabel {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl std::fmt::Display for MixLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::fmt::Debug for MixLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

/// Fills `map` with distinct uniform random keys from `[0, range)` until it
/// holds the steady-state expected size for `mix` (the paper prefilled by
/// running the workload until within 5% of that size; direct sampling
/// reaches the same distribution faster).
pub fn prefill(map: &dyn ConcurrentMap, range: u64, mix: Mix, seed: u64) {
    let target = (range as f64 * mix.steady_state_fraction()) as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inserted = 0u64;
    while inserted < target {
        let k = rng.gen_range(0..range);
        if map.insert(k, k).is_none() {
            inserted += 1;
        }
    }
    // Announce quiescence (DEBRA-style): the prefilling thread goes idle
    // next (it sleeps through the trial), and a warm cached epoch guard
    // would stall reclamation for every worker until it woke up.
    llxscx::guard_cache::flush();
}

/// Result of one timed trial.
#[derive(Clone, Copy, Debug)]
pub struct TrialResult {
    /// Total operations completed by all threads.
    pub ops: u64,
    /// Wall-clock duration measured.
    pub elapsed: Duration,
    /// Per-op-kind latency histograms, merged across workers after the
    /// join (each worker records into its own plain `u64` buckets inside
    /// the measured loop — no atomics, no allocation). For batched mixes
    /// the recorded unit is one **batch call**, for point mixes one op.
    pub latency: OpHistograms,
}

impl TrialResult {
    /// Millions of operations per second — the y-axis of Figure 8.
    pub fn mops(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64() / 1e6
    }

    /// All op kinds folded into one latency distribution.
    pub fn latency_merged(&self) -> Histogram {
        self.latency.merged()
    }
}

/// Merges the latency of several trials (all op kinds folded) into the
/// `p50_ns`/`p99_ns`/`p999_ns` summary the bench artifacts embed.
pub fn latency_summary(trials: &[TrialResult]) -> LatencySummary {
    let mut all = Histogram::new();
    for t in trials {
        all.merge(&t.latency_merged());
    }
    LatencySummary::of(&all)
}

/// Length of each worker's pre-generated key/op-kind stream (a power of
/// two so the replay cursor is a mask, not a division). 64 Ki entries ≈
/// 0.5 MiB of keys per worker; a trial longer than the stream replays it
/// from the top, which preserves the distribution exactly.
const STREAM: usize = 1 << 16;
const STREAM_MASK: usize = STREAM - 1;

/// Pre-generates one worker's operation stream: `STREAM` keys drawn from
/// the mix's [`KeyDist`] and `STREAM` op-kind bytes drawn from its
/// percentages. Runs **before** the timing barrier so neither the RNG nor
/// the skew sampler (a binary search for zipfian) ever executes inside
/// the measured loop.
fn pregen_stream(mix: Mix, sampler: &KeySampler, rng: &mut StdRng) -> (Vec<u64>, Vec<u8>) {
    let keys: Vec<u64> = if mix.run <= 1 {
        (0..STREAM).map(|_| sampler.sample(rng)).collect()
    } else {
        // Run flavor: each draw seeds a run of consecutive keys (clamped
        // inside the key range). Runs are laid out in the stream, so in
        // batched trials they may straddle a batch boundary — the
        // clustering statistics per call are unchanged in expectation.
        let r = mix.run as u64;
        let base_lim = range_base_limit(sampler.range(), r);
        let mut v = Vec::with_capacity(STREAM);
        while v.len() < STREAM {
            let base = sampler.sample(rng).min(base_lim - 1);
            let n = (STREAM - v.len()).min(r as usize) as u64;
            v.extend(base..base + n);
        }
        v
    };
    let kinds: Vec<u8> = (0..STREAM)
        .map(|_| {
            let dice = rng.gen_range(0..100);
            if dice < mix.inserts {
                OpKind::Insert as u8
            } else if dice < mix.inserts + mix.deletes {
                OpKind::Remove as u8
            } else if dice < mix.inserts + mix.deletes + mix.ranges {
                OpKind::Range as u8
            } else if dice < mix.inserts + mix.deletes + mix.ranges + mix.rmws {
                OpKind::Rmw as u8
            } else {
                OpKind::Get as u8
            }
        })
        .collect();
    (keys, kinds)
}

/// Largest valid run base so a run of `r` consecutive keys stays in range.
fn range_base_limit(range: u64, r: u64) -> u64 {
    range.saturating_sub(r - 1).max(1)
}

/// Runs one timed trial: `threads` workers each executing the `mix` on
/// keys drawn from `mix.dist` over `[0, range)` for `duration`.
///
/// Each worker pre-generates its key and op-kind streams and sets up its
/// buffers **before** the timing barrier; the measured loop only indexes
/// the streams, calls the map, and bumps plain `u64` latency buckets —
/// no RNG, no allocation, no atomics (the `cfgcheck` hot-loop gate
/// enforces this region stays that way). Per-op latency lands in
/// per-worker [`OpHistograms`] merged after the join.
///
/// With `mix.batch > 1` the workers drive the trait-level batch entry
/// points instead of point ops: each iteration consumes one op kind and
/// `batch` keys from the streams and issues a single `insert_batch` /
/// `remove_batch` / `get_batch` that counts as `batch` operations; the
/// latency sample recorded is the **batch call**, not a per-key figure.
pub fn run_trial(
    map: &(dyn ConcurrentMap + Sync),
    threads: usize,
    mix: Mix,
    range: u64,
    duration: Duration,
    seed: u64,
) -> TrialResult {
    assert!(
        mix.ranges == 0 || mix.batch <= 1,
        "range scans have no batched entry point"
    );
    // Calibrate the latency clock before any worker exists, so the ~5 ms
    // one-time TSC calibration never lands inside a measured region.
    latency::calibrate();
    // One sampler, built once and shared read-only: the zipfian CDF can
    // be megabytes, and every worker binary-searches the same table.
    let sampler = KeySampler::new(mix.dist, range);
    let stop = AtomicBool::new(false);
    let total = AtomicU64::new(0);
    let merged = std::sync::Mutex::new(OpHistograms::new());
    // Keep thread spawning, stream pre-generation and buffer setup out of
    // the timed region: every worker sets up, then all parties meet at
    // the barrier and the clock starts there.
    let start_gate = std::sync::Barrier::new(threads + 1);
    let mut started = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..threads {
            let stop = &stop;
            let total = &total;
            let start_gate = &start_gate;
            let sampler = &sampler;
            let merged = &merged;
            s.spawn(move || {
                const INS: u8 = OpKind::Insert as u8;
                const REM: u8 = OpKind::Remove as u8;
                const RNG: u8 = OpKind::Range as u8;
                const RMW: u8 = OpKind::Rmw as u8;
                let mut rng = StdRng::seed_from_u64(seed ^ ((tid as u64) << 32) | tid as u64);
                let (keys, kinds) = pregen_stream(mix, sampler, &mut rng);
                let mut hist = OpHistograms::new();
                let mut ops = 0u64;
                let mut cursor = 0usize;
                if mix.batch > 1 {
                    // Batched flavor: fixed-size buffers are written in
                    // place each call, so the timed region measures the
                    // batch entry points, not allocator traffic.
                    let b = mix.batch as usize;
                    let mut kbuf: Vec<u64> = vec![0; b];
                    let mut pairs: Vec<(u64, u64)> = vec![(0, 0); b];
                    let mut kc = 0usize;
                    start_gate.wait();
                    // cfgcheck:hotloop:begin
                    while !stop.load(Ordering::Relaxed) {
                        for slot in kbuf.iter_mut() {
                            *slot = keys[kc & STREAM_MASK];
                            kc += 1;
                        }
                        let kind = kinds[cursor & STREAM_MASK];
                        cursor += 1;
                        let t0 = latency::now();
                        match kind {
                            INS => {
                                for (p, &k) in pairs.iter_mut().zip(kbuf.iter()) {
                                    *p = (k, k);
                                }
                                std::hint::black_box(map.insert_batch(&pairs));
                            }
                            REM => {
                                std::hint::black_box(map.remove_batch(&kbuf));
                            }
                            _ => {
                                std::hint::black_box(map.get_batch(&kbuf));
                            }
                        }
                        hist.record(kind, latency::elapsed_ns(t0));
                        ops += b as u64;
                    }
                    // cfgcheck:hotloop:end
                } else {
                    start_gate.wait();
                    // cfgcheck:hotloop:begin
                    while !stop.load(Ordering::Relaxed) {
                        // Batch the stop check to keep the loop tight.
                        for _ in 0..64 {
                            let k = keys[cursor & STREAM_MASK];
                            let kind = kinds[cursor & STREAM_MASK];
                            cursor += 1;
                            let t0 = latency::now();
                            match kind {
                                INS => {
                                    map.insert(k, k);
                                }
                                REM => {
                                    map.remove(&k);
                                }
                                RNG => {
                                    // A scan of `range_width` keys starting
                                    // at `k` counts as ONE operation: Mops/s
                                    // for range mixes measures scans, not
                                    // keys touched. Saturating at both ends:
                                    // the pub fields allow a hand-built Mix
                                    // with width 0 (empty scan), which must
                                    // not underflow into a full-map scan.
                                    let hi = k.saturating_add(mix.range_width).saturating_sub(1);
                                    std::hint::black_box(map.range(k, hi));
                                }
                                RMW => {
                                    // Read-modify-write: one timed op, the
                                    // counter/accumulator shape.
                                    let v = map.get(&k).map_or(1, |v| v.wrapping_add(1));
                                    map.insert(k, v);
                                }
                                _ => {
                                    map.get(&k);
                                }
                            }
                            hist.record(kind, latency::elapsed_ns(t0));
                            ops += 1;
                        }
                    }
                    // cfgcheck:hotloop:end
                }
                total.fetch_add(ops, Ordering::Relaxed);
                merged.lock().unwrap().merge(&hist);
            });
        }
        start_gate.wait();
        started = Instant::now();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
    });
    TrialResult {
        ops: total.load(Ordering::Relaxed),
        elapsed: started.elapsed(),
        latency: merged.into_inner().unwrap(),
    }
}

/// Runs `trials` trials (fresh prefilled map each time) and returns the
/// mean Mops/s together with the individual results. Maps are built
/// exclusively through `make_map(name, cfg)`, so the caller's
/// [`SuiteConfig`] — not the environment at call time — determines how
/// the `"sharded"` entry is sized.
#[allow(clippy::too_many_arguments)] // ALLOW: bench entry point mirrors the suite-config axes one-to-one
pub fn measure(
    name: &str,
    cfg: &SuiteConfig,
    threads: usize,
    mix: Mix,
    range: u64,
    duration: Duration,
    trials: usize,
    seed: u64,
) -> (f64, Vec<TrialResult>) {
    let mut results = Vec::with_capacity(trials);
    for t in 0..trials {
        let map = make_map(name, cfg).unwrap_or_else(|| panic!("unknown map {name}"));
        prefill(map.as_ref(), range, mix, seed + t as u64);
        let r = run_trial(
            map.as_ref(),
            threads,
            mix,
            range,
            duration,
            seed + 1000 + t as u64,
        );
        results.push(r);
    }
    let mean = results.iter().map(|r| r.mops()).sum::<f64>() / results.len() as f64;
    (mean, results)
}

/// The thread counts to sweep on this host, mirroring the paper's
/// {1, 32, 64, 96, 128} scaled to the available parallelism.
pub fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut counts = if max <= 2 {
        // Few-core host: sweep oversubscription instead. Parallel speedup
        // cannot manifest, but the blocking-vs-non-blocking contrast does:
        // preempted lock holders stall lock-based structures while the
        // non-blocking ones keep making progress through helping.
        vec![1, 2, 4, 8]
    } else {
        vec![1, max / 4, max / 2, (3 * max) / 4, max]
    };
    counts.retain(|&c| c >= 1);
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Sanity helper shared by tests: applies `ops` scripted operations to a
/// map and to `BTreeMap`, asserting identical results — including ordered
/// `range` scans, so every registered structure's scan is oracle-checked.
///
/// The range assertion is **tiered** by [`ConcurrentMap::range_tier`]:
/// an [`RangeTier::Atomic`] scan must equal the model snapshot verbatim,
/// while a per-key-linearizable scan is held to exactly the properties
/// that tier promises (see [`assert_scan_per_key`]). Sequentially the
/// two are equivalent — the weak properties compose to set equality when
/// nothing runs concurrently — so splitting the oracle loses no
/// coverage; what it fixes is the *claim*: the old oracle asserted
/// snapshot atomicity for every structure, which the skip list only
/// passed because a single-threaded script can't distinguish the tiers
/// (and which a new weak-scan structure should not inherit).
pub fn check_against_model(map: &dyn ConcurrentMap, seed: u64, ops: u64, range: u64) {
    check_against_model_dist(map, seed, ops, range, KeyDist::Uniform);
}

/// [`check_against_model`] with keys drawn from an arbitrary [`KeyDist`]
/// instead of uniformly — what the skewed-workload tests use to show the
/// samplers feed structures keys they handle correctly (a zipfian stream
/// hammers the same hot keys through insert/remove/get/range in every
/// interleaving a sequential script can produce).
pub fn check_against_model_dist(
    map: &dyn ConcurrentMap,
    seed: u64,
    ops: u64,
    range: u64,
    dist: KeyDist,
) {
    use std::collections::BTreeMap;
    let sampler = KeySampler::new(dist, range);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = BTreeMap::new();
    for step in 0..ops {
        let k = sampler.sample(&mut rng);
        match rng.gen_range(0..4) {
            0 => assert_eq!(map.insert(k, step), model.insert(k, step), "insert {k}"),
            1 => assert_eq!(map.remove(&k), model.remove(&k), "remove {k}"),
            2 => assert_eq!(map.get(&k), model.get(&k).copied(), "get {k}"),
            _ => {
                let hi = k + rng.gen_range(0..range / 4 + 1);
                let expect: Vec<(u64, u64)> = model.range(k..=hi).map(|(k, v)| (*k, *v)).collect();
                assert_range_matches(map, map.range(k, hi), &expect, k, hi);
            }
        }
    }
}

/// The tier dispatch behind the model oracles' range checks.
fn assert_range_matches(
    map: &dyn ConcurrentMap,
    got: Vec<(u64, u64)>,
    expect: &[(u64, u64)],
    lo: u64,
    hi: u64,
) {
    match map.range_tier() {
        RangeTier::Atomic => {
            assert_eq!(got, expect, "{}: range [{lo}, {hi}]", map.name());
        }
        RangeTier::PerShardAtomic | RangeTier::PerKeyLinearizable => {
            assert_scan_per_key(&got, expect, map.name(), lo, hi);
        }
    }
}

/// Asserts the properties a per-key-linearizable (or per-shard-atomic)
/// scan owes a **sequential** caller: strictly sorted, no phantom pair
/// (everything returned is in the model) and no missing pair (everything
/// in the model is returned). Together these are set equality — the same
/// coverage as the atomic oracle's `assert_eq` — but stated as the
/// properties the tier actually promises, so the same predicate remains
/// sound for concurrent callers (where the atomic claim would not be).
pub fn assert_scan_per_key(
    got: &[(u64, u64)],
    expect: &[(u64, u64)],
    name: &str,
    lo: u64,
    hi: u64,
) {
    assert!(
        got.windows(2).all(|w| w[0].0 < w[1].0),
        "{name}: range [{lo}, {hi}] not strictly sorted: {got:?}"
    );
    for pair in got {
        assert!(
            expect.binary_search(pair).is_ok(),
            "{name}: range [{lo}, {hi}] returned phantom {pair:?}"
        );
    }
    for pair in expect {
        assert!(
            got.binary_search(pair).is_ok(),
            "{name}: range [{lo}, {hi}] missed {pair:?}"
        );
    }
}

/// Oracle check for the trait-level batched entry points: applies random
/// interleaved batches (insert/remove/get) and point ops to any
/// [`ConcurrentMap`] and to `BTreeMap`, asserting identical per-item
/// results in input order. Mirrors the trait's documented duplicate-key
/// semantics (a batch behaves like sequential input-order application),
/// so the model is simply "apply the batch one element at a time" — valid
/// for the per-element defaults, the façade's shard grouping and the
/// chromatic tree's sorted-bulk override alike.
pub fn check_batches_against_model(map: &dyn ConcurrentMap, seed: u64, batches: u64, range: u64) {
    use std::collections::BTreeMap;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = BTreeMap::new();
    for step in 0..batches {
        let len = rng.gen_range(0..48usize);
        match rng.gen_range(0..4) {
            0 => {
                let batch: Vec<(u64, u64)> = (0..len)
                    .map(|i| (rng.gen_range(0..range), step * 1000 + i as u64))
                    .collect();
                let expect: Vec<_> = batch.iter().map(|&(k, v)| model.insert(k, v)).collect();
                assert_eq!(map.insert_batch(&batch), expect, "insert_batch {batch:?}");
            }
            1 => {
                let keys: Vec<u64> = (0..len).map(|_| rng.gen_range(0..range)).collect();
                let expect: Vec<_> = keys.iter().map(|k| model.remove(k)).collect();
                assert_eq!(map.remove_batch(&keys), expect, "remove_batch {keys:?}");
            }
            2 => {
                let keys: Vec<u64> = (0..len).map(|_| rng.gen_range(0..range)).collect();
                let expect: Vec<_> = keys.iter().map(|k| model.get(k).copied()).collect();
                assert_eq!(map.get_batch(&keys), expect, "get_batch {keys:?}");
            }
            _ => {
                // Point ops and scans interleave with the batches so the
                // two entry-point families are checked against each other,
                // boundary-straddling ranges included.
                let k = rng.gen_range(0..range);
                assert_eq!(map.insert(k, step), model.insert(k, step));
                let hi = k + rng.gen_range(0..range / 2 + 1);
                let expect: Vec<(u64, u64)> = model.range(k..=hi).map(|(k, v)| (*k, *v)).collect();
                assert_range_matches(map, map.range(k, hi), &expect, k, hi);
            }
        }
    }
    assert_eq!(map.len(), model.len());
}

/// Convenience: construct every registered map under one [`SuiteConfig`].
pub fn all_maps(cfg: &SuiteConfig) -> Vec<Arc<dyn ConcurrentMap>> {
    ALL_MAPS
        .iter()
        .map(|n| Arc::<dyn ConcurrentMap>::from(make_map(n, cfg).unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_map_matches_model() {
        let cfg = SuiteConfig::default();
        for name in ALL_MAPS {
            let map = make_map(name, &cfg).unwrap();
            check_against_model(map.as_ref(), 7, 3000, 128);
        }
    }

    #[test]
    fn sharded_batches_match_model() {
        // Boundaries at 32/64/96: a range of 128 keys over 4 shards keeps
        // every batch and scan straddling shard boundaries.
        let map = make_sharded(&SuiteConfig::default().with_shards(4).with_span(128));
        check_batches_against_model(&map, 11, 400, 128);
    }

    #[test]
    fn trait_batches_match_model_on_every_registered_map() {
        // The same oracle, through the trait object — covers the
        // per-element defaults and both overrides (façade + chromatic
        // sorted-bulk).
        let cfg = SuiteConfig::default().with_shards(4).with_span(128);
        for name in ALL_MAPS {
            let map = make_map(name, &cfg).unwrap();
            check_batches_against_model(map.as_ref(), 13, 150, 128);
        }
    }

    #[test]
    fn prefill_reaches_expected_size() {
        let map = make_map("chromatic", &SuiteConfig::default()).unwrap();
        prefill(map.as_ref(), 1000, Mix::updates(50, 50), 3);
        let n = map.len();
        assert!((450..=550).contains(&n), "prefilled size {n}");
    }

    #[test]
    fn trial_counts_operations() {
        let map = make_map("skiplist", &SuiteConfig::default()).unwrap();
        prefill(map.as_ref(), 1000, Mix::updates(20, 10), 3);
        let r = run_trial(
            map.as_ref(),
            2,
            Mix::updates(20, 10),
            1000,
            Duration::from_millis(100),
            9,
        );
        assert!(r.ops > 0);
        assert!(r.mops() > 0.0);
    }

    #[test]
    fn trial_with_range_component_runs_on_every_map() {
        let cfg = SuiteConfig::default().for_key_range(500);
        for name in ALL_MAPS {
            let map = make_map(name, &cfg).unwrap();
            let mix = Mix::updates(20, 10).with_ranges(20, 32);
            prefill(map.as_ref(), 500, mix, 3);
            let r = run_trial(map.as_ref(), 2, mix, 500, Duration::from_millis(50), 11);
            assert!(r.ops > 0, "{name} performed no operations");
        }
    }

    #[test]
    fn batched_trial_runs_and_counts_batch_sized_ops() {
        let cfg = SuiteConfig::default().for_key_range(1000);
        for name in ["chromatic", "sharded"] {
            let map = make_map(name, &cfg).unwrap();
            let mix = Mix::updates(50, 50).with_batch(16);
            prefill(map.as_ref(), 1000, mix, 3);
            let r = run_trial(map.as_ref(), 2, mix, 1000, Duration::from_millis(50), 11);
            assert!(r.ops > 0, "{name} performed no operations");
            assert_eq!(r.ops % 16, 0, "{name}: ops must come in whole batches");
        }
    }

    #[test]
    fn clustered_batched_trial_runs_and_merges_runs() {
        // A clustered insert-heavy batch trial on the bare chromatic tree
        // must exercise the merged-install path (visible in its stats).
        let cfg = SuiteConfig::default().for_key_range(1 << 14);
        let map = make_map("chromatic", &cfg).unwrap();
        let mix = Mix::updates(80, 20).with_batch(64).with_run(8);
        prefill(map.as_ref(), 1 << 14, mix, 3);
        let r = run_trial(map.as_ref(), 2, mix, 1 << 14, Duration::from_millis(80), 11);
        assert!(r.ops > 0);
        assert_eq!(r.ops % 64, 0, "ops must come in whole batches");
    }

    #[test]
    fn mix_labels() {
        assert_eq!(Mix::updates(20, 10).label().as_str(), "20i-10d");
        assert_eq!(
            Mix::updates(20, 10).with_ranges(5, 100).label().as_str(),
            "20i-10d-5r"
        );
        assert_eq!(
            Mix::updates(0, 0).with_ranges(100, 1).label().as_str(),
            "0i-0d-100r"
        );
        assert_eq!(
            Mix::updates(50, 50).with_batch(64).label().as_str(),
            "50i-50d-b64"
        );
        assert_eq!(
            Mix::updates(100, 0).with_batch(1).label().as_str(),
            "100i-0d",
            "batch 1 is the point flavor and keeps the point label"
        );
        assert_eq!(
            Mix::updates(100, 0)
                .with_batch(64)
                .with_run(8)
                .label()
                .as_str(),
            "100i-0d-b64-c8"
        );
        assert_eq!(
            Mix::updates(0, 100)
                .with_batch(64)
                .with_run(1)
                .label()
                .as_str(),
            "0i-100d-b64",
            "run 1 is the uniform flavor and keeps the plain batch label"
        );
        assert_eq!(
            Mix::updates(20, 10).with_zipf(0.9).label().as_str(),
            "20i-10d-z0.90"
        );
        assert_eq!(
            Mix::updates(20, 10).with_zipf(1.2).label().as_str(),
            "20i-10d-z1.20"
        );
        assert_eq!(
            Mix::updates(20, 10).with_zipf(0.0).label().as_str(),
            "20i-10d",
            "theta 0 is uniform and keeps the plain label"
        );
        assert_eq!(
            Mix::updates(5, 5).with_hot_set(10, 90).label().as_str(),
            "5i-5d-h10x90"
        );
        assert_eq!(Mix::rmw(30).label().as_str(), "0i-0d-30m");
        assert_eq!(
            Mix::scan_heavy(64).label().as_str(),
            "5i-5d-80r",
            "scan-heavy is the 5i-5d-80r shape"
        );
        assert_eq!(
            Mix::updates(50, 50)
                .with_batch(64)
                .with_run(8)
                .with_zipf(1.2)
                .label()
                .as_str(),
            "50i-50d-b64-c8-z1.20"
        );
    }

    #[test]
    fn skewed_trials_run_and_record_latency() {
        let cfg = SuiteConfig::default().for_key_range(1000);
        for mix in [
            Mix::updates(20, 10).with_zipf(0.9),
            Mix::updates(20, 10).with_zipf(1.2),
            Mix::updates(20, 10).with_hot_set(10, 90),
        ] {
            let map = make_map("chromatic", &cfg).unwrap();
            prefill(map.as_ref(), 1000, mix, 3);
            let r = run_trial(map.as_ref(), 2, mix, 1000, Duration::from_millis(50), 11);
            assert!(
                r.ops > 0,
                "{} performed no operations",
                mix.label().as_str()
            );
            assert_eq!(
                r.latency_merged().count(),
                r.ops,
                "{}: every op must land in a latency bucket",
                mix.label().as_str()
            );
            let s = latency_summary(&[r]);
            assert!(s.p99_ns >= s.p50_ns);
        }
    }

    #[test]
    fn rmw_trial_records_under_the_rmw_kind() {
        let cfg = SuiteConfig::default().for_key_range(500);
        let map = make_map("skiplist", &cfg).unwrap();
        let mix = Mix::updates(10, 10).with_rmw(50);
        prefill(map.as_ref(), 500, mix, 3);
        let r = run_trial(map.as_ref(), 2, mix, 500, Duration::from_millis(50), 7);
        assert!(r.ops > 0);
        let rmw = r.latency.kind(OpKind::Rmw).count();
        assert!(rmw > 0, "50% RMW mix recorded no RMW samples");
        // Roughly half the ops should be RMW (binomial around 0.5).
        let frac = rmw as f64 / r.ops as f64;
        assert!((0.3..0.7).contains(&frac), "RMW fraction {frac}");
    }

    #[test]
    fn batched_trial_records_batch_call_latency() {
        let cfg = SuiteConfig::default().for_key_range(1000);
        let map = make_map("sharded", &cfg).unwrap();
        let mix = Mix::updates(50, 50).with_batch(16);
        prefill(map.as_ref(), 1000, mix, 3);
        let r = run_trial(map.as_ref(), 2, mix, 1000, Duration::from_millis(50), 11);
        assert!(r.ops > 0);
        // One latency sample per batch *call*, not per key.
        assert_eq!(r.latency_merged().count(), r.ops / 16);
    }

    #[test]
    fn skewed_mixes_match_model_on_chromatic() {
        let cfg = SuiteConfig::default();
        let map = make_map("chromatic", &cfg).unwrap();
        check_against_model_dist(
            map.as_ref(),
            7,
            2000,
            128,
            KeyDist::Zipfian { theta_pct: 120 },
        );
        let map = make_map("chromatic", &cfg).unwrap();
        check_against_model_dist(
            map.as_ref(),
            9,
            2000,
            128,
            KeyDist::HotSet {
                keys_pct: 10,
                ops_pct: 90,
            },
        );
    }

    #[test]
    fn thread_counts_sane() {
        let c = thread_counts();
        assert!(!c.is_empty());
        assert_eq!(c[0], 1);
        assert!(c.windows(2).all(|w| w[0] < w[1]));
    }
}
