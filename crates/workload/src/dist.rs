//! Key distributions for workload generation: uniform, zipfian and
//! hot-set, behind one [`KeySampler`] the harness builds **once per
//! trial** and samples from **before the timing barrier** — the
//! generator never runs inside the measured loop (pre-generated key
//! streams, the ppsim/YCSB methodology), so a heavier distribution
//! cannot masquerade as structure slowdown.
//!
//! Zipfian sampling is exact inverse-CDF over the ranked key space
//! (cumulative weights `1/(r+1)^θ`, binary search per draw), valid for
//! **any** θ ≥ 0 — including θ > 1, where the closed-form YCSB
//! generator breaks down. Ranks are scattered over the key range by a
//! bijective mixer (cycle-walking over the next power of two), so the
//! hot keys are spread across the key space rather than packed into a
//! few adjacent tree leaves: skew stresses *contention*, not leaf
//! locality (clustering is a separate axis, `Mix::with_run`). For key
//! ranges beyond [`ZIPF_EXACT_RANKS`] the head stays exact and the tail
//! is approximated as uniform with the tail's aggregate mass (the head
//! holds almost all of it at any interesting θ).

use rand::{rngs::StdRng, Rng, RngCore};

/// How keys are drawn from the key range `[0, range)`.
///
/// `θ` and the hot-set fractions are stored in integer percent so `Mix`
/// (which embeds a `KeyDist`) stays `Copy + Eq` and usable in `const`
/// contexts; the public builders ([`crate::Mix::with_zipf`],
/// [`crate::Mix::with_hot_set`]) take the natural units.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeyDist {
    /// Every key equally likely — the paper's methodology and the
    /// default everywhere.
    Uniform,
    /// Zipfian with exponent `theta = theta_pct / 100`: rank `r` (0 =
    /// hottest) is drawn with probability proportional to
    /// `1 / (r + 1)^theta`. `theta_pct = 0` degenerates to uniform.
    Zipfian {
        /// `θ × 100` (`90` is the YCSB default 0.9).
        theta_pct: u32,
    },
    /// A two-temperature distribution: `ops_pct`% of draws land
    /// uniformly in a hot set of `keys_pct`% of the key range, the rest
    /// uniformly in the cold remainder. The hot set is scattered across
    /// the range (not a contiguous prefix).
    HotSet {
        /// Hot-set size as a percent of the key range (≥ 1 key).
        keys_pct: u32,
        /// Percent of operations directed at the hot set.
        ops_pct: u32,
    },
}

impl KeyDist {
    /// Short label fragment used by `Mix::label` (`z0.90`, `h10x90`,
    /// empty for uniform).
    pub fn is_uniform(&self) -> bool {
        matches!(self, KeyDist::Uniform)
            || matches!(self, KeyDist::Zipfian { theta_pct: 0 })
            || matches!(self, KeyDist::HotSet { ops_pct: 0, .. })
    }
}

/// Ranks with exact zipfian CDF entries; beyond this the tail is
/// approximated as uniform (see module docs). 2^21 covers the paper's
/// largest key range (10^6) exactly.
pub const ZIPF_EXACT_RANKS: usize = 1 << 21;

/// A prepared sampler for one `(KeyDist, range)` pair. Construction is
/// `O(min(range, ZIPF_EXACT_RANKS))` for zipfian (it materializes the
/// CDF) and `O(1)` otherwise; sampling is `O(log ranks)` worst case.
/// Build it once per trial, outside the timed region.
pub struct KeySampler {
    range: u64,
    kind: SamplerKind,
}

enum SamplerKind {
    Uniform,
    Zipf {
        /// Cumulative normalized weights of ranks `0..cdf.len()`.
        cdf: Vec<f64>,
        /// Probability mass of the exact head (1.0 when the whole range
        /// is materialized).
        head_mass: f64,
    },
    Hot {
        hot_keys: u64,
        ops_pct: u32,
    },
}

impl KeySampler {
    /// Prepares a sampler for `dist` over `[0, range)`.
    ///
    /// # Panics
    ///
    /// If `range == 0`.
    pub fn new(dist: KeyDist, range: u64) -> KeySampler {
        assert!(range > 0, "empty key range");
        let kind = match dist {
            KeyDist::Uniform => SamplerKind::Uniform,
            KeyDist::Zipfian { theta_pct: 0 } => SamplerKind::Uniform,
            KeyDist::Zipfian { theta_pct } => {
                let theta = theta_pct as f64 / 100.0;
                let ranks = range.min(ZIPF_EXACT_RANKS as u64) as usize;
                let mut cdf = Vec::with_capacity(ranks);
                let mut sum = 0.0f64;
                for r in 0..ranks {
                    sum += 1.0 / ((r + 1) as f64).powf(theta);
                    cdf.push(sum);
                }
                // Tail mass of ranks [ranks, range), continuous
                // approximation of the truncated zeta remainder.
                let tail = if (range as usize) > ranks {
                    let a = ranks as f64 + 1.0;
                    let b = range as f64 + 1.0;
                    if (theta - 1.0).abs() < 1e-9 {
                        (b / a).ln()
                    } else {
                        (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta)
                    }
                } else {
                    0.0
                };
                let total = sum + tail;
                for c in &mut cdf {
                    *c /= total;
                }
                SamplerKind::Zipf {
                    cdf,
                    head_mass: sum / total,
                }
            }
            KeyDist::HotSet { keys_pct, ops_pct } => {
                assert!(
                    (1..=100).contains(&keys_pct) && ops_pct <= 100,
                    "hot set: keys_pct in [1,100], ops_pct in [0,100]"
                );
                let hot_keys = ((range as u128 * keys_pct as u128) / 100).max(1) as u64;
                SamplerKind::Hot { hot_keys, ops_pct }
            }
        };
        KeySampler { range, kind }
    }

    /// Draws one key from `[0, range)` under the prepared distribution.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        match &self.kind {
            SamplerKind::Uniform => rng.gen_range(0..self.range),
            SamplerKind::Zipf { cdf, head_mass } => {
                let u = unit_f64(rng);
                let rank = if u < *head_mass || cdf.len() as u64 == self.range {
                    // Exact head: binary search the CDF. Clamp covers
                    // u == head_mass rounding on fully-materialized
                    // ranges.
                    cdf.partition_point(|&c| c < u).min(cdf.len() - 1) as u64
                } else {
                    // Approximated tail: uniform over the residual ranks.
                    rng.gen_range(cdf.len() as u64..self.range)
                };
                scatter(rank, self.range)
            }
            SamplerKind::Hot { hot_keys, ops_pct } => {
                let hot = rng.gen_range(0..100u32) < *ops_pct;
                let rank = if hot || *hot_keys == self.range {
                    rng.gen_range(0..*hot_keys)
                } else {
                    rng.gen_range(*hot_keys..self.range)
                };
                scatter(rank, self.range)
            }
        }
    }

    /// The key range `[0, range)` this sampler draws from.
    pub fn range(&self) -> u64 {
        self.range
    }

    /// The rank → key permutation this sampler applies (exposed so the
    /// statistical tests can invert it).
    pub fn key_of_rank(&self, rank: u64) -> u64 {
        match self.kind {
            SamplerKind::Uniform => rank,
            _ => scatter(rank, self.range),
        }
    }
}

/// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
fn unit_f64(rng: &mut StdRng) -> f64 {
    ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// A deterministic bijection on `[0, range)`: multiply/xorshift rounds
/// (each invertible modulo the next power of two) with cycle-walking
/// until the image lands back inside the range. Spreads zipf ranks and
/// the hot set across the key space so popularity skew doesn't collapse
/// into adjacency skew.
pub fn scatter(rank: u64, range: u64) -> u64 {
    debug_assert!(rank < range);
    if range <= 2 {
        return rank;
    }
    let mask = range.next_power_of_two().wrapping_sub(1);
    let mut x = rank;
    loop {
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15) & mask;
        x ^= x >> 29;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9) & mask;
        x ^= x >> 17;
        if x < range {
            return x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn scatter_is_a_bijection() {
        for range in [1u64, 2, 3, 100, 1000, 1024] {
            let mut seen = vec![false; range as usize];
            for r in 0..range {
                let k = scatter(r, range);
                assert!(k < range, "scatter({r}, {range}) = {k} out of range");
                assert!(!seen[k as usize], "scatter collision at {k}");
                seen[k as usize] = true;
            }
        }
    }

    #[test]
    fn uniform_and_theta_zero_cover_the_range() {
        for dist in [KeyDist::Uniform, KeyDist::Zipfian { theta_pct: 0 }] {
            let s = KeySampler::new(dist, 64);
            let mut rng = StdRng::seed_from_u64(5);
            let mut seen = [false; 64];
            for _ in 0..4096 {
                seen[s.sample(&mut rng) as usize] = true;
            }
            assert!(seen.iter().all(|&b| b), "{dist:?} left keys unsampled");
        }
    }

    #[test]
    fn zipf_is_deterministic_under_a_fixed_seed() {
        for theta_pct in [90, 120] {
            let s = KeySampler::new(KeyDist::Zipfian { theta_pct }, 10_000);
            let mut a = StdRng::seed_from_u64(77);
            let mut b = StdRng::seed_from_u64(77);
            for _ in 0..1000 {
                assert_eq!(s.sample(&mut a), s.sample(&mut b));
            }
        }
    }

    #[test]
    fn zipf_rank_frequencies_are_monotone() {
        // Statistical contract: bucketing ranks by octave, the *average
        // per-rank frequency* must strictly decrease octave over octave.
        // 200k samples over 1024 ranks at θ = 0.9 puts each comparison
        // far outside noise.
        for theta_pct in [90u32, 120] {
            let range = 1024u64;
            let s = KeySampler::new(KeyDist::Zipfian { theta_pct }, range);
            // Invert the scatter once so counts are per *rank*.
            let mut rank_of_key = vec![0u64; range as usize];
            for r in 0..range {
                rank_of_key[s.key_of_rank(r) as usize] = r;
            }
            let mut rng = StdRng::seed_from_u64(theta_pct as u64);
            let mut counts = vec![0u64; range as usize];
            for _ in 0..200_000 {
                counts[rank_of_key[s.sample(&mut rng) as usize] as usize] += 1;
            }
            let octaves: Vec<(u64, u64)> = [0..1u64, 1..2, 2..4, 4..8, 8..16, 16..64, 64..1024]
                .into_iter()
                .map(|r| {
                    let n = r.end - r.start;
                    (r.map(|i| counts[i as usize]).sum::<u64>(), n)
                })
                .collect();
            for w in octaves.windows(2) {
                let (a, na) = w[0];
                let (b, nb) = w[1];
                assert!(
                    a * nb > b * na,
                    "θ={}: per-rank frequency not decreasing: {a}/{na} vs {b}/{nb}",
                    theta_pct as f64 / 100.0
                );
            }
        }
    }

    #[test]
    fn higher_theta_concentrates_more_mass_on_the_head() {
        let range = 4096u64;
        let head_share = |theta_pct: u32| {
            let s = KeySampler::new(KeyDist::Zipfian { theta_pct }, range);
            let head: std::collections::HashSet<u64> = (0..16).map(|r| s.key_of_rank(r)).collect();
            let mut rng = StdRng::seed_from_u64(9);
            (0..100_000)
                .filter(|_| head.contains(&s.sample(&mut rng)))
                .count() as f64
                / 100_000.0
        };
        let (z0, z9, z12) = (head_share(0), head_share(90), head_share(120));
        assert!(z0 < 0.02, "uniform head share {z0}");
        assert!(z9 > 4.0 * z0, "θ=0.9 head share {z9} vs uniform {z0}");
        assert!(z12 > z9, "θ=1.2 head share {z12} vs θ=0.9 {z9}");
    }

    #[test]
    fn hot_set_receives_its_share_of_ops() {
        let range = 10_000u64;
        let s = KeySampler::new(
            KeyDist::HotSet {
                keys_pct: 10,
                ops_pct: 90,
            },
            range,
        );
        let hot: std::collections::HashSet<u64> =
            (0..range / 10).map(|r| s.key_of_rank(r)).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000)
            .filter(|_| hot.contains(&s.sample(&mut rng)))
            .count();
        assert!(
            (88_000..92_000).contains(&hits),
            "hot set drew {hits}/100000 ops, expected ~90000"
        );
        // The hot set is scattered, not a contiguous prefix.
        assert!(hot.iter().any(|&k| k > range / 2));
    }

    #[test]
    fn large_range_tail_approximation_still_samples_the_tail() {
        let range = (ZIPF_EXACT_RANKS as u64) * 4;
        let s = KeySampler::new(KeyDist::Zipfian { theta_pct: 90 }, range);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20_000 {
            assert!(s.sample(&mut rng) < range);
        }
    }
}
