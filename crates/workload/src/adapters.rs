//! A uniform `u64 → u64` map interface over every structure in the suite.
//!
//! The [`ConcurrentMap`] trait itself lives in the `sharded` crate (the
//! sharding façade must implement it, and `workload` must register the
//! façade — re-exporting from the lower crate breaks the cycle); this
//! module provides the implementations for every structure plus the
//! `make_map` registry.

use nbbst::NbBst;
use nbskiplist::SkipListMap;
use nbtree::ChromaticTree;
use ravl::RelaxedAvl;
use seqrbt::RbGlobal;
use sharded::ShardedMap;
use tinystm::RbStm;

pub use sharded::ConcurrentMap;

/// All registered structure names, in the order figures print them.
pub const ALL_MAPS: &[&str] = &[
    "chromatic",
    "chromatic6",
    "nbbst",
    "ravl",
    "skiplist",
    "lockavl",
    "rbstm",
    "rbglobal",
    "sharded",
];

/// Key-universe span assumed by the registry's `"sharded"` entry:
/// `NBTREE_SHARD_SPAN` (default 10 000, the default bench key range). The
/// boundary table splits `[0, span)` uniformly, so a benchmark sweeping a
/// different key range should pin this knob to that range — routing is
/// still *correct* under any span (out-of-span keys land in the last
/// shard), it just stops spreading load.
pub fn shard_span() -> u64 {
    std::env::var("NBTREE_SHARD_SPAN")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(10_000)
}

/// The shard count used by the registry's `"sharded"` entry:
/// `NBTREE_SHARDS` rounded to a power of two, default 8.
pub fn shard_count() -> usize {
    sharded::shards_from_env(8)
}

/// One chromatic-tree shard of the registry's sharded façade.
///
/// A concrete type rather than `Box<dyn ConcurrentMap>` so the per-shard
/// hop is a static call: the façade behind `make_map("sharded")` already
/// costs one virtual dispatch at the trait object boundary, and paying a
/// second one inside every shard was measurable on the point-op hot path.
pub struct ChromaticShard(ChromaticTree<u64, u64>);

impl ConcurrentMap for ChromaticShard {
    fn name(&self) -> &'static str {
        "chromatic-shard"
    }
    fn insert(&self, k: u64, v: u64) -> Option<u64> {
        self.0.insert(k, v)
    }
    fn remove(&self, k: &u64) -> Option<u64> {
        self.0.remove(k)
    }
    fn get(&self, k: &u64) -> Option<u64> {
        self.0.get(k)
    }
    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        self.0.range(lo..=hi)
    }
    fn len(&self) -> usize {
        self.0.len()
    }
}

/// A sharded façade over chromatic-tree shards: `shards` instances
/// splitting `[0, span)` uniformly. The registry's `"sharded"` entry is
/// `make_sharded(shard_count(), shard_span())`; benchmarks and tests that
/// need batched entry points (`insert_batch` & co., which are inherent
/// methods of [`ShardedMap`], not part of the object-safe trait) build
/// the concrete type through this constructor.
pub fn make_sharded(shards: usize, span: u64) -> ShardedMap<ChromaticShard> {
    ShardedMap::with_span(shards, span.max(shards as u64), |_| {
        ChromaticShard(ChromaticTree::new())
    })
}

/// Instantiates a map by name; `None` for unknown names.
pub fn make_map(name: &str) -> Option<Box<dyn ConcurrentMap>> {
    Some(match name {
        "chromatic" => Box::new(NamedChromatic {
            inner: ChromaticTree::new(),
            name: "chromatic",
        }),
        "chromatic6" => Box::new(NamedChromatic {
            inner: ChromaticTree::with_allowed_violations(6),
            name: "chromatic6",
        }),
        "nbbst" => Box::new(NbBstMap(NbBst::new())),
        "ravl" => Box::new(RelaxedAvlMap(RelaxedAvl::new())),
        "skiplist" => Box::new(SkipListAdapter(SkipListMap::new())),
        "lockavl" => Box::new(LockAvlMap(lockavl::LockAvl::new())),
        "rbstm" => Box::new(RbStmMap(RbStm::new())),
        "rbglobal" => Box::new(RbGlobalMap(RbGlobal::new())),
        "sharded" => Box::new(make_sharded(shard_count(), shard_span())),
        _ => return None,
    })
}

struct NamedChromatic {
    inner: ChromaticTree<u64, u64>,
    name: &'static str,
}

impl ConcurrentMap for NamedChromatic {
    fn name(&self) -> &'static str {
        self.name
    }
    fn insert(&self, k: u64, v: u64) -> Option<u64> {
        self.inner.insert(k, v)
    }
    fn remove(&self, k: &u64) -> Option<u64> {
        self.inner.remove(k)
    }
    fn get(&self, k: &u64) -> Option<u64> {
        self.inner.get(k)
    }
    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        self.inner.range(lo..=hi)
    }
    fn len(&self) -> usize {
        self.inner.len()
    }
}

// `ConcurrentMap` is now a foreign trait (it lives in `sharded`), so the
// orphan rule requires a local newtype between it and each foreign
// structure type. The wrappers are private; `make_map` still hands out
// `Box<dyn ConcurrentMap>` exactly as before.
macro_rules! impl_map {
    ($wrapper:ident, $ty:ty, $name:literal) => {
        struct $wrapper($ty);

        impl ConcurrentMap for $wrapper {
            fn name(&self) -> &'static str {
                $name
            }
            fn insert(&self, k: u64, v: u64) -> Option<u64> {
                self.0.insert(k, v)
            }
            fn remove(&self, k: &u64) -> Option<u64> {
                self.0.remove(k)
            }
            fn get(&self, k: &u64) -> Option<u64> {
                self.0.get(k)
            }
            fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
                self.0.range(lo..=hi)
            }
            fn len(&self) -> usize {
                self.0.len()
            }
        }
    };
}

impl_map!(NbBstMap, NbBst<u64, u64>, "nbbst");
impl_map!(RelaxedAvlMap, RelaxedAvl<u64, u64>, "ravl");
impl_map!(SkipListAdapter, SkipListMap<u64, u64>, "skiplist");
impl_map!(LockAvlMap, lockavl::LockAvl<u64, u64>, "lockavl");
impl_map!(RbStmMap, RbStm<u64, u64>, "rbstm");
impl_map!(RbGlobalMap, RbGlobal<u64, u64>, "rbglobal");
