//! A uniform `u64 → u64` map interface over every structure in the suite.
//!
//! The [`ConcurrentMap`] trait itself lives in the `sharded` crate (the
//! sharding façade must implement it, and `workload` must register the
//! façade — re-exporting from the lower crate breaks the cycle); this
//! module provides the implementations for every structure plus the
//! `make_map` registry.

use nbbst::NbBst;
use nbskiplist::SkipListMap;
use nbtree::ChromaticTree;
use ravl::RelaxedAvl;
use seqrbt::RbGlobal;
use sharded::ShardedMap;
use tinystm::RbStm;

use crate::config::SuiteConfig;

pub use sharded::ConcurrentMap;

/// All registered structure names, in the order figures print them.
pub const ALL_MAPS: &[&str] = &[
    "chromatic",
    "chromatic6",
    "nbbst",
    "ravl",
    "skiplist",
    "lockavl",
    "rbstm",
    "rbglobal",
    "sharded",
];

/// One chromatic-tree shard of the registry's sharded façade.
///
/// A concrete type rather than `Box<dyn ConcurrentMap>` so the per-shard
/// hop is a static call: the façade behind `make_map("sharded", ..)`
/// already costs one virtual dispatch at the trait object boundary, and
/// paying a second one inside every shard was measurable on the point-op
/// hot path.
pub struct ChromaticShard(ChromaticTree<u64, u64>);

impl ConcurrentMap for ChromaticShard {
    fn name(&self) -> &'static str {
        "chromatic-shard"
    }
    fn insert(&self, k: u64, v: u64) -> Option<u64> {
        self.0.insert(k, v)
    }
    fn remove(&self, k: &u64) -> Option<u64> {
        self.0.remove(k)
    }
    fn get(&self, k: &u64) -> Option<u64> {
        self.0.get(k)
    }
    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        self.0.range(lo..=hi)
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn insert_batch(&self, batch: &[(u64, u64)]) -> Vec<Option<u64>> {
        // The façade hands each per-shard group here whole, so the group
        // gets the tree's sorted-bulk path (shared search-path prefixes),
        // not the per-element trait default.
        self.0.insert_bulk(batch)
    }
    fn get_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        batched_chunked(keys, |k| self.0.get(k))
    }
    fn remove_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        batched_chunked(keys, |k| self.0.remove(k))
    }
}

/// Chromatic `get_batch` / `remove_batch` plumbing: the key group under
/// weighted guard-cache pins, chunked at the repin cadence like every
/// batch path in the suite. A pin spanning an arbitrarily large
/// caller-controlled group would hold the global epoch back for every
/// concurrent writer's retirements (and a remove group's own garbage) —
/// chunking keeps the documented reclamation-lag bound (`REPIN_OPS`
/// operations plus one chunk) while a 64-op chunk still pays one pin.
fn batched_chunked(keys: &[u64], op: impl Fn(&u64) -> Option<u64>) -> Vec<Option<u64>> {
    let mut out = Vec::with_capacity(keys.len());
    for chunk in keys.chunks(llxscx::guard_cache::REPIN_OPS as usize) {
        llxscx::guard_cache::with_guard_weighted(chunk.len() as u32, |_guard| {
            out.extend(chunk.iter().map(&op));
        });
    }
    out
}

/// A sharded façade over chromatic-tree shards: `cfg.shards()` instances
/// splitting `[0, cfg.shard_span())` uniformly. The registry's
/// `"sharded"` entry is `make_sharded(cfg)` behind the trait object;
/// tests that need the concrete type (per-shard inspection) build it
/// through this constructor.
pub fn make_sharded(cfg: &SuiteConfig) -> ShardedMap<ChromaticShard> {
    let shards = cfg.shards();
    ShardedMap::with_span(shards, cfg.shard_span().max(shards as u64), |_| {
        ChromaticShard(ChromaticTree::new())
    })
}

/// Instantiates a map by name; `None` for unknown names.
///
/// All construction-time knobs arrive through the typed [`SuiteConfig`]
/// (binaries parse the environment into one exactly once, at startup) —
/// the registry itself never consults the environment, so two sweepers
/// can no longer disagree about how the same `"sharded"` entry is sized.
pub fn make_map(name: &str, cfg: &SuiteConfig) -> Option<Box<dyn ConcurrentMap>> {
    Some(match name {
        "chromatic" => Box::new(NamedChromatic {
            inner: ChromaticTree::new(),
            name: "chromatic",
        }),
        "chromatic6" => Box::new(NamedChromatic {
            inner: ChromaticTree::with_allowed_violations(6),
            name: "chromatic6",
        }),
        "nbbst" => Box::new(NbBstMap(NbBst::new())),
        "ravl" => Box::new(RelaxedAvlMap(RelaxedAvl::new())),
        "skiplist" => Box::new(SkipListAdapter(SkipListMap::new())),
        "lockavl" => Box::new(LockAvlMap(lockavl::LockAvl::new())),
        "rbstm" => Box::new(RbStmMap(RbStm::new())),
        "rbglobal" => Box::new(RbGlobalMap(RbGlobal::new())),
        "sharded" => Box::new(make_sharded(cfg)),
        _ => return None,
    })
}

struct NamedChromatic {
    inner: ChromaticTree<u64, u64>,
    name: &'static str,
}

impl ConcurrentMap for NamedChromatic {
    fn name(&self) -> &'static str {
        self.name
    }
    fn insert(&self, k: u64, v: u64) -> Option<u64> {
        self.inner.insert(k, v)
    }
    fn remove(&self, k: &u64) -> Option<u64> {
        self.inner.remove(k)
    }
    fn get(&self, k: &u64) -> Option<u64> {
        self.inner.get(k)
    }
    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        self.inner.range(lo..=hi)
    }
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn insert_batch(&self, batch: &[(u64, u64)]) -> Vec<Option<u64>> {
        self.inner.insert_bulk(batch)
    }
    fn get_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        batched_chunked(keys, |k| self.inner.get(k))
    }
    fn remove_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        batched_chunked(keys, |k| self.inner.remove(k))
    }
}

// `ConcurrentMap` is now a foreign trait (it lives in `sharded`), so the
// orphan rule requires a local newtype between it and each foreign
// structure type. The wrappers are private; `make_map` still hands out
// `Box<dyn ConcurrentMap>` exactly as before.
macro_rules! impl_map {
    ($wrapper:ident, $ty:ty, $name:literal) => {
        struct $wrapper($ty);

        impl ConcurrentMap for $wrapper {
            fn name(&self) -> &'static str {
                $name
            }
            fn insert(&self, k: u64, v: u64) -> Option<u64> {
                self.0.insert(k, v)
            }
            fn remove(&self, k: &u64) -> Option<u64> {
                self.0.remove(k)
            }
            fn get(&self, k: &u64) -> Option<u64> {
                self.0.get(k)
            }
            fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
                self.0.range(lo..=hi)
            }
            fn len(&self) -> usize {
                self.0.len()
            }
        }
    };
}

impl_map!(NbBstMap, NbBst<u64, u64>, "nbbst");
impl_map!(RelaxedAvlMap, RelaxedAvl<u64, u64>, "ravl");
impl_map!(SkipListAdapter, SkipListMap<u64, u64>, "skiplist");
impl_map!(LockAvlMap, lockavl::LockAvl<u64, u64>, "lockavl");
impl_map!(RbStmMap, RbStm<u64, u64>, "rbstm");
impl_map!(RbGlobalMap, RbGlobal<u64, u64>, "rbglobal");
