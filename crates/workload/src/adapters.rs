//! A uniform `u64 → u64` map interface over every structure in the suite.

use nbbst::NbBst;
use nbskiplist::SkipListMap;
use nbtree::ChromaticTree;
use ravl::RelaxedAvl;
use seqrbt::RbGlobal;
use tinystm::RbStm;

/// Object-safe concurrent map interface used by the harness. Keys and
/// values are fixed to `u64` as in the paper's experiments.
pub trait ConcurrentMap: Send + Sync {
    /// Structure name as used in figures.
    fn name(&self) -> &'static str;
    /// Insert, returning the displaced value.
    fn insert(&self, k: u64, v: u64) -> Option<u64>;
    /// Remove, returning the removed value.
    fn remove(&self, k: &u64) -> Option<u64>;
    /// Lookup.
    fn get(&self, k: &u64) -> Option<u64>;
    /// Ordered scan of `[lo, hi]` (inclusive), sorted by key.
    ///
    /// Consistency is structure-dependent (and part of what the range
    /// workload measures): the template trees (`chromatic`, `nbbst`,
    /// `ravl`) return VLX-validated atomic snapshots, `lockavl` snapshots
    /// its persistent root, `rbstm` runs a read-only transaction and
    /// `rbglobal` holds the global lock; `skiplist` alone returns a
    /// non-atomic (per-key linearizable) scan, like
    /// `ConcurrentSkipListMap`.
    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)>;
    /// O(n) size snapshot.
    fn len(&self) -> usize;
    /// Whether the map holds no keys (same caveats as [`len`](Self::len)).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// All registered structure names, in the order figures print them.
pub const ALL_MAPS: &[&str] = &[
    "chromatic",
    "chromatic6",
    "nbbst",
    "ravl",
    "skiplist",
    "lockavl",
    "rbstm",
    "rbglobal",
];

/// Instantiates a map by name; `None` for unknown names.
pub fn make_map(name: &str) -> Option<Box<dyn ConcurrentMap>> {
    Some(match name {
        "chromatic" => Box::new(NamedChromatic {
            inner: ChromaticTree::new(),
            name: "chromatic",
        }),
        "chromatic6" => Box::new(NamedChromatic {
            inner: ChromaticTree::with_allowed_violations(6),
            name: "chromatic6",
        }),
        "nbbst" => Box::new(NbBst::<u64, u64>::new()),
        "ravl" => Box::new(RelaxedAvl::<u64, u64>::new()),
        "skiplist" => Box::new(SkipListMap::<u64, u64>::new()),
        "lockavl" => Box::new(lockavl::LockAvl::<u64, u64>::new()),
        "rbstm" => Box::new(RbStm::<u64, u64>::new()),
        "rbglobal" => Box::new(RbGlobal::<u64, u64>::new()),
        _ => return None,
    })
}

struct NamedChromatic {
    inner: ChromaticTree<u64, u64>,
    name: &'static str,
}

impl ConcurrentMap for NamedChromatic {
    fn name(&self) -> &'static str {
        self.name
    }
    fn insert(&self, k: u64, v: u64) -> Option<u64> {
        self.inner.insert(k, v)
    }
    fn remove(&self, k: &u64) -> Option<u64> {
        self.inner.remove(k)
    }
    fn get(&self, k: &u64) -> Option<u64> {
        self.inner.get(k)
    }
    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        self.inner.range(lo..=hi)
    }
    fn len(&self) -> usize {
        self.inner.len()
    }
}

macro_rules! impl_map {
    ($ty:ty, $name:literal) => {
        impl ConcurrentMap for $ty {
            fn name(&self) -> &'static str {
                $name
            }
            fn insert(&self, k: u64, v: u64) -> Option<u64> {
                <$ty>::insert(self, k, v)
            }
            fn remove(&self, k: &u64) -> Option<u64> {
                <$ty>::remove(self, k)
            }
            fn get(&self, k: &u64) -> Option<u64> {
                <$ty>::get(self, k)
            }
            fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
                <$ty>::range(self, lo..=hi)
            }
            fn len(&self) -> usize {
                <$ty>::len(self)
            }
        }
    };
}

impl_map!(NbBst<u64, u64>, "nbbst");
impl_map!(RelaxedAvl<u64, u64>, "ravl");
impl_map!(SkipListMap<u64, u64>, "skiplist");
impl_map!(lockavl::LockAvl<u64, u64>, "lockavl");
impl_map!(RbStm<u64, u64>, "rbstm");
impl_map!(RbGlobal<u64, u64>, "rbglobal");
