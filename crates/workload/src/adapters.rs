//! A uniform `u64 → u64` map interface over every structure in the suite.
//!
//! The [`ConcurrentMap`] trait itself lives in the `sharded` crate (the
//! sharding façade must implement it, and `workload` must register the
//! façade — re-exporting from the lower crate breaks the cycle); this
//! module provides the implementations for every structure plus the
//! `make_map` registry.

use hashmap::HopMap;
use nbbst::NbBst;
use nbskiplist::SkipListMap;
use nbtree::ChromaticTree;
use ravl::RelaxedAvl;
use seqrbt::RbGlobal;
use sharded::ShardedMap;
use std::sync::Mutex;
use tinystm::RbStm;

use crate::config::SuiteConfig;

pub use sharded::{ConcurrentMap, RangeTier};

/// All registered structure names, in the order figures print them.
pub const ALL_MAPS: &[&str] = &[
    "chromatic",
    "chromatic6",
    "nbbst",
    "ravl",
    "skiplist",
    "lockavl",
    "rbstm",
    "rbglobal",
    "sharded",
    "hashmap",
    "hybrid",
];

/// One chromatic-tree shard of the registry's sharded façade.
///
/// A concrete type rather than `Box<dyn ConcurrentMap>` so the per-shard
/// hop is a static call: the façade behind `make_map("sharded", ..)`
/// already costs one virtual dispatch at the trait object boundary, and
/// paying a second one inside every shard was measurable on the point-op
/// hot path.
pub struct ChromaticShard(ChromaticTree<u64, u64>);

impl ConcurrentMap for ChromaticShard {
    fn name(&self) -> &'static str {
        "chromatic-shard"
    }
    fn insert(&self, k: u64, v: u64) -> Option<u64> {
        self.0.insert(k, v)
    }
    fn remove(&self, k: &u64) -> Option<u64> {
        self.0.remove(k)
    }
    fn get(&self, k: &u64) -> Option<u64> {
        self.0.get(k)
    }
    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        self.0.range(lo..=hi)
    }
    fn range_tier(&self) -> RangeTier {
        RangeTier::Atomic // VLX-validated snapshot
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn insert_batch(&self, batch: &[(u64, u64)]) -> Vec<Option<u64>> {
        // The façade hands each per-shard group here whole, so the group
        // gets the tree's sorted-bulk path (shared search-path prefixes
        // and same-leaf run merging), not the per-element trait default.
        self.0.insert_bulk(batch)
    }
    fn get_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        batched_chunked(keys, |k| self.0.get(k))
    }
    fn remove_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        // Sorted-bulk removal with sibling-pair SCX collapsing.
        self.0.remove_bulk(keys)
    }
}

/// Chromatic `get_batch` / `remove_batch` plumbing: the key group under
/// weighted guard-cache pins, chunked at the repin cadence like every
/// batch path in the suite. A pin spanning an arbitrarily large
/// caller-controlled group would hold the global epoch back for every
/// concurrent writer's retirements (and a remove group's own garbage) —
/// chunking keeps the documented reclamation-lag bound (`REPIN_OPS`
/// operations plus one chunk) while a 64-op chunk still pays one pin.
fn batched_chunked(keys: &[u64], op: impl Fn(&u64) -> Option<u64>) -> Vec<Option<u64>> {
    let mut out = Vec::with_capacity(keys.len());
    for chunk in keys.chunks(llxscx::guard_cache::REPIN_OPS as usize) {
        llxscx::guard_cache::with_guard_weighted(chunk.len() as u32, |_guard| {
            out.extend(chunk.iter().map(&op));
        });
    }
    out
}

/// A sharded façade over chromatic-tree shards: `cfg.shards()` instances
/// splitting `[0, cfg.shard_span())` uniformly. The registry's
/// `"sharded"` entry is `make_sharded(cfg)` behind the trait object;
/// tests that need the concrete type (per-shard inspection) build it
/// through this constructor.
pub fn make_sharded(cfg: &SuiteConfig) -> ShardedMap<ChromaticShard> {
    let shards = cfg.shards();
    ShardedMap::with_span(shards, cfg.shard_span().max(shards as u64), |_| {
        ChromaticShard(ChromaticTree::new())
    })
}

/// Instantiates a map by name; `None` for unknown names.
///
/// All construction-time knobs arrive through the typed [`SuiteConfig`]
/// (binaries parse the environment into one exactly once, at startup) —
/// the registry itself never consults the environment, so two sweepers
/// can no longer disagree about how the same `"sharded"` entry is sized.
pub fn make_map(name: &str, cfg: &SuiteConfig) -> Option<Box<dyn ConcurrentMap>> {
    Some(match name {
        "chromatic" => Box::new(NamedChromatic {
            inner: ChromaticTree::new(),
            name: "chromatic",
        }),
        "chromatic6" => Box::new(NamedChromatic {
            inner: ChromaticTree::with_allowed_violations(6),
            name: "chromatic6",
        }),
        "nbbst" => Box::new(NbBstMap(NbBst::new())),
        "ravl" => Box::new(RelaxedAvlMap(RelaxedAvl::new())),
        "skiplist" => Box::new(SkipListAdapter(SkipListMap::new())),
        "lockavl" => Box::new(LockAvlMap(lockavl::LockAvl::new())),
        "rbstm" => Box::new(RbStmMap(RbStm::new())),
        "rbglobal" => Box::new(RbGlobalMap(RbGlobal::new())),
        "sharded" => Box::new(make_sharded(cfg)),
        "hashmap" => Box::new(HopShard::default()),
        "hybrid" => Box::new(make_hybrid(cfg)),
        _ => return None,
    })
}

struct NamedChromatic {
    inner: ChromaticTree<u64, u64>,
    name: &'static str,
}

impl ConcurrentMap for NamedChromatic {
    fn name(&self) -> &'static str {
        self.name
    }
    fn insert(&self, k: u64, v: u64) -> Option<u64> {
        self.inner.insert(k, v)
    }
    fn remove(&self, k: &u64) -> Option<u64> {
        self.inner.remove(k)
    }
    fn get(&self, k: &u64) -> Option<u64> {
        self.inner.get(k)
    }
    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        self.inner.range(lo..=hi)
    }
    fn range_tier(&self) -> RangeTier {
        RangeTier::Atomic // VLX-validated snapshot
    }
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn insert_batch(&self, batch: &[(u64, u64)]) -> Vec<Option<u64>> {
        self.inner.insert_bulk(batch)
    }
    fn get_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        batched_chunked(keys, |k| self.inner.get(k))
    }
    fn remove_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        self.inner.remove_bulk(keys)
    }
}

// `ConcurrentMap` is now a foreign trait (it lives in `sharded`), so the
// orphan rule requires a local newtype between it and each foreign
// structure type. The wrappers are private; `make_map` still hands out
// `Box<dyn ConcurrentMap>` exactly as before.
macro_rules! impl_map {
    ($wrapper:ident, $ty:ty, $name:literal, $tier:expr) => {
        struct $wrapper($ty);

        impl ConcurrentMap for $wrapper {
            fn name(&self) -> &'static str {
                $name
            }
            fn insert(&self, k: u64, v: u64) -> Option<u64> {
                self.0.insert(k, v)
            }
            fn remove(&self, k: &u64) -> Option<u64> {
                self.0.remove(k)
            }
            fn get(&self, k: &u64) -> Option<u64> {
                self.0.get(k)
            }
            fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
                self.0.range(lo..=hi)
            }
            fn range_tier(&self) -> RangeTier {
                $tier
            }
            fn len(&self) -> usize {
                self.0.len()
            }
        }
    };
}

// Scan-consistency tiers are declared per structure (see `RangeTier`):
// the template trees return VLX-validated snapshots, `lockavl` snapshots
// its persistent root, `rbstm`/`rbglobal` scan under transactions/the
// global lock — all atomic. The skip list's per-key-linearizable scan
// was previously *grandfathered* through the atomic oracle (sequentially
// indistinguishable); it now declares its real tier.
impl_map!(NbBstMap, NbBst<u64, u64>, "nbbst", RangeTier::Atomic);
impl_map!(RelaxedAvlMap, RelaxedAvl<u64, u64>, "ravl", RangeTier::Atomic);
impl_map!(
    SkipListAdapter,
    SkipListMap<u64, u64>,
    "skiplist",
    RangeTier::PerKeyLinearizable
);
impl_map!(
    LockAvlMap,
    lockavl::LockAvl<u64, u64>,
    "lockavl",
    RangeTier::Atomic
);
impl_map!(RbStmMap, RbStm<u64, u64>, "rbstm", RangeTier::Atomic);
impl_map!(RbGlobalMap, RbGlobal<u64, u64>, "rbglobal", RangeTier::Atomic);

/// The `"hashmap"` registry entry: the hopscotch table, unsharded.
///
/// Point ops and batches go straight to [`HopMap`]; `range` is the
/// table's per-key-linearizable sorted drain (declared through
/// [`RangeTier::PerKeyLinearizable`], so the oracles assert exactly
/// that — see `workload::check_against_model`).
pub struct HopShard(HopMap<u64, u64>);

impl Default for HopShard {
    fn default() -> Self {
        HopShard(HopMap::new())
    }
}

impl ConcurrentMap for HopShard {
    fn name(&self) -> &'static str {
        "hashmap"
    }
    fn insert(&self, k: u64, v: u64) -> Option<u64> {
        self.0.insert(k, v)
    }
    fn remove(&self, k: &u64) -> Option<u64> {
        self.0.remove(k)
    }
    fn get(&self, k: &u64) -> Option<u64> {
        self.0.get(k)
    }
    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        self.0.sorted_range(&lo, &hi)
    }
    fn range_tier(&self) -> RangeTier {
        RangeTier::PerKeyLinearizable
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    // The map's own batch entry points already chunk at the repin
    // cadence under weighted pins; forward so the suite's batch oracle
    // exercises that path rather than the trait default.
    fn insert_batch(&self, batch: &[(u64, u64)]) -> Vec<Option<u64>> {
        self.0.insert_batch(batch)
    }
    fn remove_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        self.0.remove_batch(keys)
    }
    fn get_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        self.0.get_batch(keys)
    }
}

/// Key-stripe latch count per [`HybridShard`] (a power of two).
const HYBRID_LATCHES: usize = 64;

/// One shard of the `"hybrid"` registry entry: a hash tier answering the
/// point ops and their batches, dual-written with a chromatic tier that
/// answers ordered scans.
///
/// # Consistency scope
///
/// Every mutation takes a per-key-stripe latch and writes the hash tier
/// first, then the tree. The latch serializes writers *of the same key*
/// (without it, two racing inserts could commit in opposite orders in
/// the two tiers and leave them permanently disagreeing); point reads
/// take no latch and linearize on the hash tier, which is therefore the
/// authoritative one. `range` reads only the tree tier: its scan is an
/// atomic snapshot *of the tree*, but because a concurrent mutation may
/// have committed to the hash tier and not yet to the tree, the
/// composed structure's scans are **per-key linearizable** — a scan can
/// run slightly behind the point-op truth, never ahead of it and never
/// torn within a key. When the shard is quiescent the tiers agree
/// exactly (the dual-write consistency oracle in `tests/cross_crate.rs`
/// asserts this after a settled concurrent run).
pub struct HybridShard {
    hash: HopMap<u64, u64>,
    tree: ChromaticTree<u64, u64>,
    latches: Box<[Mutex<()>]>,
}

impl Default for HybridShard {
    fn default() -> Self {
        HybridShard {
            hash: HopMap::new(),
            tree: ChromaticTree::new(),
            latches: (0..HYBRID_LATCHES).map(|_| Mutex::new(())).collect(),
        }
    }
}

impl HybridShard {
    fn latched<R>(&self, k: u64, f: impl FnOnce() -> R) -> R {
        let _latch = self.latches[(k as usize) & (HYBRID_LATCHES - 1)]
            .lock()
            .unwrap();
        f()
    }

    /// Locks every stripe a batch chunk touches, in ascending stripe
    /// order. Point ops take exactly one latch (trivially consistent with
    /// any order) and every batch writer sorts, so the acquisition order
    /// is global and deadlock-free; holding the whole set lets the tree
    /// tier run its *bulk* path (run merging included) against a hash
    /// tier that cannot change under the same keys mid-batch.
    fn latch_chunk(&self, keys: impl Iterator<Item = u64>) -> Vec<std::sync::MutexGuard<'_, ()>> {
        let mut stripes: Vec<usize> = keys.map(|k| (k as usize) & (HYBRID_LATCHES - 1)).collect();
        stripes.sort_unstable();
        stripes.dedup();
        stripes
            .into_iter()
            .map(|s| self.latches[s].lock().unwrap())
            .collect()
    }
}

impl ConcurrentMap for HybridShard {
    fn name(&self) -> &'static str {
        "hybrid"
    }
    fn insert(&self, k: u64, v: u64) -> Option<u64> {
        self.latched(k, || {
            let displaced = self.hash.insert(k, v);
            let tree_displaced = self.tree.insert(k, v);
            debug_assert_eq!(displaced, tree_displaced, "tiers diverged at insert({k})");
            displaced
        })
    }
    fn remove(&self, k: &u64) -> Option<u64> {
        self.latched(*k, || {
            let removed = self.hash.remove(k);
            let tree_removed = self.tree.remove(k);
            debug_assert_eq!(removed, tree_removed, "tiers diverged at remove({k})");
            removed
        })
    }
    fn get(&self, k: &u64) -> Option<u64> {
        self.hash.get(k) // no latch: reads linearize on the hash tier
    }
    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        self.tree.range(lo..=hi)
    }
    fn range_tier(&self) -> RangeTier {
        // The tree's scan is atomic, but it can lag a mutation committed
        // to the (authoritative) hash tier — per-key linearizable overall.
        RangeTier::PerKeyLinearizable
    }
    fn len(&self) -> usize {
        self.hash.len()
    }
    // Batches: one weighted pin per repin-cadence chunk, the chunk's
    // stripe latches taken as a sorted set ([`Self::latch_chunk`]) so the
    // tree tier can run its *bulk* path — cached-path descent plus
    // same-leaf run merging / sibling-pair collapsing — instead of one
    // point op per element. The hash tier is still written first and
    // remains authoritative; with the stripes held, no point writer can
    // slip a same-key mutation between the two tier writes.
    fn insert_batch(&self, batch: &[(u64, u64)]) -> Vec<Option<u64>> {
        let mut out = Vec::with_capacity(batch.len());
        for chunk in batch.chunks(llxscx::guard_cache::REPIN_OPS as usize) {
            let _latches = self.latch_chunk(chunk.iter().map(|&(k, _)| k));
            llxscx::guard_cache::with_guard_weighted(chunk.len() as u32, |g| {
                let displaced: Vec<Option<u64>> = chunk
                    .iter()
                    .map(|&(k, v)| self.hash.insert_in(k, v, g))
                    .collect();
                // Nested pin: the bulk path re-enters the cached guard.
                let tree_displaced = self.tree.insert_bulk(chunk);
                debug_assert_eq!(displaced, tree_displaced, "tiers diverged in insert_batch");
                out.extend(displaced);
            });
        }
        out
    }
    fn remove_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        let mut out = Vec::with_capacity(keys.len());
        for chunk in keys.chunks(llxscx::guard_cache::REPIN_OPS as usize) {
            let _latches = self.latch_chunk(chunk.iter().copied());
            llxscx::guard_cache::with_guard_weighted(chunk.len() as u32, |g| {
                let removed: Vec<Option<u64>> =
                    chunk.iter().map(|k| self.hash.remove_in(k, g)).collect();
                let tree_removed = self.tree.remove_bulk(chunk);
                debug_assert_eq!(removed, tree_removed, "tiers diverged in remove_batch");
                out.extend(removed);
            });
        }
        out
    }
    fn get_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        // Reads take no latch; chunked weighted pins like every batch path.
        let mut out = Vec::with_capacity(keys.len());
        for chunk in keys.chunks(llxscx::guard_cache::REPIN_OPS as usize) {
            llxscx::guard_cache::with_guard_weighted(chunk.len() as u32, |g| {
                out.extend(chunk.iter().map(|k| self.hash.get_in(k, g)));
            });
        }
        out
    }
}

/// The `"hybrid"` registry entry's concrete type: the sharding façade
/// over [`HybridShard`]s — heterogeneous composition, with the façade
/// contributing shard routing/grouping and each shard pairing a hash
/// tier (point ops) with a chromatic tier (ordered scans).
pub fn make_hybrid(cfg: &SuiteConfig) -> ShardedMap<HybridShard> {
    let shards = cfg.shards();
    ShardedMap::with_span(shards, cfg.shard_span().max(shards as u64), |_| {
        HybridShard::default()
    })
    .named("hybrid")
}
