//! Allocation-free per-operation latency recording for the measurement
//! harness: a fixed 64-bucket power-of-two histogram (`[u64; 64]`, one
//! per worker per op kind — no atomics, no heap, no locks anywhere near
//! the measured loop), merged after the workers join, with percentile
//! extraction for the bench artifacts (`p50_ns` / `p99_ns` / `p999_ns`).
//!
//! ## Clock
//!
//! [`now`] reads the TSC directly on x86-64 (one `rdtsc`, ~6 ns, no
//! syscall, no vDSO call) and falls back to a monotonic-`Instant` delta
//! elsewhere. Raw ticks are converted to nanoseconds only at
//! [`elapsed_ns`] via a factor calibrated once per process
//! ([`calibrate`], ~5 ms against the OS monotonic clock); `run_trial`
//! calibrates **before** spawning workers so the first measured op never
//! pays for it. Modern x86-64 TSCs are invariant and socket-synchronized,
//! which is what makes cross-`now` deltas meaningful even under
//! migration.
//!
//! ## Resolution and error bound
//!
//! Bucket `b ≥ 1` holds samples in `[2^(b-1), 2^b)` ns; bucket 0 holds
//! exact zeros. A percentile is reported as the **upper edge** of the
//! bucket containing the rank, so the reported value is never below the
//! true percentile and overshoots it by strictly less than 2× — the
//! standard trade of log-scale histograms (HdrHistogram with one
//! significant digit): 512 bytes per histogram, O(1) record, O(64)
//! merge, and tail buckets as precise (relatively) as the median's.

use std::time::Duration;

/// Number of power-of-two buckets; covers `[0, 2^62)` ns (≈ 146 years)
/// with the last bucket absorbing anything larger.
pub const BUCKETS: usize = 64;

/// A fixed-bucket log-scale latency histogram. Plain `u64` counters —
/// `record` is an index computation and an increment, nothing else.
#[derive(Clone, Copy, Debug)]
pub struct Histogram {
    counts: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            counts: [0; BUCKETS],
        }
    }

    /// Bucket index for a sample: 0 for 0, else `floor(log2(ns)) + 1`,
    /// clamped into the last bucket.
    #[inline]
    pub fn bucket(ns: u64) -> usize {
        ((u64::BITS - ns.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Upper edge (inclusive) of a bucket — what percentiles report.
    pub fn bucket_upper(b: usize) -> u64 {
        match b {
            0 => 0,
            b if b >= BUCKETS - 1 => u64::MAX,
            b => (1u64 << b) - 1,
        }
    }

    /// Records one sample (nanoseconds). Allocation-free and branch-light.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket(ns)] += 1;
    }

    /// Adds every count of `other` into `self` (worker → trial merge).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `p`-quantile (`0 < p ≤ 1`) as the upper edge of the bucket
    /// holding the rank-`⌈p·n⌉` sample; 0 on an empty histogram. The
    /// reported value is ≥ the true percentile and < 2× it (see module
    /// docs).
    pub fn percentile(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((p * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Self::bucket_upper(b);
            }
        }
        Self::bucket_upper(BUCKETS - 1)
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }
}

/// The operation kinds the harness distinguishes when recording.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum OpKind {
    /// `insert` (and `insert_batch` calls in batched mixes).
    Insert = 0,
    /// `remove` (and `remove_batch`).
    Remove = 1,
    /// `get` (and `get_batch`).
    Get = 2,
    /// Ordered `range` scans.
    Range = 3,
    /// Read-modify-write (`get` + `insert` as one timed op).
    Rmw = 4,
}

/// Number of [`OpKind`] variants.
pub const KINDS: usize = 5;

/// One histogram per op kind — the per-worker recording unit
/// (`5 × 512 B` of plain counters, stack/inline, no sharing).
#[derive(Clone, Copy, Debug)]
pub struct OpHistograms {
    hists: [Histogram; KINDS],
}

impl Default for OpHistograms {
    fn default() -> Self {
        Self::new()
    }
}

impl OpHistograms {
    /// All-empty histograms.
    pub const fn new() -> OpHistograms {
        OpHistograms {
            hists: [Histogram::new(); KINDS],
        }
    }

    /// Records a sample under an op-kind index (`OpKind as u8`,
    /// pre-generated alongside the key stream).
    #[inline]
    pub fn record(&mut self, kind: u8, ns: u64) {
        self.hists[kind as usize].record(ns);
    }

    /// The histogram of one kind.
    pub fn kind(&self, kind: OpKind) -> &Histogram {
        &self.hists[kind as u8 as usize]
    }

    /// Merges another set (worker → trial, trial → run).
    pub fn merge(&mut self, other: &OpHistograms) {
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
    }

    /// All kinds folded into one distribution — what the artifact
    /// percentiles summarize (a row is a single mix, so the blend is the
    /// workload's own op blend).
    pub fn merged(&self) -> Histogram {
        let mut out = Histogram::new();
        for h in &self.hists {
            out.merge(h);
        }
        out
    }
}

// --- clock ----------------------------------------------------------------

/// An opaque timestamp in clock units (TSC ticks on x86-64, nanoseconds
/// elsewhere). Only meaningful to [`elapsed_ns`] within one process.
#[inline]
pub fn now() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: RDTSC has no memory or register preconditions.
        unsafe { core::arch::x86_64::_rdtsc() }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        instant_ns()
    }
}

/// Nanoseconds elapsed since a [`now`] timestamp (saturating — a
/// migration across non-invariant TSCs yields 0, not a wrapped huge
/// value).
#[inline]
pub fn elapsed_ns(start: u64) -> u64 {
    let ticks = now().saturating_sub(start);
    #[cfg(target_arch = "x86_64")]
    {
        (ticks as f64 * ns_per_tick()) as u64
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        ticks
    }
}

/// Forces clock calibration now (first call measures ~5 ms of TSC
/// against `Instant`; later calls are a cached load). `run_trial` calls
/// this before spawning workers so calibration never lands inside a
/// measured region.
pub fn calibrate() {
    #[cfg(target_arch = "x86_64")]
    {
        let _ = ns_per_tick();
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = instant_ns();
    }
}

#[cfg(target_arch = "x86_64")]
fn ns_per_tick() -> f64 {
    use std::sync::OnceLock;
    static NS_PER_TICK: OnceLock<f64> = OnceLock::new();
    *NS_PER_TICK.get_or_init(|| {
        let wall = std::time::Instant::now();
        let t0 = now();
        std::thread::sleep(Duration::from_millis(5));
        let ticks = now().saturating_sub(t0).max(1);
        wall.elapsed().as_nanos() as f64 / ticks as f64
    })
}

#[cfg(not(target_arch = "x86_64"))]
fn instant_ns() -> u64 {
    use std::sync::OnceLock;
    static ANCHOR: OnceLock<std::time::Instant> = OnceLock::new();
    ANCHOR
        .get_or_init(std::time::Instant::now)
        .elapsed()
        .as_nanos() as u64
}

/// `p50_ns` / `p99_ns` / `p999_ns` of one merged distribution — the
/// summary the bench artifacts embed per result row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencySummary {
    /// Median op latency in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile op latency in nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile op latency in nanoseconds.
    pub p999_ns: u64,
}

impl LatencySummary {
    /// Summarizes a histogram.
    pub fn of(h: &Histogram) -> LatencySummary {
        LatencySummary {
            p50_ns: h.p50(),
            p99_ns: h.p99(),
            p999_ns: h.p999(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket(0), 0);
        assert_eq!(Histogram::bucket(1), 1);
        assert_eq!(Histogram::bucket(2), 2);
        assert_eq!(Histogram::bucket(3), 2);
        assert_eq!(Histogram::bucket(4), 3);
        assert_eq!(Histogram::bucket((1 << 20) - 1), 20);
        assert_eq!(Histogram::bucket(1 << 20), 21);
        assert_eq!(Histogram::bucket(u64::MAX), BUCKETS - 1);
        // Every bucket's upper edge maps back into the same bucket.
        for b in 0..BUCKETS - 1 {
            assert_eq!(
                Histogram::bucket(Histogram::bucket_upper(b)),
                b,
                "bucket {b}"
            );
        }
    }

    #[test]
    fn percentile_matches_sorted_vec_oracle_within_one_bucket() {
        // The exact oracle: the histogram percentile must be the upper
        // edge of the bucket containing the true (sorted-Vec) percentile
        // — i.e. `true ≤ reported < 2 × max(true, 1)` — for every
        // percentile we emit, across several shapes.
        let shapes: Vec<Vec<u64>> = vec![
            (1..=1000u64).collect(),
            (0..1000u64).map(|i| i * i).collect(),
            vec![5; 999].into_iter().chain([1_000_000]).collect(),
            vec![0, 0, 0, 1, 2, 3],
        ];
        for samples in shapes {
            let mut h = Histogram::new();
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for &s in &samples {
                h.record(s);
            }
            assert_eq!(h.count(), samples.len() as u64);
            for p in [0.5, 0.9, 0.99, 0.999] {
                let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                let truth = sorted[rank - 1];
                let got = h.percentile(p);
                assert_eq!(
                    got,
                    Histogram::bucket_upper(Histogram::bucket(truth)),
                    "p{p}: oracle {truth}, histogram {got}"
                );
                assert!(got >= truth, "p{p}: reported {got} below true {truth}");
                assert!(
                    got < 2 * truth.max(1),
                    "p{p}: reported {got} ≥ 2× true {truth}"
                );
            }
        }
    }

    #[test]
    fn empty_histogram_percentiles_are_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
    }

    #[test]
    fn merge_is_count_preserving_and_commutative() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..500u64 {
            a.record(i * 3);
            b.record(i * 7 + 1);
        }
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab.count(), 1000);
        assert_eq!(ab.counts, ba.counts);
        // Merging equals recording everything into one histogram.
        let mut one = Histogram::new();
        for i in 0..500u64 {
            one.record(i * 3);
            one.record(i * 7 + 1);
        }
        assert_eq!(one.counts, ab.counts);
    }

    #[test]
    fn op_histograms_split_and_merge_by_kind() {
        let mut h = OpHistograms::new();
        h.record(OpKind::Insert as u8, 100);
        h.record(OpKind::Insert as u8, 200);
        h.record(OpKind::Get as u8, 50);
        assert_eq!(h.kind(OpKind::Insert).count(), 2);
        assert_eq!(h.kind(OpKind::Get).count(), 1);
        assert_eq!(h.kind(OpKind::Range).count(), 0);
        assert_eq!(h.merged().count(), 3);
        let mut other = OpHistograms::new();
        other.record(OpKind::Rmw as u8, 9);
        h.merge(&other);
        assert_eq!(h.merged().count(), 4);
    }

    #[test]
    fn clock_is_monotone_and_calibrated() {
        calibrate();
        let t0 = now();
        std::thread::sleep(Duration::from_millis(2));
        let ns = elapsed_ns(t0);
        // 2 ms sleep must measure between 1 ms and 1 s even on a noisy
        // host — this is a calibration sanity check, not a precision one.
        assert!(
            (1_000_000..1_000_000_000).contains(&ns),
            "2ms slept, {ns} ns measured"
        );
    }
}
