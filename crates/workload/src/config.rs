//! Typed suite configuration: the **single** place the suite-construction
//! environment knobs (`NBTREE_SHARDS`, `NBTREE_SHARD_SPAN`) are parsed.
//!
//! Before this module, the `"sharded"` registry entry read its shard count
//! and keyspace span straight from the environment at every `make_map`
//! call, so every `ALL_MAPS` sweeper had to remember to *pin*
//! `NBTREE_SHARD_SPAN` to its key range via `std::env::set_var` before
//! constructing maps (six call sites), or its sharded cells silently
//! measured a one-shard boundary table. `set_var` is also a process-global
//! data race waiting to happen (it becomes `unsafe` at edition 2024).
//!
//! [`SuiteConfig`] replaces that discipline with construction-time
//! plumbing: binaries call [`SuiteConfig::from_env`] **once** at startup,
//! adapt it to the keyspace they sweep with
//! [`for_key_range`](SuiteConfig::for_key_range), and thread the value
//! through [`make_map`](crate::make_map) / [`measure`](crate::measure).
//! A mis-sized boundary table is now unrepresentable by construction: the
//! config that built the map is the config the map used, and nothing in
//! the suite mutates the environment. A CI gate (`cfgcheck`, see
//! `docs/TESTING.md`) keeps `set_var` from creeping back in.

/// Construction-time configuration for the structure registry
/// ([`make_map`](crate::make_map)) and the harness entry points.
///
/// Today this covers the sharded façade's two knobs — shard count and the
/// keyspace span its uniform boundary table splits — plus the *pinning*
/// bit that records whether the span was chosen explicitly (builder or
/// environment) or merely defaulted. Sweepers use that bit through
/// [`for_key_range`](Self::for_key_range): an explicit span is respected,
/// a defaulted one is re-sized to the key range actually swept.
///
/// # Examples
///
/// ```
/// use workload::SuiteConfig;
///
/// // Builder: 4 shards over [0, 400). Counts round to a power of two.
/// let cfg = SuiteConfig::default().with_shards(4).with_span(400);
/// assert_eq!(cfg.shards(), 4);
/// assert_eq!(cfg.shard_span(), 400);
///
/// // A sweep adapts a *defaulted* span to its key range…
/// let swept = SuiteConfig::default().for_key_range(1_000_000);
/// assert_eq!(swept.shard_span(), 1_000_000);
///
/// // …but never overrides an explicit one.
/// let pinned = SuiteConfig::default().with_span(512).for_key_range(1_000_000);
/// assert_eq!(pinned.shard_span(), 512);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SuiteConfig {
    shards: usize,
    shard_span: u64,
    /// Whether `shard_span` was chosen explicitly (env var or
    /// [`with_span`](Self::with_span)) rather than defaulted —
    /// [`for_key_range`](Self::for_key_range) only re-sizes a defaulted
    /// span.
    span_pinned: bool,
}

/// Default shard count of the `"sharded"` registry entry.
pub const DEFAULT_SHARDS: usize = 8;

/// Default keyspace span split by the `"sharded"` entry's boundary table
/// (the default bench key range).
pub const DEFAULT_SHARD_SPAN: u64 = 10_000;

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            shards: DEFAULT_SHARDS,
            shard_span: DEFAULT_SHARD_SPAN,
            span_pinned: false,
        }
    }
}

impl SuiteConfig {
    /// Reads the suite-construction knobs from the environment — the one
    /// place in the workspace they are parsed. Call once at binary
    /// startup and thread the value through; library code and tests
    /// should build configs with [`Default`] and the builder methods
    /// instead of consulting the environment.
    ///
    /// | Variable | Meaning | Default |
    /// |---|---|---|
    /// | `NBTREE_SHARDS` | shard count (rounded up to a power of two, clamped to `[1, 1024]`) | `8` |
    /// | `NBTREE_SHARD_SPAN` | keyspace span `[0, span)` split by the boundary table; setting it pins the span against [`for_key_range`](Self::for_key_range) | `10000` |
    ///
    /// Unparsable or zero values fall back to the defaults (and do not
    /// pin the span).
    pub fn from_env() -> Self {
        Self::from_lookup(|name| std::env::var(name).ok())
    }

    /// [`from_env`](Self::from_env) over an arbitrary variable source, so
    /// the parsing rules are unit-testable without touching the process
    /// environment.
    pub fn from_lookup(get: impl Fn(&str) -> Option<String>) -> Self {
        let mut cfg = SuiteConfig::default();
        if let Some(n) = get("NBTREE_SHARDS").and_then(|s| s.trim().parse::<usize>().ok()) {
            cfg = cfg.with_shards(n);
        }
        if let Some(span) = get("NBTREE_SHARD_SPAN")
            .and_then(|s| s.trim().parse::<u64>().ok())
            .filter(|&s| s > 0)
        {
            cfg = cfg.with_span(span);
        }
        cfg
    }

    /// Sets the shard count, rounded up to a power of two and clamped to
    /// `[1, 1024]` (the boundary-table constructors require a power of
    /// two; the clamp keeps a typo from allocating a million trees).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.clamp(1, 1024).next_power_of_two();
        self
    }

    /// Sets the keyspace span explicitly and **pins** it: a later
    /// [`for_key_range`](Self::for_key_range) will not re-size it. Zero
    /// is rounded up to 1 (a span must be non-empty).
    pub fn with_span(mut self, span: u64) -> Self {
        self.shard_span = span.max(1);
        self.span_pinned = true;
        self
    }

    /// Adapts a *defaulted* span to the key range a sweep is about to
    /// use, leaving an explicitly chosen span (env var or
    /// [`with_span`](Self::with_span)) untouched. Multi-range sweeps call
    /// this once per range block; the span stays un-pinned so the next
    /// block can adapt it again.
    ///
    /// This replaces the old `set_var("NBTREE_SHARD_SPAN", ..)` pinning
    /// discipline: without it, a sweep over a range much smaller than the
    /// default span piles every key into the first shard and the sharded
    /// cells measure a misconfiguration.
    pub fn for_key_range(mut self, range: u64) -> Self {
        if !self.span_pinned {
            self.shard_span = range.max(1);
        }
        self
    }

    /// Shard count of the `"sharded"` registry entry (always a power of
    /// two in `[1, 1024]`).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Keyspace span `[0, span)` split uniformly by the `"sharded"`
    /// entry's boundary table (always ≥ 1).
    pub fn shard_span(&self) -> u64 {
        self.shard_span
    }

    /// Whether the span was chosen explicitly (and is therefore immune to
    /// [`for_key_range`](Self::for_key_range)).
    pub fn span_is_pinned(&self) -> bool {
        self.span_pinned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let cfg = SuiteConfig::default();
        assert_eq!(cfg.shards(), DEFAULT_SHARDS);
        assert_eq!(cfg.shard_span(), DEFAULT_SHARD_SPAN);
        assert!(!cfg.span_is_pinned());
    }

    #[test]
    fn shard_counts_clamp_and_round_to_powers_of_two() {
        assert_eq!(SuiteConfig::default().with_shards(8).shards(), 8);
        assert_eq!(SuiteConfig::default().with_shards(5).shards(), 8);
        assert_eq!(SuiteConfig::default().with_shards(0).shards(), 1);
        assert_eq!(SuiteConfig::default().with_shards(1).shards(), 1);
        assert_eq!(SuiteConfig::default().with_shards(9999).shards(), 1024);
        assert_eq!(SuiteConfig::default().with_shards(1000).shards(), 1024);
    }

    #[test]
    fn spans_pin_and_reject_zero() {
        let cfg = SuiteConfig::default().with_span(400);
        assert_eq!(cfg.shard_span(), 400);
        assert!(cfg.span_is_pinned());
        assert_eq!(SuiteConfig::default().with_span(0).shard_span(), 1);
    }

    #[test]
    fn for_key_range_resizes_only_defaulted_spans() {
        // Defaulted span: each range block re-sizes it.
        let cfg = SuiteConfig::default().for_key_range(100);
        assert_eq!(cfg.shard_span(), 100);
        assert_eq!(cfg.for_key_range(1_000_000).shard_span(), 1_000_000);
        // Pinned span: untouched.
        let pinned = SuiteConfig::default().with_span(512);
        assert_eq!(pinned.for_key_range(100).shard_span(), 512);
        // Degenerate range still yields a legal span.
        assert_eq!(SuiteConfig::default().for_key_range(0).shard_span(), 1);
    }

    #[test]
    fn env_round_trip_through_a_lookup() {
        // The parsing rules, exercised without mutating the process
        // environment (nothing in the suite may call `set_var`; the
        // `cfgcheck` CI gate enforces that).
        let vars = |shards: Option<&str>, span: Option<&str>| {
            let (shards, span) = (shards.map(String::from), span.map(String::from));
            SuiteConfig::from_lookup(move |name| match name {
                "NBTREE_SHARDS" => shards.clone(),
                "NBTREE_SHARD_SPAN" => span.clone(),
                _ => None,
            })
        };
        let cfg = vars(Some("16"), Some("4096"));
        assert_eq!(cfg.shards(), 16);
        assert_eq!(cfg.shard_span(), 4096);
        assert!(cfg.span_is_pinned(), "env span counts as explicit");

        // Unset: defaults, span un-pinned.
        let cfg = vars(None, None);
        assert_eq!(cfg, SuiteConfig::default());

        // Rounding/clamping applies to env values too; junk and zero fall
        // back to the defaults without pinning.
        assert_eq!(vars(Some("5"), None).shards(), 8);
        assert_eq!(vars(Some("99999"), None).shards(), 1024);
        let junk = vars(Some("wat"), Some("0"));
        assert_eq!(junk, SuiteConfig::default());
        assert!(!junk.span_is_pinned());
        // Whitespace is tolerated (values often arrive via shell).
        assert_eq!(vars(None, Some(" 777 ")).shard_span(), 777);
    }
}
