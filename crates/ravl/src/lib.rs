//! # Relaxed AVL tree via the tree update template (paper §7)
//!
//! The paper reports that a first-year undergraduate produced a
//! non-blocking relaxed AVL tree (Larsen, *AVL trees with relaxed balance*)
//! from the template in under a week, performing on par with the chromatic
//! tree. This crate reproduces that exercise with a **simplified
//! rank-relaxation**: every node carries an immutable *rank*; updates leave
//! ancestor ranks stale (the relaxation), and localized template updates —
//! rank refreshes and single/double rotations — repair staleness and
//! imbalance afterwards, interleaving freely with other operations.
//!
//! Differences from Larsen's calculus (documented in DESIGN.md): rebalancing
//! here is *best-effort with a bounded number of repair passes per update*
//! rather than amortized O(log n) steps with a proven convergence bound.
//! Dictionary semantics are exact regardless — they come from the template,
//! which guarantees linearizability and lock-freedom independently of any
//! balancing decisions; ranks only steer rotations.

#![warn(missing_docs)]

use llxscx::epoch::{Atomic, Guard, Shared};
use llxscx::guard_cache::with_guard;
use llxscx::{llx, scx, Llx, LlxHandle, ScxArgs};
use nbtree::node::Node;
use std::sync::atomic::Ordering;

type H<'g, K, V> = LlxHandle<'g, Node<K, V>>;

/// A lock-free ordered map: leaf-oriented BST with relaxed AVL-style
/// rebalancing. The node type is shared with the chromatic tree; its
/// `weight` field stores the *rank* here.
pub struct RelaxedAvl<K: Send + Sync + 'static, V: Send + Sync + 'static> {
    entry: Atomic<Node<K, V>>,
}

// SAFETY: all shared state lives behind epoch-managed `Atomic` links; the
// `K: Send + Sync` / `V: Send + Sync` bounds cover the payloads.
unsafe impl<K: Send + Sync + 'static, V: Send + Sync + 'static> Send for RelaxedAvl<K, V> {}
// SAFETY: same argument as `Send`.
unsafe impl<K: Send + Sync + 'static, V: Send + Sync + 'static> Sync for RelaxedAvl<K, V> {}

/// (grandparent, parent, leaf) triple returned by the pure-read search.
type SearchPath<'g, K, V> = (
    Shared<'g, Node<K, V>>,
    Shared<'g, Node<K, V>>,
    Shared<'g, Node<K, V>>,
);

/// Repair passes per update: enough to fix the whole path in quiescence
/// (ranks only need one pass per level), bounded so no interleaving can
/// capture an updater indefinitely.
const MAX_REPAIR_PASSES: usize = 64;

fn rank<K: Send + Sync + 'static, V: Send + Sync + 'static>(n: Shared<'_, Node<K, V>>) -> u32 {
    if n.is_null() {
        0
    } else {
        // SAFETY: caller holds a guard; ranks (weights) immutable.
        unsafe { n.deref() }.weight()
    }
}

impl<K, V> RelaxedAvl<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// An empty map.
    pub fn new() -> Self {
        // SAFETY: construction — the tree is not yet shared with any thread.
        let guard = unsafe { llxscx::epoch::unprotected() };
        let leaf = Node::leaf(None, None, 0).into_shared(guard);
        RelaxedAvl {
            entry: Atomic::from(Node::internal(None, 0, leaf, Shared::null())),
        }
    }

    fn entry<'g>(&self, guard: &'g Guard) -> Shared<'g, Node<K, V>> {
        // SEQCST: entry pointer participates in the SCX total order.
        self.entry.load(Ordering::SeqCst, guard)
    }

    fn search<'g>(&self, key: &K, guard: &'g Guard) -> SearchPath<'g, K, V> {
        let mut gp = Shared::null();
        let mut p = self.entry(guard);
        // SAFETY: entry never removed; traversal under guard (C3).
        let mut l = unsafe { p.deref() }.read_child(0, guard);
        loop {
            // SAFETY: children of a live internal node are non-null (leaf-oriented
            // tree) and reachable under `guard`.
            let l_ref = unsafe { l.deref() };
            if l_ref.is_leaf(guard) {
                return (gp, p, l);
            }
            gp = p;
            p = l;
            let dir = if l_ref.route_left(key) { 0 } else { 1 };
            l = l_ref.read_child(dir, guard);
        }
    }

    /// Lookup with plain reads.
    pub fn get(&self, key: &K) -> Option<V> {
        with_guard(|guard| {
            let (_, _, l) = self.search(key, guard);
            // SAFETY: `search` returns a leaf reached under `guard`; never null.
            let leaf = unsafe { l.deref() };
            if leaf.key_eq(key) {
                leaf.value().cloned()
            } else {
                None
            }
        })
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `key → value`; returns the displaced value.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        loop {
            let done = with_guard(|guard| {
                let (_, p, l) = self.search(&key, guard);
                let hp = llx_ok(p, guard)?;
                let dir = if hp.left() == l {
                    0
                } else if hp.right() == l {
                    1
                } else {
                    return None;
                };
                let hl = llx_ok(l, guard)?;
                let leaf = hl.node_ref();
                let (new, finalize, old, created) = if leaf.key_eq(&key) {
                    let old = leaf.value().cloned();
                    let n = Node::leaf(Some(key.clone()), Some(value.clone()), leaf.weight())
                        .into_shared(guard);
                    (n, 0b10u8, old, vec![n])
                } else {
                    let new_leaf =
                        Node::leaf(Some(key.clone()), Some(value.clone()), 0).into_shared(guard);
                    let l_copy = Node::leaf(leaf.key().cloned(), leaf.value().cloned(), 0)
                        .into_shared(guard);
                    // New internal rank 1: correct locally; ancestors go stale —
                    // that is the relaxation the repair pass fixes.
                    let n = if leaf.route_left(&key) {
                        Node::internal(leaf.key().cloned(), 1, new_leaf, l_copy)
                    } else {
                        Node::internal(Some(key.clone()), 1, l_copy, new_leaf)
                    }
                    .into_shared(guard);
                    (n, 0b10u8, None, vec![new_leaf, l_copy, n])
                };
                let ok = scx(
                    &ScxArgs {
                        v: &[hp, hl],
                        finalize,
                        fld_record: 0,
                        fld_idx: dir,
                        new,
                    },
                    guard,
                );
                if ok {
                    return Some(old);
                }
                for n in created {
                    // SAFETY: never published.
                    unsafe { llxscx::reclaim::dispose_record(n.as_raw()) };
                }
                None
            });
            if let Some(old) = done {
                self.repair(&key);
                return old;
            }
        }
    }

    /// Removes `key`; returns its value.
    pub fn remove(&self, key: &K) -> Option<V> {
        loop {
            let done = with_guard(|guard| {
                let (gp, p, l) = self.search(key, guard);
                // SAFETY: `search` returns a leaf reached under `guard`; never null.
                if !unsafe { l.deref() }.key_eq(key) {
                    return Some((None, false));
                }
                if gp.is_null() {
                    return Some((None, false));
                }
                let hgp = llx_ok(gp, guard)?;
                let dir = if hgp.left() == p {
                    0
                } else if hgp.right() == p {
                    1
                } else {
                    return None;
                };
                let hp = llx_ok(p, guard)?;
                let (sib, l_is_left) = if hp.left() == l {
                    (hp.right(), true)
                } else if hp.right() == l {
                    (hp.left(), false)
                } else {
                    return None;
                };
                let hl = llx_ok(l, guard)?;
                let hs = llx_ok(sib, guard)?;
                let s_ref = hs.node_ref();
                let new = if s_ref.is_leaf(guard) {
                    Node::leaf(s_ref.key().cloned(), s_ref.value().cloned(), s_ref.weight())
                } else {
                    Node::internal(s_ref.key().cloned(), s_ref.weight(), hs.left(), hs.right())
                }
                .into_shared(guard);
                let v = if l_is_left {
                    [hgp, hp, hl, hs]
                } else {
                    [hgp, hp, hs, hl]
                };
                let ok = scx(
                    &ScxArgs {
                        v: &v,
                        finalize: 0b1110,
                        fld_record: 0,
                        fld_idx: dir,
                        new,
                    },
                    guard,
                );
                if ok {
                    let old = hl.node_ref().value().cloned();
                    return Some((old, true));
                }
                // SAFETY: never published.
                unsafe { llxscx::reclaim::dispose_record(new.as_raw()) };
                None
            });
            if let Some((old, fix)) = done {
                if fix {
                    self.repair(key);
                }
                return old;
            }
        }
    }

    /// Bounded repair: walk the search path, fix the first stale-rank or
    /// imbalanced node with one localized template update, restart; stop
    /// after a clean walk or `MAX_REPAIR_PASSES`.
    fn repair(&self, key: &K) {
        for _ in 0..MAX_REPAIR_PASSES {
            let fixed = with_guard(|guard| {
                let mut p = self.entry(guard);
                // SAFETY: the entry sentinel is never reclaimed.
                let mut n = unsafe { p.deref() }.read_child(0, guard);
                let mut fixed = false;
                loop {
                    if n.is_null() {
                        break;
                    }
                    // SAFETY: `n` is non-null (checked above) and reached under `guard`.
                    let n_ref = unsafe { n.deref() };
                    if n_ref.is_leaf(guard) {
                        break;
                    }
                    let (cl, cr) = (n_ref.read_child(0, guard), n_ref.read_child(1, guard));
                    let (rl, rr) = (rank(cl), rank(cr));
                    let want = 1 + rl.max(rr);
                    let skew = rl.abs_diff(rr);
                    if !n_ref.is_sentinel_key() && (n_ref.weight() != want || skew >= 2) {
                        fixed = self.fix_at(p, n, guard);
                        break;
                    }
                    p = n;
                    let dir = if n_ref.route_left(key) { 0 } else { 1 };
                    n = n_ref.read_child(dir, guard);
                }
                fixed
            });
            if !fixed {
                return; // clean walk (or unfixable this pass: bounded retry)
            }
        }
    }

    /// One localized fix at `n` (child of `p`): rank refresh if balanced,
    /// otherwise an AVL single/double rotation — each a template instance.
    fn fix_at<'g>(
        &self,
        p: Shared<'g, Node<K, V>>,
        n: Shared<'g, Node<K, V>>,
        guard: &'g Guard,
    ) -> bool {
        let Some(hp) = llx_ok(p, guard) else {
            return false;
        };
        let dir = if hp.left() == n {
            0
        } else if hp.right() == n {
            1
        } else {
            return false;
        };
        let Some(hn) = llx_ok(n, guard) else {
            return false;
        };
        let (rl, rr) = (rank(hn.left()), rank(hn.right()));
        if rl.abs_diff(rr) < 2 {
            // Rank refresh: replace by a copy with the recomputed rank.
            let new = Node::internal(
                hn.node_ref().key().cloned(),
                1 + rl.max(rr),
                hn.left(),
                hn.right(),
            )
            .into_shared(guard);
            let ok = scx(
                &ScxArgs {
                    v: &[hp, hn],
                    finalize: 0b10,
                    fld_record: 0,
                    fld_idx: dir,
                    new,
                },
                guard,
            );
            if !ok {
                // SAFETY: never published.
                unsafe { llxscx::reclaim::dispose_record(new.as_raw()) };
            }
            return ok;
        }
        // Rotation toward the short side. `heavy` = taller child index.
        let heavy = if rl > rr { 0 } else { 1 };
        let light = 1 - heavy;
        let c = hn.child(heavy);
        let Some(hc) = llx_ok(c, guard) else {
            return false;
        };
        if hc.node_ref().is_leaf(guard) {
            return false; // stale ranks below; refresh will happen there
        }
        let (inner, outer) = (hc.child(light), hc.child(heavy));
        let (created, new, v, finalize): (Vec<_>, _, Vec<H<K, V>>, u8) =
            if rank(outer) >= rank(inner) {
                // Single rotation: c rises.
                let nn = mk(
                    hn.node_ref().key(),
                    1 + rank(inner).max(rank(hn.child(light))),
                    heavy,
                    inner,
                    hn.child(light),
                    guard,
                );
                // SAFETY: `nn` was allocated by this rotation; non-null by construction.
                let top_rank = 1 + rank(outer).max(unsafe { nn.deref() }.weight());
                let top = mk(hc.node_ref().key(), top_rank, heavy, outer, nn, guard);
                (vec![nn, top], top, vec![hp, hn, hc], 0b110)
            } else {
                // Double rotation: c's inner child rises.
                let Some(hi) = llx_ok(inner, guard) else {
                    return false;
                };
                if hi.node_ref().is_leaf(guard) {
                    return false;
                }
                let (gi, go) = (hi.child(light), hi.child(heavy));
                let nc = mk(
                    hc.node_ref().key(),
                    1 + rank(outer).max(rank(go)),
                    heavy,
                    outer,
                    go,
                    guard,
                );
                let nn = mk(
                    hn.node_ref().key(),
                    1 + rank(gi).max(rank(hn.child(light))),
                    heavy,
                    gi,
                    hn.child(light),
                    guard,
                );
                // SAFETY: `nc` was allocated by this rotation; non-null by construction.
                let top_rank = 1 + unsafe { nc.deref() }
                    .weight()
                    // SAFETY: `nn` likewise.
                    .max(unsafe { nn.deref() }.weight());
                let top = mk(hi.node_ref().key(), top_rank, heavy, nc, nn, guard);
                (vec![nc, nn, top], top, vec![hp, hn, hc, hi], 0b1110)
            };
        let ok = scx(
            &ScxArgs {
                v: &v,
                finalize,
                fld_record: 0,
                fld_idx: dir,
                new,
            },
            guard,
        );
        if !ok {
            for c in created {
                // SAFETY: never published.
                unsafe { llxscx::reclaim::dispose_record(c.as_raw()) };
            }
        }
        ok
    }

    /// All pairs with keys in `bounds`, sorted — an atomic snapshot via the
    /// shared VLX-validated scan of [`nbtree::range`] (same node layout and
    /// sentinel scheme as the chromatic tree; ranks are irrelevant to the
    /// scan, which only follows routing keys).
    pub fn range<B: std::ops::RangeBounds<K>>(&self, bounds: B) -> Vec<(K, V)> {
        loop {
            let out = with_guard(|guard| nbtree::try_range_scan(self.entry(guard), &bounds, guard));
            if let Some(out) = out {
                return out;
            }
        }
    }

    /// Number of keys (O(n) snapshot).
    pub fn len(&self) -> usize {
        with_guard(|guard| {
            let mut count = 0;
            let mut stack = vec![self.entry(guard)];
            while let Some(x) = stack.pop() {
                if x.is_null() {
                    continue;
                }
                // SAFETY: `x` is non-null (checked above) and reached under `guard`.
                let node = unsafe { x.deref() };
                if node.is_leaf(guard) {
                    if !node.is_sentinel_key() {
                        count += 1;
                    }
                } else {
                    stack.push(node.read_child(0, guard));
                    stack.push(node.read_child(1, guard));
                }
            }
            count
        })
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sorted snapshot of the contents.
    pub fn collect(&self) -> Vec<(K, V)> {
        fn rec<K: Clone + Send + Sync + 'static, V: Clone + Send + Sync + 'static>(
            x: Shared<'_, Node<K, V>>,
            out: &mut Vec<(K, V)>,
            guard: &Guard,
        ) {
            if x.is_null() {
                return;
            }
            // SAFETY: `x` is non-null (checked above) and reached under `guard`.
            let node = unsafe { x.deref() };
            if node.is_leaf(guard) {
                if let (Some(k), Some(v)) = (node.key(), node.value()) {
                    out.push((k.clone(), v.clone()));
                }
            } else {
                rec(node.read_child(0, guard), out, guard);
                rec(node.read_child(1, guard), out, guard);
            }
        }
        with_guard(|guard| {
            let mut out = Vec::new();
            rec(self.entry(guard), &mut out, guard);
            out
        })
    }

    /// Longest root-to-leaf path (diagnostics).
    pub fn height(&self) -> usize {
        fn rec<K: Send + Sync + 'static, V: Send + Sync + 'static>(
            x: Shared<'_, Node<K, V>>,
            guard: &Guard,
        ) -> usize {
            if x.is_null() {
                return 0;
            }
            // SAFETY: `x` is non-null (checked above) and reached under `guard`.
            let node = unsafe { x.deref() };
            if node.is_leaf(guard) {
                return 1;
            }
            1 + rec(node.read_child(0, guard), guard).max(rec(node.read_child(1, guard), guard))
        }
        with_guard(|guard| rec(self.entry(guard), guard).saturating_sub(2))
    }
}

fn llx_ok<'g, K: Send + Sync + 'static, V: Send + Sync + 'static>(
    n: Shared<'g, Node<K, V>>,
    guard: &'g Guard,
) -> Option<H<'g, K, V>> {
    match llx(n, guard) {
        Llx::Snapshot(h) => Some(h),
        _ => None,
    }
}

fn mk<'g, K: Ord + Clone + Send + Sync + 'static, V: Clone + Send + Sync + 'static>(
    key: Option<&K>,
    rank: u32,
    heavy: usize,
    child_heavy: Shared<'g, Node<K, V>>,
    child_light: Shared<'g, Node<K, V>>,
    guard: &'g Guard,
) -> Shared<'g, Node<K, V>> {
    let (l, r) = if heavy == 0 {
        (child_heavy, child_light)
    } else {
        (child_light, child_heavy)
    };
    Node::internal(key.cloned(), rank, l, r).into_shared(guard)
}

impl<K, V> Default for RelaxedAvl<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Send + Sync + 'static, V: Send + Sync + 'static> Drop for RelaxedAvl<K, V> {
    fn drop(&mut self) {
        // SAFETY: exclusive `&mut self` in Drop — no concurrent readers, so the
        // unprotected guard is sound.
        let guard = unsafe { llxscx::epoch::unprotected() };
        // SEQCST: teardown/cold path; kept uniform with the entry's accesses.
        let mut stack = vec![self.entry.load(Ordering::SeqCst, guard)];
        while let Some(x) = stack.pop() {
            if x.is_null() {
                continue;
            }
            // SAFETY: exclusive access; each node reachable once.
            unsafe {
                let node = x.deref();
                stack.push(node.read_child(0, guard));
                stack.push(node.read_child(1, guard));
                llxscx::reclaim::dispose_record(x.as_raw());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn basics() {
        let t = RelaxedAvl::new();
        assert_eq!(t.insert(1, 10), None);
        assert_eq!(t.insert(1, 11), Some(10));
        assert_eq!(t.get(&1), Some(11));
        assert_eq!(t.remove(&1), Some(11));
        assert_eq!(t.remove(&1), None);
        assert!(t.is_empty());
    }

    #[test]
    fn random_against_model() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let t = RelaxedAvl::new();
        let mut model = BTreeMap::new();
        for step in 0..6000u64 {
            let k = rng.gen_range(0..300u64);
            match rng.gen_range(0..3) {
                0 => assert_eq!(t.insert(k, step), model.insert(k, step)),
                1 => assert_eq!(t.remove(&k), model.remove(&k)),
                _ => assert_eq!(t.get(&k), model.get(&k).copied()),
            }
        }
        assert_eq!(t.collect(), model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn range_matches_model() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        let t = RelaxedAvl::new();
        let mut model = BTreeMap::new();
        for step in 0..2000u64 {
            let k = rng.gen_range(0..256u64);
            if rng.gen_bool(0.7) {
                t.insert(k, step);
                model.insert(k, step);
            } else {
                t.remove(&k);
                model.remove(&k);
            }
            let lo = rng.gen_range(0..256u64);
            let hi = lo + rng.gen_range(0..64u64);
            let expect: Vec<_> = model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
            assert_eq!(t.range(lo..=hi), expect, "[{lo}, {hi}]");
        }
        assert_eq!(t.range(..), model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn rotations_keep_ascending_input_shallow() {
        let t = RelaxedAvl::new();
        let n = 4096u64;
        for i in 0..n {
            t.insert(i, i);
        }
        let h = t.height();
        // Without rebalancing the height would be n; with best-effort
        // relaxed rotations it must stay within a small factor of log2(n).
        assert!(h <= 40, "height {h} suggests rebalancing is not working");
        for i in 0..n {
            assert_eq!(t.get(&i), Some(i));
        }
    }

    #[test]
    fn concurrent_stripes() {
        use std::sync::Arc;
        let t = Arc::new(RelaxedAvl::new());
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    let base = tid * 1500;
                    for i in 0..1500 {
                        assert_eq!(t.insert(base + i, i), None);
                    }
                    for i in (0..1500).step_by(2) {
                        assert_eq!(t.remove(&(base + i)), Some(i));
                    }
                });
            }
        });
        assert_eq!(t.len(), 4 * 750);
    }
}
