//! A one-shot response slot with both a sync and an async receive side.
//!
//! The flusher completes responses from a plain worker thread, while a
//! client may be a blocked thread *or* an async task — so the slot
//! carries a mutex+condvar for the sync side and a stored [`Waker`] for
//! the async side, and [`Sender::send`] signals both. Exactly one value
//! crosses, exactly once; the service guarantees every accepted request
//! is completed (the flusher drains the queue before shutting down), so
//! the receiver never needs a "sender dropped" limbo state.

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};

enum State<T> {
    /// Nothing sent, nobody polling.
    Empty,
    /// An async receiver registered interest.
    Waiting(Waker),
    /// The value arrived and awaits pickup.
    Full(T),
    /// The value was taken; any further poll is a caller bug.
    Taken,
}

/// The shared slot: state under a mutex, a condvar for sync waiters.
struct Slot<T> {
    state: Mutex<State<T>>,
    cvar: Condvar,
}

/// Creates a connected sender/receiver pair.
pub fn channel<T: Send>() -> (Sender<T>, Receiver<T>) {
    let slot = Arc::new(Slot {
        state: Mutex::new(State::Empty),
        cvar: Condvar::new(),
    });
    (Sender { slot: slot.clone() }, Receiver { slot })
}

/// The completing half, held by the flusher. Consumed by [`send`](Sender::send).
pub struct Sender<T> {
    slot: Arc<Slot<T>>,
}

impl<T: Send> Sender<T> {
    /// Delivers the value, waking a parked sync waiter and/or a
    /// registered async waker.
    pub fn send(self, value: T) {
        let waker = {
            let mut state = self.slot.state.lock().unwrap();
            match std::mem::replace(&mut *state, State::Full(value)) {
                State::Waiting(w) => Some(w),
                _ => None,
            }
        };
        self.slot.cvar.notify_all();
        // Wake outside the lock: the woken task may poll immediately.
        if let Some(w) = waker {
            w.wake();
        }
    }
}

/// The receiving half: a [`Future`] resolving to the value, or a
/// blocking [`wait`](Receiver::wait) for sync callers.
pub struct Receiver<T> {
    slot: Arc<Slot<T>>,
}

impl<T: Send> Receiver<T> {
    /// Blocks the calling thread until the value arrives.
    pub fn wait(self) -> T {
        let mut state = self.slot.state.lock().unwrap();
        loop {
            match std::mem::replace(&mut *state, State::Taken) {
                State::Full(v) => return v,
                other => {
                    // Put the non-value state back (it may hold a waker
                    // from an earlier async poll of this same receiver)
                    // and park.
                    *state = other;
                    state = self.slot.cvar.wait(state).unwrap();
                }
            }
        }
    }

    /// Whether the value has arrived (without consuming it).
    pub fn is_ready(&self) -> bool {
        matches!(*self.slot.state.lock().unwrap(), State::Full(_))
    }
}

impl<T: Send> Future for Receiver<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut state = self.slot.state.lock().unwrap();
        match std::mem::replace(&mut *state, State::Taken) {
            State::Full(v) => Poll::Ready(v),
            State::Taken => panic!("oneshot receiver polled after completion"),
            State::Empty | State::Waiting(_) => {
                // Replace (not merge) the stored waker: the latest poll's
                // context is the one that must be woken.
                *state = State::Waiting(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_then_wait() {
        let (tx, rx) = channel();
        tx.send(5u64);
        assert!(rx.is_ready());
        assert_eq!(rx.wait(), 5);
    }

    #[test]
    fn wait_parks_until_cross_thread_send() {
        let (tx, rx) = channel();
        let h = std::thread::spawn(move || rx.wait());
        tx.send(11u64);
        assert_eq!(h.join().unwrap(), 11);
    }

    #[test]
    fn future_side_registers_waker_and_resolves() {
        let (tx, mut rx) = channel();
        assert!(crate::exec::poll_now(&mut rx).is_pending());
        assert!(crate::exec::poll_now(&mut rx).is_pending(), "re-poll ok");
        tx.send(3u64);
        assert_eq!(crate::exec::poll_now(&mut rx), Poll::Ready(3));
    }

    #[test]
    #[should_panic(expected = "polled after completion")]
    fn poll_after_completion_panics() {
        let (tx, mut rx) = channel();
        tx.send(1u64);
        let _ = crate::exec::poll_now(&mut rx);
        let _ = crate::exec::poll_now(&mut rx);
    }
}
