//! The flusher's injectable time source.
//!
//! Every deadline decision in the service goes through a [`Clock`], so
//! the flush policy is a pure function of (queue state, `now_ns`): prod
//! wires in [`RealClock`] and the deterministic batteries a
//! [`MockClock`] they advance by hand — every deadline path is then a
//! schedule the test enumerates, not a race it hopes to win.
//!
//! [`RealClock`] mirrors the harness clock in `workload::latency`: one
//! `rdtsc` per reading on x86-64 (~6 ns, no syscall) scaled by a factor
//! calibrated once against the OS monotonic clock, with an
//! `Instant`-anchor fallback elsewhere. It is duplicated rather than
//! imported because `service` sits *beside* `workload` in the layering
//! (both front ends over `sharded::ConcurrentMap`) — depending on the
//! whole harness for 30 lines of clock would invert that.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonic nanosecond clock the flusher consults for deadlines.
/// Implementations must be cheap: the flusher reads it once per submit
/// in passthrough configurations.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary fixed origin (process start for
    /// [`RealClock`], zero for [`MockClock`]). Monotone non-decreasing.
    fn now_ns(&self) -> u64;
}

/// The production clock: TSC-based on x86-64, `Instant`-based elsewhere.
pub struct RealClock {
    /// Tick value at construction; readings are deltas from here.
    anchor: u64,
    /// Nanoseconds per tick (1.0 on the `Instant` fallback).
    ns_per_tick: f64,
}

impl RealClock {
    /// Calibrates (first construction measures ~5 ms of TSC against the
    /// OS clock; the factor is cached process-wide) and anchors at now.
    pub fn new() -> RealClock {
        RealClock {
            anchor: raw_ticks(),
            ns_per_tick: ns_per_tick(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now_ns(&self) -> u64 {
        let ticks = raw_ticks().saturating_sub(self.anchor);
        (ticks as f64 * self.ns_per_tick) as u64
    }
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn raw_ticks() -> u64 {
    // SAFETY: RDTSC has no memory or register preconditions.
    unsafe { core::arch::x86_64::_rdtsc() }
}

#[cfg(target_arch = "x86_64")]
fn ns_per_tick() -> f64 {
    use std::sync::OnceLock;
    static NS_PER_TICK: OnceLock<f64> = OnceLock::new();
    *NS_PER_TICK.get_or_init(|| {
        let wall = std::time::Instant::now();
        let t0 = raw_ticks();
        std::thread::sleep(Duration::from_millis(5));
        let ticks = raw_ticks().saturating_sub(t0).max(1);
        wall.elapsed().as_nanos() as f64 / ticks as f64
    })
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn raw_ticks() -> u64 {
    use std::sync::OnceLock;
    static ANCHOR: OnceLock<std::time::Instant> = OnceLock::new();
    ANCHOR
        .get_or_init(std::time::Instant::now)
        .elapsed()
        .as_nanos() as u64
}

#[cfg(not(target_arch = "x86_64"))]
fn ns_per_tick() -> f64 {
    1.0
}

/// A manually-advanced clock for deterministic tests: time moves only
/// when the test says so, so "the deadline fires exactly at
/// `max_delay`" is an assertable schedule rather than a sleep.
#[derive(Default)]
pub struct MockClock {
    ns: AtomicU64,
}

impl MockClock {
    /// A clock at t = 0.
    pub fn new() -> MockClock {
        MockClock::default()
    }

    /// Advances time by `d`.
    pub fn advance(&self, d: Duration) {
        // SEQCST: virtual test clock; not hot, simplest correct choice.
        self.ns.fetch_add(d.as_nanos() as u64, Ordering::SeqCst);
    }

    /// Advances time by `ns` nanoseconds.
    pub fn advance_ns(&self, ns: u64) {
        // SEQCST: virtual test clock; not hot, simplest correct choice.
        self.ns.fetch_add(ns, Ordering::SeqCst);
    }
}

impl Clock for MockClock {
    fn now_ns(&self) -> u64 {
        // SEQCST: virtual test clock; not hot, simplest correct choice.
        self.ns.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotone_and_roughly_calibrated() {
        let c = RealClock::new();
        let t0 = c.now_ns();
        std::thread::sleep(Duration::from_millis(2));
        let t1 = c.now_ns();
        assert!(t1 >= t0);
        // 2 ms slept must read between 1 ms and 1 s — a calibration
        // sanity check, not a precision one (noisy CI hosts).
        assert!(
            (1_000_000..1_000_000_000).contains(&(t1 - t0)),
            "elapsed {} ns",
            t1 - t0
        );
    }

    #[test]
    fn mock_clock_moves_only_when_advanced() {
        let c = MockClock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 0);
        c.advance(Duration::from_micros(3));
        assert_eq!(c.now_ns(), 3_000);
        c.advance_ns(7);
        assert_eq!(c.now_ns(), 3_007);
    }
}
