//! A minimal hand-rolled executor: [`block_on`] for synchronous callers
//! and a fixed-size [`Pool`] of worker loops for driving many client
//! futures concurrently. No `futures` crate, no `tokio` — wakers are
//! built from raw vtables over `Arc`s, which is all the service's
//! oneshot-response futures need.
//!
//! The design is the textbook two-piece split:
//!
//! * [`block_on`] parks the calling thread between polls; the waker
//!   unparks it. One mutex+condvar pair per call, no global state.
//! * [`Pool`] keeps a shared injector queue of tasks. A task's waker
//!   re-enqueues the task; workers pop and poll. A task is a future
//!   pinned in a box behind a mutex, so a wake that races the poll
//!   simply re-queues the task and the next worker serializes on the
//!   task lock — no lost wakeup, at worst one redundant poll.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

// --- block_on --------------------------------------------------------------

/// The parking primitive behind [`block_on`]: a boolean token under a
/// mutex. `unpark` before `park` leaves the token set, so a wake that
/// lands between the poll returning `Pending` and the thread actually
/// parking is never lost.
struct Parker {
    woken: Mutex<bool>,
    cvar: Condvar,
}

impl Parker {
    fn new() -> Parker {
        Parker {
            woken: Mutex::new(false),
            cvar: Condvar::new(),
        }
    }

    fn park(&self) {
        let mut woken = self.woken.lock().unwrap();
        while !*woken {
            woken = self.cvar.wait(woken).unwrap();
        }
        *woken = false;
    }

    fn unpark(&self) {
        *self.woken.lock().unwrap() = true;
        self.cvar.notify_one();
    }
}

/// Builds a [`Waker`] whose wake unparks `parker`. The vtable manages
/// the `Arc`'s strong count by hand: `clone` increments, `wake`
/// consumes, `wake_by_ref` borrows, `drop` decrements.
fn parker_waker(parker: Arc<Parker>) -> Waker {
    // SAFETY: vtable contract — `data` is an `Arc<Parker>` from `Arc::into_raw`.
    unsafe fn clone(data: *const ()) -> RawWaker {
        // SAFETY: `data` came from `Arc::into_raw` and the count is
        // incremented before a second raw handle exists.
        unsafe { Arc::increment_strong_count(data as *const Parker) };
        RawWaker::new(data, &VTABLE)
    }
    // SAFETY: vtable contract — called at most once with the waker's handle.
    unsafe fn wake(data: *const ()) {
        // SAFETY: consumes the handle this waker owned.
        unsafe { Arc::from_raw(data as *const Parker) }.unpark();
    }
    // SAFETY: vtable contract — `data` stays valid for the call's duration.
    unsafe fn wake_by_ref(data: *const ()) {
        // SAFETY: borrows without touching the count.
        unsafe { &*(data as *const Parker) }.unpark();
    }
    // SAFETY: vtable contract — the waker's final use of `data`.
    unsafe fn drop_raw(data: *const ()) {
        // SAFETY: releases the handle this waker owned.
        drop(unsafe { Arc::from_raw(data as *const Parker) });
    }
    static VTABLE: RawWakerVTable = RawWakerVTable::new(clone, wake, wake_by_ref, drop_raw);
    let raw = RawWaker::new(Arc::into_raw(parker) as *const (), &VTABLE);
    // SAFETY: the vtable above upholds the RawWaker contract (clone
    // increments, wake/drop consume exactly one count each).
    unsafe { Waker::from_raw(raw) }
}

/// Drives a future to completion on the calling thread, parking between
/// polls. This is the sync↔async bridge the service's clients use: a
/// worker thread `block_on`s its response futures, an async task awaits
/// them directly.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let parker = Arc::new(Parker::new());
    let waker = parker_waker(parker.clone());
    let mut cx = Context::from_waker(&waker);
    let mut fut = std::pin::pin!(fut);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => parker.park(),
        }
    }
}

/// A waker that does nothing — what the deterministic test batteries
/// poll with when they want to *observe* readiness without any
/// scheduling side effects (see [`poll_now`]).
pub fn noop_waker() -> Waker {
    fn raw() -> RawWaker {
        // SAFETY: carries no data; nothing to uphold.
        unsafe fn clone(_: *const ()) -> RawWaker {
            raw()
        }
        // SAFETY: carries no data; nothing to uphold.
        unsafe fn nop(_: *const ()) {}
        static VTABLE: RawWakerVTable = RawWakerVTable::new(clone, nop, nop, nop);
        RawWaker::new(std::ptr::null(), &VTABLE)
    }
    // SAFETY: every vtable entry is a no-op over a null data pointer.
    unsafe { Waker::from_raw(raw()) }
}

/// Polls an `Unpin` future exactly once with a [`noop_waker`]. The
/// deterministic batteries use this to assert "Pending before the flush,
/// Ready after" without threads, sleeps or real wakers.
pub fn poll_now<F: Future + Unpin>(fut: &mut F) -> Poll<F::Output> {
    let waker = noop_waker();
    let mut cx = Context::from_waker(&waker);
    Pin::new(fut).poll(&mut cx)
}

// --- thread pool -----------------------------------------------------------

/// A spawned task: the future, pinned and boxed, behind a mutex. `None`
/// once complete — a stale wake of a finished task re-enqueues it, the
/// polling worker sees `None` and drops it.
struct Task {
    fut: Mutex<Option<Pin<Box<dyn Future<Output = ()> + Send>>>>,
    pool: Weak<PoolShared>,
}

impl Task {
    /// Re-enqueues this task on its pool (the wake path). A task whose
    /// pool is gone is simply dropped — nothing left to run it.
    fn schedule(self: &Arc<Task>) {
        if let Some(pool) = self.pool.upgrade() {
            pool.push(self.clone());
        }
    }
}

/// Builds a [`Waker`] that re-enqueues `task`; same manual `Arc`
/// counting as the parker waker.
fn task_waker(task: Arc<Task>) -> Waker {
    // SAFETY: vtable contract — `data` is an `Arc<Task>` from `Arc::into_raw`.
    unsafe fn clone(data: *const ()) -> RawWaker {
        // SAFETY: as in `parker_waker`.
        unsafe { Arc::increment_strong_count(data as *const Task) };
        RawWaker::new(data, &VTABLE)
    }
    // SAFETY: vtable contract — called at most once with the waker's handle.
    unsafe fn wake(data: *const ()) {
        // SAFETY: consumes the waker's handle.
        unsafe { Arc::from_raw(data as *const Task) }.schedule();
    }
    // SAFETY: vtable contract — `data` stays valid for the call's duration.
    unsafe fn wake_by_ref(data: *const ()) {
        // SAFETY: a borrowed Arc view — ManuallyDrop keeps the count
        // untouched; `schedule` clones internally.
        let task = unsafe { std::mem::ManuallyDrop::new(Arc::from_raw(data as *const Task)) };
        task.schedule();
    }
    // SAFETY: vtable contract — the waker's final use of `data`.
    unsafe fn drop_raw(data: *const ()) {
        // SAFETY: releases the waker's handle.
        drop(unsafe { Arc::from_raw(data as *const Task) });
    }
    static VTABLE: RawWakerVTable = RawWakerVTable::new(clone, wake, wake_by_ref, drop_raw);
    let raw = RawWaker::new(Arc::into_raw(task) as *const (), &VTABLE);
    // SAFETY: the vtable upholds the RawWaker contract.
    unsafe { Waker::from_raw(raw) }
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    cvar: Condvar,
}

struct PoolQueue {
    ready: VecDeque<Arc<Task>>,
    shutdown: bool,
}

impl PoolShared {
    fn push(&self, task: Arc<Task>) {
        let mut q = self.queue.lock().unwrap();
        // Tasks woken after shutdown are dropped, not run: the workers
        // are already draining out.
        if !q.shutdown {
            q.ready.push_back(task);
            self.cvar.notify_one();
        }
    }
}

/// A fixed-size thread pool of worker loops: `spawn` tasks, workers poll
/// them, wakes re-enqueue. Dropping the pool stops the workers after the
/// queue drains of *ready* tasks; tasks still pending (waiting on a
/// waker that never fires) are dropped with the pool, so callers that
/// need completion join through a channel — the service example awaits a
/// oneshot per task before letting the pool go.
pub struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Starts `workers` worker threads (at least one).
    pub fn new(workers: usize) -> Pool {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                ready: VecDeque::new(),
                shutdown: false,
            }),
            cvar: Condvar::new(),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Pool { shared, workers }
    }

    /// Spawns a future onto the pool. The future runs to completion on
    /// whatever workers its wakes land on.
    pub fn spawn(&self, fut: impl Future<Output = ()> + Send + 'static) {
        let task = Arc::new(Task {
            fut: Mutex::new(Some(Box::pin(fut))),
            pool: Arc::downgrade(&self.shared),
        });
        self.shared.push(task);
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.shutdown = true;
        }
        self.shared.cvar.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let task = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(t) = q.ready.pop_front() {
                    break t;
                }
                if q.shutdown {
                    return;
                }
                q = shared.cvar.wait(q).unwrap();
            }
        };
        let waker = task_waker(task.clone());
        let mut cx = Context::from_waker(&waker);
        let mut slot = task.fut.lock().unwrap();
        if let Some(fut) = slot.as_mut() {
            if fut.as_mut().poll(&mut cx).is_ready() {
                *slot = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn block_on_ready_future() {
        assert_eq!(block_on(std::future::ready(42)), 42);
    }

    #[test]
    fn block_on_parks_until_cross_thread_wake() {
        let (tx, rx) = crate::oneshot::channel::<u64>();
        let h = std::thread::spawn(move || {
            // No timing assumption: the main thread may or may not have
            // parked yet; the parker token absorbs either order.
            tx.send(7);
        });
        assert_eq!(block_on(rx), 7);
        h.join().unwrap();
    }

    #[test]
    fn poll_now_observes_pending_then_ready() {
        let (tx, mut rx) = crate::oneshot::channel::<u64>();
        assert!(poll_now(&mut rx).is_pending());
        tx.send(9);
        assert_eq!(poll_now(&mut rx), Poll::Ready(9));
    }

    #[test]
    fn pool_runs_spawned_tasks_to_completion() {
        let pool = Pool::new(3);
        let done = Arc::new(AtomicUsize::new(0));
        let mut receivers = Vec::new();
        for i in 0..32u64 {
            let (tx, rx) = crate::oneshot::channel::<u64>();
            receivers.push(rx);
            let done = done.clone();
            pool.spawn(async move {
                done.fetch_add(1, Ordering::Relaxed);
                tx.send(i * 2);
            });
        }
        for (i, rx) in receivers.into_iter().enumerate() {
            assert_eq!(block_on(rx), i as u64 * 2);
        }
        assert_eq!(done.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn pool_tasks_await_each_other_through_oneshots() {
        // A chain of tasks, each awaiting the previous task's oneshot:
        // exercises cross-task wakes (task waker re-enqueueing) rather
        // than only run-to-completion bodies.
        let pool = Pool::new(2);
        let (head_tx, head_rx) = crate::oneshot::channel::<u64>();
        let mut tail = head_rx;
        for _ in 0..16 {
            let (tx, rx) = crate::oneshot::channel::<u64>();
            let upstream = tail;
            pool.spawn(async move {
                tx.send(upstream.await + 1);
            });
            tail = rx;
        }
        // Every task in the chain is parked on its upstream before the
        // head value is released.
        head_tx.send(1);
        assert_eq!(block_on(tail), 17);
    }
}
