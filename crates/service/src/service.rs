//! The batched request/response bridge: clients submit point ops into a
//! bounded accumulation queue and get a oneshot-backed future; a flusher
//! drains the queue into the map's **batch** entry points when either
//! the size threshold fills or the oldest request ages past the
//! deadline, then completes each future with its element's result.
//!
//! ## Flush decision
//!
//! [`BatchedService::step`] is the whole policy, a pure function of
//! (queue state, `clock.now_ns()`), checked in this order:
//!
//! 1. **Size**: `len ≥ max_batch` → flush exactly `max_batch` requests.
//! 2. **Drain**: the service is shutting down and requests remain →
//!    flush what's there (deadlines no longer apply).
//! 3. **Deadline**: the *oldest* queued request is `max_delay` old →
//!    flush the partial batch. The deadline always tracks the oldest
//!    pending request's enqueue time, so after a flush it re-arms from
//!    the next enqueue, not from the flush itself.
//! 4. Otherwise **idle**, reporting how long until the pending deadline.
//!
//! The production constructor runs `step` in a dedicated flusher thread
//! against a [`RealClock`]; the deterministic batteries construct the
//! service with [`BatchedService::with_clock`] (no thread) and call
//! `step` by hand under a `MockClock` — every trigger path above is a
//! hand-enumerated schedule there, not a timing race.
//!
//! ## Ordering semantics
//!
//! The queue is FIFO and a flush executes its requests in queue order,
//! partitioned into maximal same-kind runs that go through
//! `insert_batch` / `remove_batch` / `get_batch` whole. Responses
//! therefore equal sequential input-order application of the drained
//! requests — the same duplicate-key bar the trait documents for
//! batches. One client's submissions resolve in its own program order;
//! concurrent clients interleave at queue push, which is the service's
//! linearization order.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll};
use std::time::Duration;

use crate::clock::{Clock, RealClock};
use crate::oneshot;
use sharded::ConcurrentMap;

/// A point operation submitted to the service. Keys and values are
/// `u64`, as everywhere in the suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Lookup; responds with the current value.
    Get(u64),
    /// Insert; responds with the displaced value.
    Insert(u64, u64),
    /// Remove; responds with the removed value.
    Remove(u64),
}

impl Op {
    /// Run-partition discriminant (same-kind neighbors share a batch call).
    fn kind(&self) -> u8 {
        match self {
            Op::Get(_) => 0,
            Op::Insert(..) => 1,
            Op::Remove(_) => 2,
        }
    }
}

/// When the flusher fires: either trigger ends a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlushPolicy {
    /// Size trigger: flush as soon as this many requests are queued.
    pub max_batch: usize,
    /// Time trigger: flush when the oldest queued request is this old.
    pub max_delay: Duration,
}

impl FlushPolicy {
    /// A policy; `max_batch` must be at least 1.
    pub fn new(max_batch: usize, max_delay: Duration) -> FlushPolicy {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        FlushPolicy {
            max_batch,
            max_delay,
        }
    }

    /// The degenerate per-op policy: batches of one, no waiting — the
    /// baseline the batching sweep compares against.
    pub fn passthrough() -> FlushPolicy {
        FlushPolicy::new(1, Duration::ZERO)
    }
}

/// What `submit` does when the accumulation queue is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Block the submitting thread until the flusher drains space.
    Block,
    /// Refuse immediately with [`SubmitError::Overloaded`] (load shedding).
    Shed,
}

/// Service construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// The flush policy.
    pub policy: FlushPolicy,
    /// Full-queue behavior.
    pub overflow: OverflowPolicy,
    /// Accumulation-queue capacity (requests). Submits beyond it block
    /// or shed per `overflow`.
    pub capacity: usize,
}

impl ServiceConfig {
    /// A config with the given policy, `Block` overflow, and a capacity
    /// of `4 × max_batch` (at least 64): deep enough that the flusher
    /// can run one batch while the next accumulates.
    pub fn new(policy: FlushPolicy) -> ServiceConfig {
        ServiceConfig {
            policy,
            overflow: OverflowPolicy::Block,
            capacity: (4 * policy.max_batch).max(64),
        }
    }

    /// Sets the queue capacity (at least 1).
    pub fn with_capacity(mut self, capacity: usize) -> ServiceConfig {
        assert!(capacity >= 1, "capacity must be at least 1");
        self.capacity = capacity;
        self
    }

    /// Sets the full-queue behavior.
    pub fn with_overflow(mut self, overflow: OverflowPolicy) -> ServiceConfig {
        self.overflow = overflow;
        self
    }
}

/// Why a submit was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is full and the overflow policy is
    /// [`OverflowPolicy::Shed`].
    Overloaded,
    /// The service is shutting down.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded => write!(f, "service overloaded (queue full, shed policy)"),
            SubmitError::Closed => write!(f, "service closed"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// What fired a flush (see the module docs for the precedence order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushTrigger {
    /// The size threshold filled.
    Size,
    /// The oldest request aged past `max_delay`.
    Deadline,
    /// Shutdown drain.
    Drain,
}

/// One flusher step's outcome — what the deterministic batteries assert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// A batch of `len` requests was flushed.
    Flushed {
        /// Number of requests in the flushed batch.
        len: usize,
        /// Which trigger fired.
        trigger: FlushTrigger,
    },
    /// Nothing to do yet.
    Idle {
        /// Nanoseconds until the pending deadline trigger, when requests
        /// are queued; `None` on an empty queue.
        until_deadline_ns: Option<u64>,
    },
}

/// A queued request: the op, its enqueue time (what the deadline tracks)
/// and the response slot.
struct PendingReq {
    op: Op,
    enqueued_ns: u64,
    tx: oneshot::Sender<Option<u64>>,
}

struct QueueState {
    buf: VecDeque<PendingReq>,
    closed: bool,
    /// Bumped on every push and on close, so a flusher that observed
    /// `Idle` can tell whether anything happened while it was deciding
    /// to wait.
    gen: u64,
}

/// Monotone event counters (relaxed atomics — exact under the quiesced
/// reads the tests and stats snapshots perform).
#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    blocked: AtomicU64,
    flushes: AtomicU64,
    size_flushes: AtomicU64,
    deadline_flushes: AtomicU64,
    drain_flushes: AtomicU64,
    batched_ops: AtomicU64,
}

/// A point-in-time counter snapshot (see [`BatchedService::stats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Responses completed.
    pub completed: u64,
    /// Submits refused with [`SubmitError::Overloaded`].
    pub shed: u64,
    /// Blocking episodes: submits that had to wait for queue space at
    /// least once (counted once per episode, not per wakeup).
    pub blocked: u64,
    /// Total flushes (= `size_flushes + deadline_flushes + drain_flushes`).
    pub flushes: u64,
    /// Flushes fired by the size threshold.
    pub size_flushes: u64,
    /// Flushes fired by the age deadline.
    pub deadline_flushes: u64,
    /// Flushes fired by shutdown drain.
    pub drain_flushes: u64,
    /// Requests flushed in total (mean batch = `batched_ops / flushes`).
    pub batched_ops: u64,
    /// Current queue occupancy.
    pub occupancy: usize,
    /// Queue capacity.
    pub capacity: usize,
}

struct Shared<M> {
    map: M,
    queue: Mutex<QueueState>,
    /// Flusher waits here for work.
    not_empty: Condvar,
    /// `Block` submitters wait here for space.
    not_full: Condvar,
    clock: Arc<dyn Clock>,
    max_batch: usize,
    max_delay_ns: u64,
    overflow: OverflowPolicy,
    capacity: usize,
    counters: Counters,
}

/// The async batched front end over any [`ConcurrentMap`]. See the
/// module docs for the flush decision and ordering semantics.
pub struct BatchedService<M: ConcurrentMap + 'static> {
    shared: Arc<Shared<M>>,
    flusher: Option<std::thread::JoinHandle<()>>,
}

/// The client's handle on one response: a future resolving to the op's
/// result (`Option<u64>` — displaced/removed/current value), or a
/// blocking [`wait`](ResponseFuture::wait) for sync callers. `Unpin`, so
/// manual pollers (`exec::poll_now`) need no pin projection.
pub struct ResponseFuture(oneshot::Receiver<Option<u64>>);

impl std::fmt::Debug for ResponseFuture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResponseFuture")
            .field("ready", &self.0.is_ready())
            .finish()
    }
}

impl ResponseFuture {
    /// Blocks the calling thread for the response.
    pub fn wait(self) -> Option<u64> {
        self.0.wait()
    }

    /// Whether the response has arrived (without consuming it).
    pub fn is_ready(&self) -> bool {
        self.0.is_ready()
    }
}

impl Future for ResponseFuture {
    type Output = Option<u64>;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<u64>> {
        Pin::new(&mut self.0).poll(cx)
    }
}

impl<M: ConcurrentMap + 'static> BatchedService<M> {
    /// Starts the service with a dedicated flusher thread and the
    /// rdtsc-calibrated [`RealClock`].
    pub fn start(map: M, config: ServiceConfig) -> BatchedService<M> {
        let mut svc = Self::with_clock(map, config, Arc::new(RealClock::new()));
        let shared = svc.shared.clone();
        svc.flusher = Some(
            std::thread::Builder::new()
                .name("service-flusher".into())
                .spawn(move || flusher_loop(&shared))
                .expect("spawn flusher"),
        );
        svc
    }

    /// Builds the service **without** a flusher thread, against an
    /// injected clock: the caller drives [`step`](Self::step) by hand.
    /// This is the deterministic-test constructor — with a `MockClock`,
    /// every flush path is a schedule the test enumerates.
    pub fn with_clock(map: M, config: ServiceConfig, clock: Arc<dyn Clock>) -> BatchedService<M> {
        BatchedService {
            shared: Arc::new(Shared {
                map,
                queue: Mutex::new(QueueState {
                    buf: VecDeque::with_capacity(config.capacity.min(1 << 16)),
                    closed: false,
                    gen: 0,
                }),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
                clock,
                max_batch: config.policy.max_batch,
                max_delay_ns: config.policy.max_delay.as_nanos() as u64,
                overflow: config.overflow,
                capacity: config.capacity,
                counters: Counters::default(),
            }),
            flusher: None,
        }
    }

    /// Submits one operation. Returns the response future immediately;
    /// on a full queue it blocks for space or sheds, per the overflow
    /// policy.
    pub fn submit(&self, op: Op) -> Result<ResponseFuture, SubmitError> {
        let shared = &*self.shared;
        let mut q = shared.queue.lock().unwrap();
        let mut counted_blocked = false;
        loop {
            if q.closed {
                return Err(SubmitError::Closed);
            }
            if q.buf.len() < shared.capacity {
                break;
            }
            match shared.overflow {
                OverflowPolicy::Shed => {
                    shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                    return Err(SubmitError::Overloaded);
                }
                OverflowPolicy::Block => {
                    if !counted_blocked {
                        shared.counters.blocked.fetch_add(1, Ordering::Relaxed);
                        counted_blocked = true;
                    }
                    q = shared.not_full.wait(q).unwrap();
                }
            }
        }
        let (tx, rx) = oneshot::channel();
        q.buf.push_back(PendingReq {
            op,
            enqueued_ns: shared.clock.now_ns(),
            tx,
        });
        q.gen += 1;
        shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
        shared.not_empty.notify_one();
        Ok(ResponseFuture(rx))
    }

    /// [`submit`](Self::submit)s a lookup.
    pub fn get(&self, k: u64) -> Result<ResponseFuture, SubmitError> {
        self.submit(Op::Get(k))
    }

    /// [`submit`](Self::submit)s an insert.
    pub fn insert(&self, k: u64, v: u64) -> Result<ResponseFuture, SubmitError> {
        self.submit(Op::Insert(k, v))
    }

    /// [`submit`](Self::submit)s a remove.
    pub fn remove(&self, k: u64) -> Result<ResponseFuture, SubmitError> {
        self.submit(Op::Remove(k))
    }

    /// One flusher decision + (at most) one batch execution. The
    /// production flusher thread loops this; manual-mode tests call it
    /// directly. See the module docs for the trigger precedence.
    pub fn step(&self) -> Step {
        step_shared(&self.shared)
    }

    /// The wrapped map (e.g. for settled-state inspection after
    /// [`shutdown`](Self::shutdown)).
    pub fn map(&self) -> &M {
        &self.shared.map
    }

    /// A point-in-time stats snapshot.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.shared.counters;
        let occupancy = self.shared.queue.lock().unwrap().buf.len();
        ServiceStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            blocked: c.blocked.load(Ordering::Relaxed),
            flushes: c.flushes.load(Ordering::Relaxed),
            size_flushes: c.size_flushes.load(Ordering::Relaxed),
            deadline_flushes: c.deadline_flushes.load(Ordering::Relaxed),
            drain_flushes: c.drain_flushes.load(Ordering::Relaxed),
            batched_ops: c.batched_ops.load(Ordering::Relaxed),
            occupancy,
            capacity: self.shared.capacity,
        }
    }

    /// Closes the queue, drains every pending request (completing its
    /// response) and stops the flusher. Subsequent submits return
    /// [`SubmitError::Closed`]. Idempotent; `Drop` calls it.
    pub fn shutdown(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            if !q.closed {
                q.closed = true;
                q.gen += 1;
            }
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        if let Some(h) = self.flusher.take() {
            h.join().expect("flusher thread panicked");
        } else {
            // Manual mode: drain synchronously.
            while matches!(self.step(), Step::Flushed { .. }) {}
        }
    }
}

impl<M: ConcurrentMap + 'static> Drop for BatchedService<M> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The flush decision (module docs, "Flush decision"): drains under the
/// lock, executes outside it so submitters regain space while the map
/// calls run.
fn step_shared<M: ConcurrentMap>(shared: &Shared<M>) -> Step {
    let now = shared.clock.now_ns();
    let trigger;
    let drained: Vec<PendingReq> = {
        let mut q = shared.queue.lock().unwrap();
        trigger = if q.buf.len() >= shared.max_batch {
            FlushTrigger::Size
        } else if q.closed && !q.buf.is_empty() {
            FlushTrigger::Drain
        } else if q
            .buf
            .front()
            .is_some_and(|oldest| now >= oldest.enqueued_ns.saturating_add(shared.max_delay_ns))
        {
            FlushTrigger::Deadline
        } else {
            return Step::Idle {
                until_deadline_ns: q.buf.front().map(|oldest| {
                    oldest
                        .enqueued_ns
                        .saturating_add(shared.max_delay_ns)
                        .saturating_sub(now)
                }),
            };
        };
        let n = q.buf.len().min(shared.max_batch);
        q.buf.drain(..n).collect()
    };
    // Space freed: wake every parked submitter (all-at-once — a batch
    // frees up to `max_batch` slots, and each waiter rechecks under the
    // lock).
    shared.not_full.notify_all();
    let len = drained.len();
    execute(shared, drained);
    let c = &shared.counters;
    c.flushes.fetch_add(1, Ordering::Relaxed);
    c.batched_ops.fetch_add(len as u64, Ordering::Relaxed);
    match trigger {
        FlushTrigger::Size => c.size_flushes.fetch_add(1, Ordering::Relaxed),
        FlushTrigger::Deadline => c.deadline_flushes.fetch_add(1, Ordering::Relaxed),
        FlushTrigger::Drain => c.drain_flushes.fetch_add(1, Ordering::Relaxed),
    };
    Step::Flushed { len, trigger }
}

/// Executes a drained batch in queue order, partitioned into maximal
/// same-kind runs through the trait batch entry points, and completes
/// each response. Equivalent to sequential input-order application (the
/// batch entry points guarantee exactly that for duplicate keys).
fn execute<M: ConcurrentMap>(shared: &Shared<M>, drained: Vec<PendingReq>) {
    let mut reqs = drained.into_iter().peekable();
    let mut pairs: Vec<(u64, u64)> = Vec::new();
    let mut keys: Vec<u64> = Vec::new();
    let mut txs: Vec<oneshot::Sender<Option<u64>>> = Vec::new();
    while let Some(first) = reqs.next() {
        let kind = first.op.kind();
        pairs.clear();
        keys.clear();
        txs.clear();
        let mut push = |req: PendingReq| {
            match req.op {
                Op::Get(k) | Op::Remove(k) => keys.push(k),
                Op::Insert(k, v) => pairs.push((k, v)),
            }
            txs.push(req.tx);
        };
        let op = first.op;
        push(first);
        while reqs.peek().is_some_and(|r| r.op.kind() == kind) {
            let r = reqs.next().expect("peeked");
            push(r);
        }
        let results = match op {
            Op::Get(_) => shared.map.get_batch(&keys),
            Op::Insert(..) => shared.map.insert_batch(&pairs),
            Op::Remove(_) => shared.map.remove_batch(&keys),
        };
        debug_assert_eq!(results.len(), txs.len());
        // Count completions *before* delivering: a client whose `wait`
        // returns must not observe a stats snapshot that hasn't counted
        // its own response yet.
        shared
            .counters
            .completed
            .fetch_add(txs.len() as u64, Ordering::Relaxed);
        for (tx, res) in txs.drain(..).zip(results) {
            tx.send(res);
        }
    }
}

/// The production flusher: loop [`step_shared`], park between batches.
/// Parking re-derives readiness under the queue lock (and `gen` catches
/// pushes that raced the idle decision), so a submit is never missed; a
/// timed wait covers the pending deadline.
fn flusher_loop<M: ConcurrentMap>(shared: &Shared<M>) {
    loop {
        match step_shared(shared) {
            Step::Flushed { .. } => continue,
            Step::Idle { .. } => {
                let mut q = shared.queue.lock().unwrap();
                loop {
                    if q.closed {
                        if q.buf.is_empty() {
                            return;
                        }
                        break; // drain
                    }
                    if q.buf.len() >= shared.max_batch {
                        break; // size trigger
                    }
                    match q.buf.front() {
                        None => q = shared.not_empty.wait(q).unwrap(),
                        Some(oldest) => {
                            let deadline = oldest.enqueued_ns.saturating_add(shared.max_delay_ns);
                            let now = shared.clock.now_ns();
                            if now >= deadline {
                                break; // deadline trigger
                            }
                            let (guard, _) = shared
                                .not_empty
                                .wait_timeout(q, Duration::from_nanos(deadline - now))
                                .unwrap();
                            q = guard;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;
    use std::collections::BTreeMap;

    /// A trivial map for unit tests (integration tests use the real
    /// structures through `workload`).
    struct TestMap(Mutex<BTreeMap<u64, u64>>);

    impl TestMap {
        fn new() -> TestMap {
            TestMap(Mutex::new(BTreeMap::new()))
        }
    }

    impl ConcurrentMap for TestMap {
        fn name(&self) -> &'static str {
            "testmap"
        }
        fn insert(&self, k: u64, v: u64) -> Option<u64> {
            self.0.lock().unwrap().insert(k, v)
        }
        fn remove(&self, k: &u64) -> Option<u64> {
            self.0.lock().unwrap().remove(k)
        }
        fn get(&self, k: &u64) -> Option<u64> {
            self.0.lock().unwrap().get(k).copied()
        }
        fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
            self.0
                .lock()
                .unwrap()
                .range(lo..=hi)
                .map(|(k, v)| (*k, *v))
                .collect()
        }
        fn len(&self) -> usize {
            self.0.lock().unwrap().len()
        }
    }

    #[test]
    fn threaded_service_answers_requests() {
        let svc = BatchedService::start(
            TestMap::new(),
            ServiceConfig::new(FlushPolicy::new(8, Duration::from_micros(200))),
        );
        assert_eq!(svc.insert(1, 10).unwrap().wait(), None);
        assert_eq!(svc.insert(1, 20).unwrap().wait(), Some(10));
        assert_eq!(svc.get(1).unwrap().wait(), Some(20));
        assert_eq!(svc.remove(1).unwrap().wait(), Some(20));
        assert_eq!(svc.get(1).unwrap().wait(), None);
        let stats = svc.stats();
        assert_eq!(stats.submitted, 5);
        assert_eq!(stats.completed, 5);
        assert_eq!(stats.shed, 0);
    }

    #[test]
    fn threaded_service_batches_a_burst() {
        let mut svc = BatchedService::start(
            TestMap::new(),
            ServiceConfig::new(FlushPolicy::new(64, Duration::from_millis(5))),
        );
        let futs: Vec<_> = (0..256).map(|i| svc.insert(i % 32, i).unwrap()).collect();
        for f in futs {
            f.wait();
        }
        svc.shutdown();
        let stats = svc.stats();
        assert_eq!(stats.completed, 256);
        assert_eq!(stats.batched_ops, 256);
        // Bursty closed-loop submission must produce multi-request
        // batches: strictly fewer flushes than requests.
        assert!(
            stats.flushes < 256,
            "no batching happened: {} flushes",
            stats.flushes
        );
        assert_eq!(svc.map().len(), 32);
    }

    #[test]
    fn submit_after_shutdown_is_closed() {
        let mut svc = BatchedService::start(
            TestMap::new(),
            ServiceConfig::new(FlushPolicy::passthrough()),
        );
        assert_eq!(svc.insert(1, 1).unwrap().wait(), None);
        svc.shutdown();
        assert_eq!(svc.get(1).unwrap_err(), SubmitError::Closed);
    }

    #[test]
    fn manual_mode_drop_drains_pending() {
        let clock = Arc::new(MockClock::new());
        let svc = BatchedService::with_clock(
            TestMap::new(),
            ServiceConfig::new(FlushPolicy::new(1000, Duration::from_secs(3600))),
            clock,
        );
        let f = svc.insert(7, 70).unwrap();
        drop(svc); // must drain, not leak the pending response
        assert_eq!(f.wait(), None);
    }

    #[test]
    fn mixed_kind_batch_executes_in_queue_order() {
        let clock = Arc::new(MockClock::new());
        let svc = BatchedService::with_clock(
            TestMap::new(),
            ServiceConfig::new(FlushPolicy::new(1000, Duration::from_secs(3600))),
            clock,
        );
        // insert k=1 twice (duplicate in one run), get, remove, get —
        // responses must equal sequential application.
        let f1 = svc.submit(Op::Insert(1, 10)).unwrap();
        let f2 = svc.submit(Op::Insert(1, 20)).unwrap();
        let f3 = svc.submit(Op::Get(1)).unwrap();
        let f4 = svc.submit(Op::Remove(1)).unwrap();
        let f5 = svc.submit(Op::Get(1)).unwrap();
        assert_eq!(
            svc.step(),
            Step::Idle {
                until_deadline_ns: Some(3600 * 1_000_000_000)
            }
        );
        let mut svc = svc;
        svc.shutdown();
        assert_eq!(f1.wait(), None);
        assert_eq!(f2.wait(), Some(10), "duplicate insert sees the first");
        assert_eq!(f3.wait(), Some(20));
        assert_eq!(f4.wait(), Some(20));
        assert_eq!(f5.wait(), None);
        assert_eq!(svc.stats().drain_flushes, 1);
    }
}
