//! An async batched request/response front end over the suite's
//! [`sharded::ConcurrentMap`] batch entry points.
//!
//! The structures' batch operations (`insert_batch` / `remove_batch` /
//! `get_batch`) amortize traversal, guard pinning and (for the
//! chromatic tree) same-leaf SCX merging across many keys — but only a
//! caller that *has* a batch can use them. This crate manufactures
//! batches out of independent concurrent clients: each client submits
//! point ops into a bounded accumulation queue and immediately receives
//! a future; a flusher drains the queue through the batch entry points
//! whenever a size threshold fills or the oldest request ages past a
//! deadline, and completes each future with its element's result.
//!
//! Three pieces, each usable on its own:
//!
//! * [`exec`] — a minimal hand-rolled executor: [`exec::block_on`] plus
//!   a fixed-size thread [`exec::Pool`], raw-waker vtables over `Arc`s,
//!   no external async runtime.
//! * [`oneshot`] — the response channel, with a blocking `wait` for
//!   sync callers and a `Future` impl for async ones.
//! * [`service`] — [`BatchedService`] itself: [`FlushPolicy`]
//!   (size + deadline triggers), [`OverflowPolicy`] backpressure
//!   (block or shed), [`ServiceStats`] counters, and an injectable
//!   [`Clock`] so every flush path is deterministically testable under
//!   [`MockClock`] with zero sleeps.
//!
//! See `docs/SERVICE.md` for the design discussion and the measured
//! latency-vs-batching trade-off.

#![warn(missing_docs)]

pub mod clock;
pub mod exec;
pub mod oneshot;
pub mod service;

pub use clock::{Clock, MockClock, RealClock};
pub use service::{
    BatchedService, FlushPolicy, FlushTrigger, Op, OverflowPolicy, ResponseFuture, ServiceConfig,
    ServiceStats, Step, SubmitError,
};
