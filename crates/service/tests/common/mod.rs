//! Shared fixture for the service batteries: a sequential model map
//! behind a mutex, instrumented to count how often the *batch* entry
//! points are taken (the whole point of the service is that they are).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use sharded::ConcurrentMap;

/// A `BTreeMap` under a mutex, with batch-call instrumentation. The
/// batteries test the *service* (queueing, triggers, backpressure), so
/// the map below it is deliberately the simplest correct thing; the
/// cross-crate oracle in the workspace root runs the real structures.
#[derive(Default)]
pub struct ModelMap {
    inner: Mutex<BTreeMap<u64, u64>>,
    batch_calls: AtomicU64,
}

#[allow(dead_code)] // ALLOW: shared test helpers; not every battery uses every one
impl ModelMap {
    pub fn new() -> ModelMap {
        ModelMap::default()
    }

    /// How many times a batch entry point was invoked.
    pub fn batch_calls(&self) -> u64 {
        self.batch_calls.load(Ordering::Relaxed)
    }

    /// Snapshot of the settled contents.
    pub fn contents(&self) -> Vec<(u64, u64)> {
        self.inner
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect()
    }
}

impl ConcurrentMap for ModelMap {
    fn name(&self) -> &'static str {
        "model"
    }
    fn insert(&self, k: u64, v: u64) -> Option<u64> {
        self.inner.lock().unwrap().insert(k, v)
    }
    fn remove(&self, k: &u64) -> Option<u64> {
        self.inner.lock().unwrap().remove(k)
    }
    fn get(&self, k: &u64) -> Option<u64> {
        self.inner.lock().unwrap().get(k).copied()
    }
    fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        self.inner
            .lock()
            .unwrap()
            .range(lo..=hi)
            .map(|(k, v)| (*k, *v))
            .collect()
    }
    fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }
    fn insert_batch(&self, batch: &[(u64, u64)]) -> Vec<Option<u64>> {
        self.batch_calls.fetch_add(1, Ordering::Relaxed);
        let mut m = self.inner.lock().unwrap();
        batch.iter().map(|&(k, v)| m.insert(k, v)).collect()
    }
    fn remove_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        self.batch_calls.fetch_add(1, Ordering::Relaxed);
        let mut m = self.inner.lock().unwrap();
        keys.iter().map(|k| m.remove(k)).collect()
    }
    fn get_batch(&self, keys: &[u64]) -> Vec<Option<u64>> {
        self.batch_calls.fetch_add(1, Ordering::Relaxed);
        let m = self.inner.lock().unwrap();
        keys.iter().map(|k| m.get(k).copied()).collect()
    }
}
