//! Backpressure battery: full-queue behavior under both overflow
//! policies, exact stats accounting against hand-written schedules, and
//! a property test driving random submit/step/advance interleavings
//! against a sequential model. Synchronization is by observable state
//! (counters, futures), never by sleeping.

mod common;

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use common::ModelMap;
use proptest::prelude::*;
use service::exec::poll_now;
use service::{
    BatchedService, FlushPolicy, MockClock, Op, OverflowPolicy, ServiceConfig, ServiceStats, Step,
    SubmitError,
};
use sharded::ConcurrentMap;

const HOUR: Duration = Duration::from_secs(3600);

fn manual_cfg(config: ServiceConfig) -> (BatchedService<ModelMap>, Arc<MockClock>) {
    let clock = Arc::new(MockClock::new());
    let svc = BatchedService::with_clock(ModelMap::new(), config, clock.clone());
    (svc, clock)
}

/// The parked-then-flushed regression: a `Block` submitter parked on a
/// full queue must make progress once a flush frees space — i.e. the
/// flush path must wake `not_full` waiters. (An early draft that only
/// notified on shutdown deadlocks exactly here.)
#[test]
fn blocked_submitter_progresses_after_a_flush_drains_space() {
    let (svc, clock) = manual_cfg(
        ServiceConfig::new(FlushPolicy::new(2, HOUR))
            .with_capacity(2)
            .with_overflow(OverflowPolicy::Block),
    );
    let f0 = svc.submit(Op::Insert(1, 10)).unwrap();
    let f1 = svc.submit(Op::Insert(2, 20)).unwrap();
    assert_eq!(svc.stats().occupancy, 2, "queue full");

    // A real thread submits into the full queue and parks.
    let svc = Arc::new(svc);
    let submitter = {
        let svc = svc.clone();
        std::thread::spawn(move || svc.submit(Op::Insert(3, 30)).unwrap().wait())
    };
    // Wait for it to actually park — observable as the `blocked`
    // counter, which is incremented before the condvar wait. A yield
    // loop on a counter is state-based waiting, not a timing guess.
    while svc.stats().blocked < 1 {
        std::thread::yield_now();
    }

    // One size-triggered flush frees both slots; the parked submitter
    // must enqueue and (after the next flushes) complete.
    assert_eq!(
        svc.step(),
        Step::Flushed {
            len: 2,
            trigger: service::FlushTrigger::Size
        }
    );
    assert_eq!(f0.wait(), None);
    assert_eq!(f1.wait(), None);
    // Wait (again on observable state) for the unparked submitter to
    // actually enqueue its op, then fire it via the deadline trigger —
    // one op is short of the size trigger.
    while svc.stats().submitted < 3 {
        std::thread::yield_now();
    }
    clock.advance(HOUR);
    assert_eq!(
        svc.step(),
        Step::Flushed {
            len: 1,
            trigger: service::FlushTrigger::Deadline
        }
    );
    assert_eq!(submitter.join().unwrap(), None);
    let mut svc = Arc::into_inner(svc).expect("submitter thread joined");
    assert_eq!(svc.stats().blocked, 1);
    assert_eq!(svc.map().len(), 3);
    svc.shutdown();
}

#[test]
fn shed_returns_overloaded_without_corrupting_the_queue() {
    let (mut svc, _clock) = manual_cfg(
        ServiceConfig::new(FlushPolicy::new(2, HOUR))
            .with_capacity(2)
            .with_overflow(OverflowPolicy::Shed),
    );
    let mut f0 = svc.submit(Op::Insert(1, 10)).unwrap();
    let mut f1 = svc.submit(Op::Insert(2, 20)).unwrap();
    // Queue full: the next two submits shed, immediately, and the
    // queued requests are untouched.
    assert_eq!(
        svc.submit(Op::Insert(3, 30)).unwrap_err(),
        SubmitError::Overloaded
    );
    assert_eq!(svc.submit(Op::Get(1)).unwrap_err(), SubmitError::Overloaded);
    let stats = svc.stats();
    assert_eq!(stats.shed, 2);
    assert_eq!(stats.occupancy, 2, "shedding did not consume queue slots");
    assert!(poll_now(&mut f0).is_pending());
    assert!(poll_now(&mut f1).is_pending());

    // After a flush the queue accepts again, and the flushed responses
    // are exactly the two that were accepted — the shed ops left no
    // trace in the map.
    assert!(matches!(svc.step(), Step::Flushed { len: 2, .. }));
    assert_eq!(poll_now(&mut f0), std::task::Poll::Ready(None));
    assert_eq!(poll_now(&mut f1), std::task::Poll::Ready(None));
    let f2 = svc.submit(Op::Get(1)).unwrap();
    svc.shutdown();
    assert_eq!(f2.wait(), Some(10), "accepted-after-shed op sees the map");
    assert_eq!(svc.stats().shed, 2, "no further sheds");
}

/// Exact stats accounting for a hand-written schedule: every counter in
/// [`ServiceStats`] matches the arithmetic of the script.
#[test]
fn stats_match_the_schedule_exactly() {
    let (mut svc, clock) = manual_cfg(
        ServiceConfig::new(FlushPolicy::new(3, Duration::from_micros(10)))
            .with_capacity(4)
            .with_overflow(OverflowPolicy::Shed),
    );
    // 3 submits -> size flush of 3.
    let mut futs = Vec::new();
    for i in 0..3 {
        futs.push(svc.submit(Op::Insert(i, i)).unwrap());
    }
    assert!(matches!(svc.step(), Step::Flushed { len: 3, .. }));
    // 2 submits, deadline passes -> deadline flush of 2.
    for i in 0..2 {
        futs.push(svc.submit(Op::Get(i)).unwrap());
    }
    clock.advance(Duration::from_micros(10));
    assert!(matches!(svc.step(), Step::Flushed { len: 2, .. }));
    // Fill to capacity (4), shed one, then shut down: the drain first
    // satisfies the size trigger (3 of the 4), and only the last
    // straggler goes out as a drain flush — size keeps precedence even
    // on a closed queue.
    for i in 0..4 {
        futs.push(svc.submit(Op::Remove(i)).unwrap());
    }
    assert_eq!(svc.submit(Op::Get(0)).unwrap_err(), SubmitError::Overloaded);
    svc.shutdown();
    for f in futs {
        f.wait();
    }
    assert_eq!(
        svc.stats(),
        ServiceStats {
            submitted: 9,
            completed: 9,
            shed: 1,
            blocked: 0,
            flushes: 4,
            size_flushes: 2,
            deadline_flushes: 1,
            drain_flushes: 1,
            batched_ops: 9,
            occupancy: 0,
            capacity: 4,
        }
    );
}

#[derive(Debug, Clone)]
enum Action {
    Submit(Op),
    Step,
    Advance(u64),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (any::<u64>(), any::<u64>()).prop_map(|(k, v)| Action::Submit(Op::Insert(k % 16, v % 256))),
        any::<u64>().prop_map(|k| Action::Submit(Op::Remove(k % 16))),
        any::<u64>().prop_map(|k| Action::Submit(Op::Get(k % 16))),
        Just(Action::Step),
        any::<u64>().prop_map(|ns| Action::Advance(ns % 200_000)),
    ]
}

const CAPACITY: usize = 4;
const MAX_BATCH: usize = 3;
const DELAY_NS: u64 = 50_000;

fn apply_model(model: &mut BTreeMap<u64, u64>, op: Op) -> Option<u64> {
    match op {
        Op::Get(k) => model.get(&k).copied(),
        Op::Insert(k, v) => model.insert(k, v),
        Op::Remove(k) => model.remove(&k),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random submit/step/advance interleavings under the `Shed` policy
    /// match a sequential model that does NOT re-implement the trigger
    /// logic: it only mirrors the queue discipline. Whatever the service
    /// reports flushed is replayed in order against a `BTreeMap`, and
    /// every flushed future must be ready with the model's answer;
    /// whatever sheds must shed exactly when the model queue is full.
    #[test]
    fn random_interleavings_match_sequential_model(actions in proptest::collection::vec(action_strategy(), 1..250)) {
        let clock = Arc::new(MockClock::new());
        let mut svc = BatchedService::with_clock(
            ModelMap::new(),
            ServiceConfig::new(FlushPolicy::new(MAX_BATCH, Duration::from_nanos(DELAY_NS)))
                .with_capacity(CAPACITY)
                .with_overflow(OverflowPolicy::Shed),
            clock.clone(),
        );
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut queued: VecDeque<(Op, service::ResponseFuture)> = VecDeque::new();
        let mut expect_shed = 0u64;
        for action in actions {
            match action {
                Action::Submit(op) => {
                    let res = svc.submit(op);
                    if queued.len() == CAPACITY {
                        prop_assert!(res.is_err());
                        prop_assert_eq!(res.unwrap_err(), SubmitError::Overloaded);
                        expect_shed += 1;
                    } else {
                        prop_assert!(res.is_ok());
                        queued.push_back((op, res.unwrap()));
                    }
                }
                Action::Advance(ns) => clock.advance_ns(ns),
                Action::Step => {
                    match svc.step() {
                        Step::Flushed { len, trigger: _ } => {
                            // Replay exactly what the service claims it
                            // flushed; each future must already hold the
                            // model's answer.
                            prop_assert!(len <= queued.len());
                            for _ in 0..len {
                                let (op, mut fut) = queued.pop_front().expect("len checked");
                                let want = apply_model(&mut model, op);
                                let got = poll_now(&mut fut);
                                prop_assert_eq!(got, std::task::Poll::Ready(want));
                            }
                        }
                        Step::Idle { .. } => {
                            // Idle with a full-size batch queued would be
                            // a trigger bug.
                            prop_assert!(queued.len() < MAX_BATCH);
                        }
                    }
                }
            }
        }
        // Shutdown drains the remainder in order.
        svc.shutdown();
        for (op, mut fut) in queued {
            let want = apply_model(&mut model, op);
            prop_assert_eq!(poll_now(&mut fut), std::task::Poll::Ready(want));
        }
        prop_assert_eq!(svc.stats().shed, expect_shed);
        let settled: Vec<(u64, u64)> = model.into_iter().collect();
        prop_assert_eq!(svc.map().contents(), settled);
    }
}
