//! Deterministic flush-policy battery: every trigger path driven by
//! hand under a `MockClock`, with manual [`BatchedService::step`] calls
//! and [`exec::poll_now`] observations — no flusher thread, no sleeps,
//! no timing races. "The deadline fires exactly at `max_delay`" is an
//! assertable schedule here, down to the nanosecond.

mod common;

use std::sync::Arc;
use std::time::Duration;

use common::ModelMap;
use service::exec::poll_now;
use service::{BatchedService, FlushPolicy, FlushTrigger, MockClock, Op, ServiceConfig, Step};
use sharded::ConcurrentMap;

const HOUR: Duration = Duration::from_secs(3600);

fn manual(policy: FlushPolicy) -> (BatchedService<ModelMap>, Arc<MockClock>) {
    let clock = Arc::new(MockClock::new());
    let svc =
        BatchedService::with_clock(ModelMap::new(), ServiceConfig::new(policy), clock.clone());
    (svc, clock)
}

#[test]
fn size_trigger_fires_without_time_advancing() {
    let (mut svc, _clock) = manual(FlushPolicy::new(4, HOUR));
    let mut futs: Vec<_> = (0..3)
        .map(|i| svc.submit(Op::Insert(i, i * 10)).unwrap())
        .collect();
    // Three of four queued, nothing aged: idle, deadline a full hour out.
    assert_eq!(
        svc.step(),
        Step::Idle {
            until_deadline_ns: Some(HOUR.as_nanos() as u64)
        }
    );
    for f in &mut futs {
        assert!(poll_now(f).is_pending(), "no flush yet, future pending");
    }
    // The fourth submission fills the batch; the very next step flushes
    // by size with the clock never having moved off t=0.
    futs.push(svc.submit(Op::Insert(3, 30)).unwrap());
    assert_eq!(
        svc.step(),
        Step::Flushed {
            len: 4,
            trigger: FlushTrigger::Size
        }
    );
    for (i, f) in futs.iter_mut().enumerate() {
        assert_eq!(
            poll_now(f),
            std::task::Poll::Ready(None),
            "fresh insert {i}"
        );
    }
    let stats = svc.stats();
    assert_eq!(stats.size_flushes, 1);
    assert_eq!(stats.deadline_flushes, 0);
    assert_eq!(svc.map().batch_calls(), 1, "one insert_batch for the run");
    svc.shutdown();
}

#[test]
fn deadline_fires_partial_batch_exactly_at_max_delay() {
    let delay = Duration::from_micros(100);
    let (mut svc, clock) = manual(FlushPolicy::new(100, delay));
    let a = svc.submit(Op::Insert(1, 10)).unwrap();
    let b = svc.submit(Op::Get(1)).unwrap();
    // One nanosecond shy of the deadline: still idle.
    clock.advance_ns(delay.as_nanos() as u64 - 1);
    assert_eq!(
        svc.step(),
        Step::Idle {
            until_deadline_ns: Some(1)
        }
    );
    // The final nanosecond lands the oldest request exactly on
    // `max_delay`: the partial batch (2 of 100) flushes.
    clock.advance_ns(1);
    assert_eq!(
        svc.step(),
        Step::Flushed {
            len: 2,
            trigger: FlushTrigger::Deadline
        }
    );
    assert_eq!(a.wait(), None);
    assert_eq!(b.wait(), Some(10), "get sees the insert ahead of it");
    assert_eq!(svc.stats().deadline_flushes, 1);
    svc.shutdown();
}

#[test]
fn deadline_rearms_from_next_enqueue_not_from_flush() {
    let delay_ns = 100_000; // 100 µs
    let (mut svc, clock) = manual(FlushPolicy::new(100, Duration::from_nanos(delay_ns)));
    // First request at t=0 flushes at t=delay.
    let a = svc.submit(Op::Insert(1, 1)).unwrap();
    clock.advance_ns(delay_ns);
    assert_eq!(
        svc.step(),
        Step::Flushed {
            len: 1,
            trigger: FlushTrigger::Deadline
        }
    );
    assert_eq!(a.wait(), None);
    // Second request enqueued at t = delay + 50µs. If the deadline
    // re-armed from the *flush* (t=delay), it would fire at t=2·delay,
    // i.e. 50µs from now. It must instead track this request's enqueue:
    // a full `delay` from now.
    clock.advance_ns(50_000);
    let b = svc.submit(Op::Insert(2, 2)).unwrap();
    assert_eq!(
        svc.step(),
        Step::Idle {
            until_deadline_ns: Some(delay_ns)
        }
    );
    clock.advance_ns(delay_ns - 1);
    assert_eq!(
        svc.step(),
        Step::Idle {
            until_deadline_ns: Some(1)
        }
    );
    clock.advance_ns(1);
    assert_eq!(
        svc.step(),
        Step::Flushed {
            len: 1,
            trigger: FlushTrigger::Deadline
        }
    );
    assert_eq!(b.wait(), None);
    svc.shutdown();
}

#[test]
fn passthrough_policy_degenerates_to_per_op_flushes() {
    // max_batch = 1: every queued request satisfies the size trigger on
    // its own; max_delay = 0 never even gets consulted (size wins the
    // precedence order).
    let (mut svc, _clock) = manual(FlushPolicy::passthrough());
    let ops = [Op::Insert(7, 70), Op::Get(7), Op::Remove(7), Op::Get(7)];
    let expected = [None, Some(70), Some(70), None];
    for (op, want) in ops.into_iter().zip(expected) {
        let f = svc.submit(op).unwrap();
        assert_eq!(
            svc.step(),
            Step::Flushed {
                len: 1,
                trigger: FlushTrigger::Size
            }
        );
        assert_eq!(f.wait(), want);
    }
    let stats = svc.stats();
    assert_eq!(stats.flushes, 4, "one flush per op");
    assert_eq!(stats.batched_ops, 4);
    assert_eq!(stats.size_flushes, 4);
    svc.shutdown();
}

#[test]
fn zero_delay_with_large_batch_flushes_whatever_is_queued() {
    // max_delay = 0 with a roomy max_batch: any queued request is
    // instantly "aged", so each step drains the queue via the deadline
    // trigger — the other passthrough-like corner.
    let (mut svc, _clock) = manual(FlushPolicy::new(100, Duration::ZERO));
    let a = svc.submit(Op::Insert(1, 1)).unwrap();
    let b = svc.submit(Op::Insert(2, 2)).unwrap();
    assert_eq!(
        svc.step(),
        Step::Flushed {
            len: 2,
            trigger: FlushTrigger::Deadline
        }
    );
    assert_eq!(a.wait(), None);
    assert_eq!(b.wait(), None);
    assert_eq!(
        svc.step(),
        Step::Idle {
            until_deadline_ns: None
        }
    );
    svc.shutdown();
}

#[test]
fn size_flushes_exactly_max_batch_and_leaves_the_rest_queued() {
    let (mut svc, clock) = manual(FlushPolicy::new(4, HOUR));
    let mut futs: Vec<_> = (0..10)
        .map(|i| svc.submit(Op::Insert(i, i)).unwrap())
        .collect();
    // Ten queued, max_batch 4: two full size-triggered batches...
    for _ in 0..2 {
        assert_eq!(
            svc.step(),
            Step::Flushed {
                len: 4,
                trigger: FlushTrigger::Size
            }
        );
    }
    // ...then two stragglers, short of the size trigger, that wait for
    // the deadline of the *seventh* submission (the oldest remaining).
    assert!(matches!(svc.step(), Step::Idle { .. }));
    for f in futs.iter_mut().take(8) {
        assert!(poll_now(f).is_ready());
    }
    for f in futs.iter_mut().skip(8) {
        assert!(poll_now(f).is_pending());
    }
    clock.advance(HOUR);
    assert_eq!(
        svc.step(),
        Step::Flushed {
            len: 2,
            trigger: FlushTrigger::Deadline
        }
    );
    for f in futs.iter_mut().skip(8) {
        assert!(poll_now(f).is_ready());
    }
    let stats = svc.stats();
    assert_eq!(stats.size_flushes, 2);
    assert_eq!(stats.deadline_flushes, 1);
    assert_eq!(stats.batched_ops, 10);
    assert_eq!(svc.map().len(), 10);
    svc.shutdown();
}

#[test]
fn shutdown_drains_pending_requests_with_drain_trigger() {
    let (mut svc, _clock) = manual(FlushPolicy::new(100, HOUR));
    let futs: Vec<_> = (0..3)
        .map(|i| svc.submit(Op::Insert(i, i + 100)).unwrap())
        .collect();
    assert!(matches!(svc.step(), Step::Idle { .. }));
    // Shutdown must not strand accepted requests: they drain (ignoring
    // the hour-long deadline) and complete.
    svc.shutdown();
    for (i, f) in futs.into_iter().enumerate() {
        assert_eq!(f.wait(), None, "draining insert {i}");
    }
    let stats = svc.stats();
    assert_eq!(stats.drain_flushes, 1);
    assert_eq!(stats.completed, 3);
    assert_eq!(svc.map().len(), 3);
}

#[test]
fn mixed_kinds_split_into_per_kind_runs_in_queue_order() {
    let (mut svc, _clock) = manual(FlushPolicy::new(8, HOUR));
    // insert, insert | get, get | insert | remove — four maximal runs.
    let f0 = svc.submit(Op::Insert(1, 10)).unwrap();
    let f1 = svc.submit(Op::Insert(2, 20)).unwrap();
    let f2 = svc.submit(Op::Get(1)).unwrap();
    let f3 = svc.submit(Op::Get(3)).unwrap();
    let f4 = svc.submit(Op::Insert(1, 11)).unwrap();
    let f5 = svc.submit(Op::Remove(2)).unwrap();
    let f6 = svc.submit(Op::Get(1)).unwrap();
    let f7 = svc.submit(Op::Get(2)).unwrap();
    assert_eq!(
        svc.step(),
        Step::Flushed {
            len: 8,
            trigger: FlushTrigger::Size
        }
    );
    assert_eq!(f0.wait(), None);
    assert_eq!(f1.wait(), None);
    assert_eq!(f2.wait(), Some(10));
    assert_eq!(f3.wait(), None);
    assert_eq!(f4.wait(), Some(10), "second insert displaces the first");
    assert_eq!(f5.wait(), Some(20));
    assert_eq!(f6.wait(), Some(11));
    assert_eq!(f7.wait(), None, "get after the remove in queue order");
    assert_eq!(
        svc.map().batch_calls(),
        5,
        "insert×2 | get×2 | insert | remove | get×2 = five batch calls"
    );
    svc.shutdown();
}
