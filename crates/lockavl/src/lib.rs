//! # Lock-based AVL tree with non-blocking searches
//!
//! Stand-in for the lock-based relaxed-AVL baselines of the paper (AVL-B of
//! Bronson et al., AVL-D of Drachsler et al.): *searches never block* while
//! *updates serialize on a lock*. The implementation is a persistent
//! (path-copying) AVL tree: an updater takes the single writer lock, builds
//! the new root-to-leaf path with rotations, and publishes it with one
//! atomic root store; readers traverse the immutable structure under an
//! epoch guard, completely wait-free.
//!
//! This preserves the performance *shape* the paper observes for AVL-B/D:
//! query-heavy workloads scale with threads, update-heavy workloads flatten
//! or regress as writers queue on the lock — without reproducing Bronson's
//! intricate optimistic hand-over-hand validation, which is itself a
//! paper-sized artifact. Substitution documented in DESIGN.md.

#![warn(missing_docs)]

use std::sync::atomic::Ordering;

use crossbeam_epoch::{Atomic, Guard, Owned, Shared};
use llxscx::guard_cache::with_guard;
use parking_lot::Mutex;

struct AvlNode<K, V> {
    key: K,
    value: V,
    height: u32,
    left: Atomic<AvlNode<K, V>>,
    right: Atomic<AvlNode<K, V>>,
}

// SAFETY: all fields immutable after publication (children are `Atomic` only to be
// loadable under a guard; they are never stored to after publication).
unsafe impl<K: Send + Sync, V: Send + Sync> Send for AvlNode<K, V> {}
// SAFETY: same argument as `Send`.
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for AvlNode<K, V> {}

/// A concurrent ordered map: wait-free readers over a persistent AVL tree,
/// updates serialized by a global writer lock.
pub struct LockAvl<K, V> {
    root: Atomic<AvlNode<K, V>>,
    writer: Mutex<()>,
}

// SAFETY: updates are serialized by the writer mutex; readers only follow
// epoch-managed `Atomic` links, so cross-thread sharing is sound.
unsafe impl<K: Send + Sync, V: Send + Sync> Send for LockAvl<K, V> {}
// SAFETY: same argument as `Send`.
unsafe impl<K: Send + Sync, V: Send + Sync> Sync for LockAvl<K, V> {}

fn height<K, V>(n: Shared<'_, AvlNode<K, V>>) -> u32 {
    if n.is_null() {
        0
    } else {
        // SAFETY: caller holds a guard; heights immutable.
        unsafe { n.deref() }.height
    }
}

impl<K, V> LockAvl<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// An empty map.
    pub fn new() -> Self {
        LockAvl {
            root: Atomic::null(),
            writer: Mutex::new(()),
        }
    }

    fn mk<'g>(
        key: K,
        value: V,
        left: Shared<'g, AvlNode<K, V>>,
        right: Shared<'g, AvlNode<K, V>>,
        guard: &'g Guard,
    ) -> Shared<'g, AvlNode<K, V>> {
        let h = 1 + height(left).max(height(right));
        let node = AvlNode {
            key,
            value,
            height: h,
            left: Atomic::null(),
            right: Atomic::null(),
        };
        node.left.store(left, Ordering::Relaxed);
        node.right.store(right, Ordering::Relaxed);
        Owned::new(node).into_shared(guard)
    }

    /// Wait-free lookup.
    pub fn get(&self, key: &K) -> Option<V> {
        with_guard(|guard| {
            let mut cur = self.root.load(Ordering::Acquire, guard);
            while !cur.is_null() {
                // SAFETY: nodes reachable from a published root stay allocated
                // for the guard's lifetime (retirements are epoch-deferred).
                let n = unsafe { cur.deref() };
                cur = match key.cmp(&n.key) {
                    std::cmp::Ordering::Less => n.left.load(Ordering::Acquire, guard),
                    std::cmp::Ordering::Greater => n.right.load(Ordering::Acquire, guard),
                    std::cmp::Ordering::Equal => return Some(n.value.clone()),
                };
            }
            None
        })
    }

    /// Whether `key` is present (wait-free).
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Smallest key strictly greater than `key` (wait-free snapshot walk).
    pub fn successor(&self, key: &K) -> Option<(K, V)> {
        with_guard(|guard| {
            let mut cur = self.root.load(Ordering::Acquire, guard);
            let mut best: Option<(K, V)> = None;
            while !cur.is_null() {
                // SAFETY: `cur` is non-null (loop condition); path-copied nodes are
                // epoch-retired, so it stays allocated under `guard`.
                let n = unsafe { cur.deref() };
                if &n.key > key {
                    best = Some((n.key.clone(), n.value.clone()));
                    cur = n.left.load(Ordering::Acquire, guard);
                } else {
                    cur = n.right.load(Ordering::Acquire, guard);
                }
            }
            best
        })
    }

    /// Largest key strictly smaller than `key`.
    pub fn predecessor(&self, key: &K) -> Option<(K, V)> {
        with_guard(|guard| {
            let mut cur = self.root.load(Ordering::Acquire, guard);
            let mut best: Option<(K, V)> = None;
            while !cur.is_null() {
                // SAFETY: `cur` is non-null (loop condition) and alive under `guard`.
                let n = unsafe { cur.deref() };
                if &n.key < key {
                    best = Some((n.key.clone(), n.value.clone()));
                    cur = n.right.load(Ordering::Acquire, guard);
                } else {
                    cur = n.left.load(Ordering::Acquire, guard);
                }
            }
            best
        })
    }

    /// All pairs with keys in `bounds`, sorted. Wait-free and an **atomic
    /// snapshot** for free: updates are path-copying (persistent tree), so
    /// the root pointer loaded once below is an immutable version of the
    /// whole map — the scan linearizes at that single load. Recursion depth
    /// is the AVL height, O(log n).
    pub fn range<B: std::ops::RangeBounds<K>>(&self, bounds: B) -> Vec<(K, V)> {
        use std::ops::Bound;
        fn rec<K: Ord + Clone, V: Clone, B: std::ops::RangeBounds<K>>(
            n: Shared<'_, AvlNode<K, V>>,
            bounds: &B,
            out: &mut Vec<(K, V)>,
            guard: &Guard,
        ) {
            if n.is_null() {
                return;
            }
            // SAFETY: snapshot nodes stay allocated for the guard's lifetime.
            let node = unsafe { n.deref() };
            let descend_left = match bounds.start_bound() {
                Bound::Unbounded => true,
                Bound::Included(lo) | Bound::Excluded(lo) => lo < &node.key,
            };
            let descend_right = match bounds.end_bound() {
                Bound::Unbounded => true,
                Bound::Included(hi) | Bound::Excluded(hi) => hi > &node.key,
            };
            if descend_left {
                rec(node.left.load(Ordering::Acquire, guard), bounds, out, guard);
            }
            if bounds.contains(&node.key) {
                out.push((node.key.clone(), node.value.clone()));
            }
            if descend_right {
                rec(
                    node.right.load(Ordering::Acquire, guard),
                    bounds,
                    out,
                    guard,
                );
            }
        }
        with_guard(|guard| {
            let mut out = Vec::new();
            rec(
                self.root.load(Ordering::Acquire, guard),
                &bounds,
                &mut out,
                guard,
            );
            out
        })
    }

    /// Rebuilds `(key,value,left,right)` with an AVL rotation if unbalanced.
    /// All nodes created here are fresh; `retired` is untouched (only nodes
    /// from the *old* tree are ever retired).
    fn balance<'g>(
        key: K,
        value: V,
        left: Shared<'g, AvlNode<K, V>>,
        right: Shared<'g, AvlNode<K, V>>,
        guard: &'g Guard,
    ) -> Shared<'g, AvlNode<K, V>> {
        let (hl, hr) = (height(left), height(right));
        if hl > hr + 1 {
            // SAFETY: height ≥ 2 ⇒ non-null.
            let l = unsafe { left.deref() };
            let (ll, lr) = (
                l.left.load(Ordering::Acquire, guard),
                l.right.load(Ordering::Acquire, guard),
            );
            if height(ll) >= height(lr) {
                // Single right rotation.
                let new_right = Self::mk(key, value, lr, right, guard);
                return Self::mk(l.key.clone(), l.value.clone(), ll, new_right, guard);
            }
            // Double rotation (left-right).
            // SAFETY: `hl > hr + 1` forces a non-leaf left-right grandchild; loaded
            // under `guard`.
            let lrn = unsafe { lr.deref() };
            let (lrl, lrr) = (
                lrn.left.load(Ordering::Acquire, guard),
                lrn.right.load(Ordering::Acquire, guard),
            );
            let new_left = Self::mk(l.key.clone(), l.value.clone(), ll, lrl, guard);
            let new_right = Self::mk(key, value, lrr, right, guard);
            return Self::mk(
                lrn.key.clone(),
                lrn.value.clone(),
                new_left,
                new_right,
                guard,
            );
        }
        if hr > hl + 1 {
            // SAFETY: `hr > hl + 1` forces a non-null right child; loaded under `guard`.
            let r = unsafe { right.deref() };
            let (rl, rr) = (
                r.left.load(Ordering::Acquire, guard),
                r.right.load(Ordering::Acquire, guard),
            );
            if height(rr) >= height(rl) {
                let new_left = Self::mk(key, value, left, rl, guard);
                return Self::mk(r.key.clone(), r.value.clone(), new_left, rr, guard);
            }
            // SAFETY: the rebalance case requires a non-null right-left grandchild.
            let rln = unsafe { rl.deref() };
            let (rll, rlr) = (
                rln.left.load(Ordering::Acquire, guard),
                rln.right.load(Ordering::Acquire, guard),
            );
            let new_left = Self::mk(key, value, left, rll, guard);
            let new_right = Self::mk(r.key.clone(), r.value.clone(), rlr, rr, guard);
            return Self::mk(
                rln.key.clone(),
                rln.value.clone(),
                new_left,
                new_right,
                guard,
            );
        }
        Self::mk(key, value, left, right, guard)
    }

    /// Persistent insert: returns the new subtree root; pushes every node of
    /// the old tree that is superseded onto `retired`.
    fn insert_rec<'g>(
        node: Shared<'g, AvlNode<K, V>>,
        key: &K,
        value: &V,
        retired: &mut Vec<Shared<'g, AvlNode<K, V>>>,
        old: &mut Option<V>,
        guard: &'g Guard,
    ) -> Shared<'g, AvlNode<K, V>> {
        if node.is_null() {
            return Self::mk(
                key.clone(),
                value.clone(),
                Shared::null(),
                Shared::null(),
                guard,
            );
        }
        // SAFETY: old tree node under guard.
        let n = unsafe { node.deref() };
        retired.push(node);
        let (l, r) = (
            n.left.load(Ordering::Acquire, guard),
            n.right.load(Ordering::Acquire, guard),
        );
        match key.cmp(&n.key) {
            std::cmp::Ordering::Equal => {
                *old = Some(n.value.clone());
                Self::mk(key.clone(), value.clone(), l, r, guard)
            }
            std::cmp::Ordering::Less => {
                let nl = Self::insert_rec(l, key, value, retired, old, guard);
                Self::balance(n.key.clone(), n.value.clone(), nl, r, guard)
            }
            std::cmp::Ordering::Greater => {
                let nr = Self::insert_rec(r, key, value, retired, old, guard);
                Self::balance(n.key.clone(), n.value.clone(), l, nr, guard)
            }
        }
    }

    /// Removes and returns the minimum of a non-null subtree (persistently).
    fn take_min<'g>(
        node: Shared<'g, AvlNode<K, V>>,
        retired: &mut Vec<Shared<'g, AvlNode<K, V>>>,
        guard: &'g Guard,
    ) -> (Shared<'g, AvlNode<K, V>>, (K, V)) {
        // SAFETY: non-null by caller contract.
        let n = unsafe { node.deref() };
        retired.push(node);
        let (l, r) = (
            n.left.load(Ordering::Acquire, guard),
            n.right.load(Ordering::Acquire, guard),
        );
        if l.is_null() {
            return (r, (n.key.clone(), n.value.clone()));
        }
        let (nl, min) = Self::take_min(l, retired, guard);
        (
            Self::balance(n.key.clone(), n.value.clone(), nl, r, guard),
            min,
        )
    }

    fn remove_rec<'g>(
        node: Shared<'g, AvlNode<K, V>>,
        key: &K,
        retired: &mut Vec<Shared<'g, AvlNode<K, V>>>,
        old: &mut Option<V>,
        guard: &'g Guard,
    ) -> Shared<'g, AvlNode<K, V>> {
        if node.is_null() {
            return node; // key absent: nothing replaced
        }
        // SAFETY: `node` is non-null (checked by the recursion's base case).
        let n = unsafe { node.deref() };
        let (l, r) = (
            n.left.load(Ordering::Acquire, guard),
            n.right.load(Ordering::Acquire, guard),
        );
        match key.cmp(&n.key) {
            std::cmp::Ordering::Equal => {
                retired.push(node);
                *old = Some(n.value.clone());
                if r.is_null() {
                    return l;
                }
                if l.is_null() {
                    return r;
                }
                let (nr, (mk, mv)) = Self::take_min(r, retired, guard);
                Self::balance(mk, mv, l, nr, guard)
            }
            std::cmp::Ordering::Less => {
                let nl = Self::remove_rec(l, key, retired, old, guard);
                if old.is_none() {
                    return node; // untouched subtree
                }
                retired.push(node);
                Self::balance(n.key.clone(), n.value.clone(), nl, r, guard)
            }
            std::cmp::Ordering::Greater => {
                let nr = Self::remove_rec(r, key, retired, old, guard);
                if old.is_none() {
                    return node;
                }
                retired.push(node);
                Self::balance(n.key.clone(), n.value.clone(), l, nr, guard)
            }
        }
    }

    /// Inserts `key → value` (serialized with other updates); returns the
    /// previous value.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        with_guard(|guard| {
            let _w = self.writer.lock();
            let root = self.root.load(Ordering::Acquire, guard);
            let mut retired = Vec::new();
            let mut old = None;
            let new_root = Self::insert_rec(root, &key, &value, &mut retired, &mut old, guard);
            self.root.store(new_root, Ordering::Release);
            for n in retired {
                // SAFETY: superseded old-path nodes, unreachable from the new
                // root; readers may still hold them → epoch-deferred.
                unsafe { guard.defer_destroy(n) };
            }
            old
        })
    }

    /// Removes `key` (serialized with other updates); returns its value.
    pub fn remove(&self, key: &K) -> Option<V> {
        with_guard(|guard| {
            let _w = self.writer.lock();
            let root = self.root.load(Ordering::Acquire, guard);
            let mut retired = Vec::new();
            let mut old = None;
            let new_root = Self::remove_rec(root, key, &mut retired, &mut old, guard);
            if old.is_some() {
                self.root.store(new_root, Ordering::Release);
                for n in retired {
                    // SAFETY: as in insert.
                    unsafe { guard.defer_destroy(n) };
                }
            }
            old
        })
    }

    /// Number of keys (O(n) snapshot).
    pub fn len(&self) -> usize {
        with_guard(|guard| {
            let mut count = 0;
            let mut stack = vec![self.root.load(Ordering::Acquire, guard)];
            while let Some(n) = stack.pop() {
                if n.is_null() {
                    continue;
                }
                // SAFETY: `n` is non-null (checked above) and alive under `guard`.
                let node = unsafe { n.deref() };
                count += 1;
                stack.push(node.left.load(Ordering::Acquire, guard));
                stack.push(node.right.load(Ordering::Acquire, guard));
            }
            count
        })
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        with_guard(|guard| self.root.load(Ordering::Acquire, guard).is_null())
    }

    /// Sorted snapshot of the contents.
    pub fn collect(&self) -> Vec<(K, V)> {
        fn rec<K: Clone, V: Clone>(
            n: Shared<'_, AvlNode<K, V>>,
            out: &mut Vec<(K, V)>,
            guard: &Guard,
        ) {
            if n.is_null() {
                return;
            }
            // SAFETY: `n` is non-null (checked above) and alive under `guard`.
            let node = unsafe { n.deref() };
            rec(node.left.load(Ordering::Acquire, guard), out, guard);
            out.push((node.key.clone(), node.value.clone()));
            rec(node.right.load(Ordering::Acquire, guard), out, guard);
        }
        with_guard(|guard| {
            let mut out = Vec::new();
            rec(self.root.load(Ordering::Acquire, guard), &mut out, guard);
            out
        })
    }

    /// Checks AVL balance and BST order; returns the height.
    /// Test/diagnostic helper.
    pub fn check_invariants(&self) -> Result<u32, String> {
        fn rec<K: Ord, V>(
            n: Shared<'_, AvlNode<K, V>>,
            lo: Option<&K>,
            hi: Option<&K>,
            guard: &Guard,
        ) -> Result<u32, String> {
            if n.is_null() {
                return Ok(0);
            }
            // SAFETY: `n` is non-null (checked above) and alive under `guard`.
            let node = unsafe { n.deref() };
            if let Some(lo) = lo {
                if &node.key <= lo {
                    return Err("BST order (low)".into());
                }
            }
            if let Some(hi) = hi {
                if &node.key >= hi {
                    return Err("BST order (high)".into());
                }
            }
            let hl = rec(
                node.left.load(Ordering::Acquire, guard),
                lo,
                Some(&node.key),
                guard,
            )?;
            let hr = rec(
                node.right.load(Ordering::Acquire, guard),
                Some(&node.key),
                hi,
                guard,
            )?;
            if hl.abs_diff(hr) > 1 {
                return Err(format!("unbalanced: {hl} vs {hr}"));
            }
            let h = 1 + hl.max(hr);
            if h != node.height {
                return Err(format!("stale height: stored {} real {h}", node.height));
            }
            Ok(h)
        }
        with_guard(|guard| rec(self.root.load(Ordering::Acquire, guard), None, None, guard))
    }
}

impl<K, V> Default for LockAvl<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> Drop for LockAvl<K, V> {
    fn drop(&mut self) {
        // SAFETY: exclusive `&mut self` in Drop — no concurrent readers, so the
        // unprotected guard is sound.
        let guard = unsafe { crossbeam_epoch::unprotected() };
        let mut stack = vec![self.root.load(Ordering::Acquire, guard)];
        while let Some(n) = stack.pop() {
            if n.is_null() {
                continue;
            }
            // SAFETY: exclusive access; persistent tree nodes are uniquely
            // reachable from the current root (old versions were retired
            // through the epoch collector at update time).
            unsafe {
                let node = n.deref();
                stack.push(node.left.load(Ordering::Acquire, guard));
                stack.push(node.right.load(Ordering::Acquire, guard));
                drop(n.into_owned());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    #[test]
    fn basics() {
        let t = LockAvl::new();
        assert_eq!(t.insert(1, 10), None);
        assert_eq!(t.insert(1, 11), Some(10));
        assert_eq!(t.get(&1), Some(11));
        assert_eq!(t.remove(&1), Some(11));
        assert!(t.is_empty());
        t.check_invariants().unwrap();
    }

    #[test]
    fn random_against_model() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let t = LockAvl::new();
        let mut model = BTreeMap::new();
        for step in 0..8000u64 {
            let k = rng.gen_range(0..300u64);
            match rng.gen_range(0..3) {
                0 => assert_eq!(t.insert(k, step), model.insert(k, step)),
                1 => assert_eq!(t.remove(&k), model.remove(&k)),
                _ => assert_eq!(t.get(&k), model.get(&k).copied()),
            }
            if step % 1024 == 0 {
                t.check_invariants().unwrap();
            }
        }
        t.check_invariants().unwrap();
        assert_eq!(t.collect(), model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn successor_predecessor() {
        let t = LockAvl::new();
        for k in [10u64, 20, 30] {
            t.insert(k, k);
        }
        assert_eq!(t.successor(&10), Some((20, 20)));
        assert_eq!(t.successor(&30), None);
        assert_eq!(t.predecessor(&10), None);
        assert_eq!(t.predecessor(&35), Some((30, 30)));
    }

    #[test]
    fn ascending_balance() {
        let t = LockAvl::new();
        for i in 0..10_000u64 {
            t.insert(i, i);
        }
        let h = t.check_invariants().unwrap();
        assert!(h <= 20, "AVL height {h} too large for 10k keys");
    }

    #[test]
    fn range_matches_model() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        use std::collections::BTreeMap;
        let mut rng = StdRng::seed_from_u64(41);
        let t = LockAvl::new();
        let mut model = BTreeMap::new();
        for step in 0..2000u64 {
            let k = rng.gen_range(0..256u64);
            if rng.gen_bool(0.7) {
                t.insert(k, step);
                model.insert(k, step);
            } else {
                t.remove(&k);
                model.remove(&k);
            }
            let lo = rng.gen_range(0..256u64);
            let hi = lo + rng.gen_range(0..64u64);
            let expect: Vec<_> = model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
            assert_eq!(t.range(lo..=hi), expect, "[{lo}, {hi}]");
        }
        assert_eq!(t.range(..), model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let t = Arc::new(LockAvl::new());
        for i in 0..1000u64 {
            t.insert(i * 2, i);
        }
        std::thread::scope(|s| {
            for tid in 0..2u64 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    let base = 10_000 + tid * 1000;
                    for i in 0..1000 {
                        t.insert(base + i, i);
                    }
                    for i in (0..1000).step_by(2) {
                        assert_eq!(t.remove(&(base + i)), Some(i));
                    }
                });
            }
            for _ in 0..2 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    for _ in 0..50_000 {
                        let _ = t.get(&500);
                        let _ = t.successor(&123);
                    }
                });
            }
        });
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 1000 + 2 * 500);
    }
}
