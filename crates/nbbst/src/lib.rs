//! # Non-blocking unbalanced leaf-oriented BST
//!
//! The tree of Ellen, Fatourou, Ruppert and van Breugel (PODC 2010),
//! rebuilt with the PPoPP 2014 *tree update template*: this is the paper's
//! demonstration that the template makes such structures nearly mechanical
//! to produce. Insertion and deletion are single template instances driven
//! by the generic [`nbtree::tree_update`] runner; there is no rebalancing,
//! so the height can be Θ(n) for adversarial key orders — which is exactly
//! why it serves as an experimental baseline against the chromatic tree.
//!
//! ```
//! let t = nbbst::NbBst::new();
//! t.insert(1, "one");
//! assert_eq!(t.get(&1), Some("one"));
//! assert_eq!(t.remove(&1), Some("one"));
//! ```

#![warn(missing_docs)]

use llxscx::epoch::{Atomic, Guard, Shared};
use llxscx::guard_cache::with_guard;
use nbtree::node::Node;
use nbtree::{tree_update, TemplateStep};
use std::sync::atomic::Ordering;

/// A lock-free unbalanced leaf-oriented BST (ordered map).
///
/// Same sentinel layout as the chromatic tree (paper Fig. 10), same
/// leaf-oriented updates (Insert1/Insert2/Delete of Fig. 11), but no
/// weights are maintained and no rebalancing is performed.
pub struct NbBst<K: Send + Sync + 'static, V: Send + Sync + 'static> {
    entry: Atomic<Node<K, V>>,
}

// SAFETY: all shared mutable state behind atomics/epoch guards.
unsafe impl<K: Send + Sync + 'static, V: Send + Sync + 'static> Send for NbBst<K, V> {}
// SAFETY: same argument as `Send`.
unsafe impl<K: Send + Sync + 'static, V: Send + Sync + 'static> Sync for NbBst<K, V> {}

/// (grandparent, parent, leaf) triple returned by the pure-read search.
type SearchPath<'g, K, V> = (
    Shared<'g, Node<K, V>>,
    Shared<'g, Node<K, V>>,
    Shared<'g, Node<K, V>>,
);

impl<K, V> NbBst<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// An empty tree.
    pub fn new() -> Self {
        // SAFETY: construction — the tree is not yet shared with any thread.
        let guard = unsafe { llxscx::epoch::unprotected() };
        let leaf = Node::leaf(None, None, 1).into_shared(guard);
        NbBst {
            entry: Atomic::from(Node::internal(None, 1, leaf, Shared::null())),
        }
    }

    fn entry<'g>(&self, guard: &'g Guard) -> Shared<'g, Node<K, V>> {
        // SEQCST: entry pointer participates in the SCX total order.
        self.entry.load(Ordering::SeqCst, guard)
    }

    /// Pure-read search; returns (grandparent, parent, leaf) on `key`'s
    /// search path (grandparent null when the tree is empty).
    fn search<'g>(&self, key: &K, guard: &'g Guard) -> SearchPath<'g, K, V> {
        let mut gp = Shared::null();
        let mut p = self.entry(guard);
        // SAFETY: entry never removed; children reached under guard (C3).
        let mut l = unsafe { p.deref() }.read_child(0, guard);
        loop {
            // SAFETY: children of a live internal node are non-null (leaf-oriented
            // tree) and reachable under `guard`.
            let l_ref = unsafe { l.deref() };
            if l_ref.is_leaf(guard) {
                return (gp, p, l);
            }
            gp = p;
            p = l;
            let dir = if l_ref.route_left(key) { 0 } else { 1 };
            l = l_ref.read_child(dir, guard);
        }
    }

    /// Value associated with `key`, using only plain reads.
    pub fn get(&self, key: &K) -> Option<V> {
        with_guard(|guard| {
            let (_, _, l) = self.search(key, guard);
            // SAFETY: `search` always lands on a leaf: non-null, alive under `guard`.
            let leaf = unsafe { l.deref() };
            if leaf.key_eq(key) {
                leaf.value().cloned()
            } else {
                None
            }
        })
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        with_guard(|guard| {
            let (_, _, l) = self.search(key, guard);
            // SAFETY: `search` always lands on a leaf: non-null, alive under `guard`.
            unsafe { l.deref() }.key_eq(key)
        })
    }

    /// Inserts `key → value`; returns the previous value, if any.
    ///
    /// Driven by the generic template runner: LLX the parent, check the
    /// leaf is still its child, LLX the leaf, then a single SCX.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        loop {
            let outcome = with_guard(|guard| {
                let (_, p, l) = self.search(&key, guard);
                tree_update(p, guard, |handles| match handles.len() {
                    1 => {
                        let hp = &handles[0];
                        if hp.left() != l && hp.right() != l {
                            return TemplateStep::Abort;
                        }
                        TemplateStep::Llx(l)
                    }
                    2 => {
                        let hp = &handles[0];
                        let hl = &handles[1];
                        let dir = if hp.left() == l { 0 } else { 1 };
                        let leaf = hl.node_ref();
                        if leaf.key_eq(&key) {
                            // Replacement (Insert2): R = {leaf}.
                            let old = leaf.value().cloned();
                            let new = Node::leaf(Some(key.clone()), Some(value.clone()), 1)
                                .into_shared(guard);
                            TemplateStep::Scx {
                                finalize: 0b10,
                                fld_record: 0,
                                fld_idx: dir,
                                new,
                                created: vec![new],
                                result: old,
                            }
                        } else {
                            // Insert1: new internal, old leaf reused (R = ∅).
                            let new_leaf = Node::leaf(Some(key.clone()), Some(value.clone()), 1)
                                .into_shared(guard);
                            let new = if leaf.route_left(&key) {
                                Node::internal(leaf.key().cloned(), 1, new_leaf, l)
                            } else {
                                Node::internal(Some(key.clone()), 1, l, new_leaf)
                            }
                            .into_shared(guard);
                            TemplateStep::Scx {
                                finalize: 0,
                                fld_record: 0,
                                fld_idx: dir,
                                new,
                                created: vec![new_leaf, new],
                                result: None,
                            }
                        }
                    }
                    _ => unreachable!("template sequence for insert has length 2"),
                })
            });
            if let Ok(old) = outcome {
                return old;
            }
        }
    }

    /// Removes `key`; returns its value, if it was present.
    pub fn remove(&self, key: &K) -> Option<V> {
        loop {
            let done = with_guard(|guard| {
                let (gp, p, l) = self.search(key, guard);
                // SAFETY: see search.
                if !unsafe { l.deref() }.key_eq(key) {
                    return Some(None); // linearizes like a query
                }
                if gp.is_null() {
                    return Some(None); // empty tree shape: only the ∞ leaf
                }
                let outcome = tree_update(gp, guard, |handles| match handles.len() {
                    1 => {
                        let hgp = &handles[0];
                        if hgp.left() != p && hgp.right() != p {
                            return TemplateStep::Abort;
                        }
                        TemplateStep::Llx(p)
                    }
                    2 => {
                        let hp = &handles[1];
                        if hp.left() != l && hp.right() != l {
                            return TemplateStep::Abort;
                        }
                        TemplateStep::Llx(l)
                    }
                    3 => {
                        let hp = &handles[1];
                        let sib = if hp.left() == l {
                            hp.right()
                        } else {
                            hp.left()
                        };
                        TemplateStep::Llx(sib)
                    }
                    4 => {
                        let hgp = &handles[0];
                        let hl = &handles[2];
                        let hs = &handles[3];
                        let dir = if hgp.left() == p { 0 } else { 1 };
                        let s_ref = hs.node_ref();
                        // Fresh copy of the sibling replaces the parent.
                        let new = if s_ref.is_leaf(guard) {
                            Node::leaf(s_ref.key().cloned(), s_ref.value().cloned(), 1)
                        } else {
                            Node::internal(s_ref.key().cloned(), 1, hs.left(), hs.right())
                        }
                        .into_shared(guard);
                        TemplateStep::Scx {
                            finalize: 0b1110, // {p, l, s}
                            fld_record: 0,
                            fld_idx: dir,
                            new,
                            created: vec![new],
                            result: hl.node_ref().value().cloned(),
                        }
                    }
                    _ => unreachable!("template sequence for delete has length 4"),
                });
                // Ok(old) ⇒ done (Some), SCX failure ⇒ retry (None); the
                // early returns above are "done with None" in the same
                // encoding.
                outcome.ok()
            });
            if let Some(old) = done {
                return old;
            }
        }
    }

    /// All pairs with keys in `bounds`, sorted — an atomic snapshot,
    /// VLX-validated by the shared scan of [`nbtree::range`] (the template
    /// trees share their node layout, so the chromatic tree's range
    /// machinery applies verbatim; only the entry pointer differs).
    pub fn range<B: std::ops::RangeBounds<K>>(&self, bounds: B) -> Vec<(K, V)> {
        loop {
            let out = with_guard(|guard| nbtree::try_range_scan(self.entry(guard), &bounds, guard));
            if let Some(out) = out {
                return out;
            }
        }
    }

    /// Number of keys (O(n) traversal snapshot).
    pub fn len(&self) -> usize {
        with_guard(|guard| {
            let mut count = 0;
            let mut stack = vec![self.entry(guard)];
            while let Some(n) = stack.pop() {
                if n.is_null() {
                    continue;
                }
                // SAFETY: `n` is non-null (checked above) and reached under `guard`.
                let node = unsafe { n.deref() };
                if node.is_leaf(guard) {
                    if !node.is_sentinel_key() {
                        count += 1;
                    }
                } else {
                    stack.push(node.read_child(0, guard));
                    stack.push(node.read_child(1, guard));
                }
            }
            count
        })
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sorted snapshot of the contents.
    pub fn collect(&self) -> Vec<(K, V)> {
        fn rec<K: Ord + Clone + Send + Sync + 'static, V: Clone + Send + Sync + 'static>(
            n: Shared<'_, Node<K, V>>,
            out: &mut Vec<(K, V)>,
            guard: &Guard,
        ) {
            if n.is_null() {
                return;
            }
            // SAFETY: `n` is non-null (checked above) and reached under `guard`.
            let node = unsafe { n.deref() };
            if node.is_leaf(guard) {
                if let (Some(k), Some(v)) = (node.key(), node.value()) {
                    out.push((k.clone(), v.clone()));
                }
            } else {
                rec(node.read_child(0, guard), out, guard);
                rec(node.read_child(1, guard), out, guard);
            }
        }
        with_guard(|guard| {
            let mut out = Vec::new();
            rec(self.entry(guard), &mut out, guard);
            out
        })
    }
}

impl<K, V> Default for NbBst<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Send + Sync + 'static, V: Send + Sync + 'static> Drop for NbBst<K, V> {
    fn drop(&mut self) {
        // SAFETY: exclusive `&mut self` in Drop — no concurrent readers, so the
        // unprotected guard is sound.
        let guard = unsafe { llxscx::epoch::unprotected() };
        // SEQCST: teardown/cold path; kept uniform with the entry's accesses.
        let mut stack = vec![self.entry.load(Ordering::SeqCst, guard)];
        while let Some(n) = stack.pop() {
            if n.is_null() {
                continue;
            }
            // SAFETY: exclusive access in Drop; down-tree ⇒ each node once.
            unsafe {
                let node = n.deref();
                stack.push(node.read_child(0, guard));
                stack.push(node.read_child(1, guard));
                llxscx::reclaim::dispose_record(n.as_raw());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn basics() {
        let t = NbBst::new();
        assert_eq!(t.get(&1), None);
        assert_eq!(t.insert(1, 10), None);
        assert_eq!(t.insert(1, 11), Some(10));
        assert_eq!(t.get(&1), Some(11));
        assert_eq!(t.remove(&1), Some(11));
        assert_eq!(t.remove(&1), None);
        assert!(t.is_empty());
    }

    #[test]
    fn random_against_model() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let t = NbBst::new();
        let mut model = BTreeMap::new();
        for step in 0..5000u64 {
            let k = rng.gen_range(0..300u64);
            match rng.gen_range(0..3) {
                0 => assert_eq!(t.insert(k, step), model.insert(k, step)),
                1 => assert_eq!(t.remove(&k), model.remove(&k)),
                _ => assert_eq!(t.get(&k), model.get(&k).copied()),
            }
        }
        assert_eq!(t.collect(), model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn range_matches_model() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let t = NbBst::new();
        let mut model = BTreeMap::new();
        for step in 0..2000u64 {
            let k = rng.gen_range(0..256u64);
            if rng.gen_bool(0.7) {
                t.insert(k, step);
                model.insert(k, step);
            } else {
                t.remove(&k);
                model.remove(&k);
            }
            let lo = rng.gen_range(0..256u64);
            let hi = lo + rng.gen_range(0..64u64);
            let expect: Vec<_> = model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
            assert_eq!(t.range(lo..=hi), expect, "[{lo}, {hi}]");
        }
        assert_eq!(t.range(..), model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_stripes() {
        use std::sync::Arc;
        let t = Arc::new(NbBst::new());
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    let base = tid * 1000;
                    for i in 0..1000 {
                        t.insert(base + i, i);
                    }
                    for i in (0..1000).step_by(2) {
                        assert_eq!(t.remove(&(base + i)), Some(i));
                    }
                });
            }
        });
        assert_eq!(t.len(), 4 * 500);
    }
}
