//! Compatibility re-export: the configuration gate moved into the `lint`
//! crate (as `lint::cfg`) when `nblint` absorbed the `cfgcheck` rules.
//! Existing callers of `bench::cfggate::*` keep working unchanged.

pub use lint::cfg::*;
