//! Thin compatibility alias for `nblint --check` (see `lint::driver`).
//!
//! `cfgcheck` predates the full static-analysis driver: it gated only the
//! configuration idioms (env mutation, hot-loop markers). Those rules now
//! run inside `nblint` along with unsafe/SAFETY coverage, the ordering
//! audit and the epoch-guard discipline, and CI's `analysis` job invokes
//! `nblint --check` directly. This bin remains so existing scripts and
//! muscle memory (`cargo run -p bench --bin cfgcheck`) keep working; it
//! runs the identical full check.

use std::path::PathBuf;

fn main() {
    // Repo root: two levels above this crate's manifest dir.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("bench crate sits two levels under the repo root")
        .to_path_buf();
    eprintln!("cfgcheck: alias for `nblint --check` (the rules moved into crates/lint)");
    match lint::driver::check(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("cfgcheck: clean (full nblint check)");
        }
        Ok(findings) => {
            for f in &findings {
                eprintln!("{f}");
            }
            eprintln!("cfgcheck: {} finding(s)", findings.len());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("cfgcheck: {e}");
            std::process::exit(2);
        }
    }
}
