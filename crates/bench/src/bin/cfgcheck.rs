//! Configuration-discipline gate (see `bench::cfggate`): scans every
//! first-party `*.rs` file for the retired environment-mutation idioms
//! (`std::env` mutation, the old shard-span pinning helpers, and
//! suite-construction env parsing outside `workload::config`) and exits
//! non-zero listing the offenders. It also runs the **hot-loop gate**:
//! the `cfgcheck:hotloop` regions of `run_trial` (the measured loops
//! between barrier and stop flag) must stay free of OS-clock
//! timestamping and allocation idioms, so the latency percentiles keep
//! measuring the structures rather than the harness. CI runs both in the
//! docs job next to `linkcheck`; locally:
//!
//! ```sh
//! cargo run --release -p bench --bin cfgcheck
//! ```

use std::path::PathBuf;

fn main() {
    // Repo root: two levels above this crate's manifest dir.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("bench crate sits two levels under the repo root")
        .to_path_buf();
    let mut failed = false;

    let hits = bench::cfggate::scan_repo(&root);
    if hits.is_empty() {
        println!("cfgcheck: configuration discipline holds (no forbidden idioms)");
    } else {
        failed = true;
        eprintln!(
            "cfgcheck: {} forbidden configuration idiom(s) — suite-construction \
             knobs must flow through workload::SuiteConfig, never the environment:",
            hits.len()
        );
        for hit in &hits {
            eprintln!("  {}:{}: `{}`", hit.path.display(), hit.line, hit.token);
        }
    }

    match bench::cfggate::scan_hotloop_repo(&root) {
        Ok(hits) if hits.is_empty() => {
            println!("cfgcheck: run_trial hot loops are clean (no timing/allocation idioms)");
        }
        Ok(hits) => {
            failed = true;
            eprintln!(
                "cfgcheck: {} forbidden idiom(s) inside run_trial's measured loops — \
                 the hot path must stay RNG-, clock- and allocation-free:",
                hits.len()
            );
            for hit in &hits {
                eprintln!("  {}:{}: `{}`", hit.path.display(), hit.line, hit.token);
            }
        }
        Err(e) => {
            failed = true;
            eprintln!("cfgcheck: hot-loop gate error: {e}");
        }
    }

    if failed {
        std::process::exit(1);
    }
}
