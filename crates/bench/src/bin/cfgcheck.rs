//! Configuration-discipline gate (see `bench::cfggate`): scans every
//! first-party `*.rs` file for the retired environment-mutation idioms
//! (`std::env` mutation, the old shard-span pinning helpers, and
//! suite-construction env parsing outside `workload::config`) and exits
//! non-zero listing the offenders. CI runs it in the docs job next to
//! `linkcheck`; locally:
//!
//! ```sh
//! cargo run --release -p bench --bin cfgcheck
//! ```

use std::path::PathBuf;

fn main() {
    // Repo root: two levels above this crate's manifest dir.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("bench crate sits two levels under the repo root")
        .to_path_buf();
    let hits = bench::cfggate::scan_repo(&root);
    if hits.is_empty() {
        println!("cfgcheck: configuration discipline holds (no forbidden idioms)");
        return;
    }
    eprintln!(
        "cfgcheck: {} forbidden configuration idiom(s) — suite-construction \
         knobs must flow through workload::SuiteConfig, never the environment:",
        hits.len()
    );
    for hit in &hits {
        eprintln!("  {}:{}: `{}`", hit.path.display(), hit.line, hit.token);
    }
    std::process::exit(1);
}
