//! Machine-readable point-op tier snapshot: the paper's operation mixes
//! on the chromatic tree vs. the hopscotch hash map (`hashmap`) vs. the
//! sharded hash+tree composition (`hybrid`) across a thread sweep,
//! recorded as one labeled run in `BENCH_hash.json` (same label-merge
//! behavior as `bench_fig8` / `bench_shard`).
//!
//! This is the experiment behind `docs/HASHING.md`: a comparison-free
//! bounded-probe table should beat the tree on point lookups — the
//! read-only mix is the headline cell — while the hybrid pays one extra
//! write per mutation for tree-backed ranges and should stay within a
//! small constant of the pure hash map on point mixes.
//!
//! Knobs: `NBTREE_BENCH_SECS`, `NBTREE_BENCH_TRIALS`,
//! `NBTREE_BENCH_THREADS` (default `1,2,4,8`), `NBTREE_BENCH_RANGES`
//! (first entry is the key range; default 10000); `--label NAME`,
//! `--out PATH` (default `BENCH_hash.json`).

use bench::json::Json;
use bench::{bench_threads, first_key_range, trial_duration, trials};
use workload::{measure, Mix, SuiteConfig};

/// Structures swept: the tree baseline, the hash tier, the composition.
const STRUCTURES: [&str; 3] = ["chromatic", "hashmap", "hybrid"];

fn main() {
    let mut label = String::from("current");
    let mut out_path = String::from("BENCH_hash.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--label" => label = args.next().expect("--label needs a value"),
            "--out" => out_path = args.next().expect("--out needs a value"),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: bench_hash [--label NAME] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let duration = trial_duration();
    let n_trials = trials();
    let threads = bench_threads(&[1, 2, 4, 8]);
    let range = first_key_range();
    // The hybrid routes through the sharding façade: size its boundary
    // table to the swept key range, like bench_shard does.
    let cfg = SuiteConfig::from_env().for_key_range(range);

    eprintln!(
        "# bench_hash: label={label} range={range} threads={threads:?} \
         {n_trials} trial(s) x {duration:?}"
    );

    let mut results = Vec::new();
    for structure in STRUCTURES {
        for mix in Mix::ALL {
            let mix_label = mix.label();
            for &t in &threads {
                let (mops, trial_results) =
                    measure(structure, &cfg, t, mix, range, duration, n_trials, 42);
                eprintln!("  {structure} {mix_label} threads={t}: {mops:.3} Mops/s");
                let mut row = vec![
                    ("structure", Json::Str(structure.to_string())),
                    ("mix", Json::Str(mix_label.to_string())),
                    ("threads", Json::Num(t as f64)),
                    ("mops", Json::Num(mops)),
                ];
                row.extend(bench::latency_fields(&trial_results));
                row.extend(bench::provenance(t));
                results.push(Json::obj(row));
            }
        }
    }

    let mops_of = |structure: &str, mix_label: &str, t: usize| {
        results
            .iter()
            .find(|r| {
                r.get("structure").and_then(Json::as_str) == Some(structure)
                    && r.get("mix").and_then(Json::as_str) == Some(mix_label)
                    && r.get("threads").and_then(Json::as_f64) == Some(t as f64)
            })
            .and_then(|r| r.get("mops").and_then(Json::as_f64))
            .unwrap_or(f64::NAN)
    };

    // The two ratios the acceptance gate reads: hash tier over the tree
    // (point-op win) and hybrid over the hash tier (composition tax).
    for mix in Mix::ALL {
        let mix_label = mix.label();
        for &t in &threads {
            let tree = mops_of("chromatic", &mix_label, t);
            let hash = mops_of("hashmap", &mix_label, t);
            let hybrid = mops_of("hybrid", &mix_label, t);
            eprintln!(
                "  speedup {mix_label} threads={t}: hashmap/chromatic = {:.2}x, \
                 hybrid/hashmap = {:.2}x",
                hash / tree,
                hybrid / hash
            );
        }
    }

    let run = Json::obj(vec![
        ("label", Json::Str(label.clone())),
        ("range", Json::Num(range as f64)),
        ("duration_secs", Json::Num(duration.as_secs_f64())),
        ("trials", Json::Num(n_trials as f64)),
        ("results", Json::Arr(results)),
    ]);

    let existing = std::fs::read_to_string(&out_path).ok();
    let doc = bench::json::merge_labeled_run(existing.as_deref(), "bench_hash/v1", &label, run);
    std::fs::write(&out_path, doc.pretty()).expect("write BENCH_hash.json");
    eprintln!("wrote {out_path}");
}
