//! Validates the height bound of §5.3: at quiescence the chromatic tree's
//! height is at most that of a red-black tree (≤ 2·log2(n+1) over the
//! leaves) plus the configured violation allowance; during execution it is
//! O(k + c + log n) with c concurrent updates.

use nbtree::ChromaticTree;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn log2ceil(n: usize) -> usize {
    (usize::BITS - n.next_power_of_two().leading_zeros()) as usize
}

fn main() {
    println!("# Height bound experiment (§5.3): height vs 2·log2(n+1) + k");
    println!(
        "{:<10} {:>3} {:>9} {:>8} {:>8} {:>11}",
        "n", "k", "height", "bound", "viols", "ok"
    );
    for k in [0u32, 6] {
        for exp in [10u32, 13, 16] {
            let n = 1u64 << exp;
            let t = Arc::new(ChromaticTree::with_allowed_violations(k));
            let threads = std::thread::available_parallelism()
                .map(|x| x.get().min(8))
                .unwrap_or(4);
            let stop = Arc::new(AtomicBool::new(false));
            // Concurrent random churn around a prefilled set.
            std::thread::scope(|s| {
                for tid in 0..threads {
                    let t = Arc::clone(&t);
                    let stop = Arc::clone(&stop);
                    s.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(tid as u64);
                        let per = n / threads as u64;
                        let base = tid as u64 * per;
                        for i in 0..per {
                            t.insert(base + i, i);
                        }
                        while !stop.load(Ordering::Relaxed) {
                            let key = rng.gen_range(0..n);
                            if rng.gen_bool(0.5) {
                                t.insert(key, key);
                            } else {
                                t.remove(&key);
                            }
                        }
                    });
                }
                std::thread::sleep(std::time::Duration::from_millis(300));
                stop.store(true, Ordering::Relaxed);
            });
            let report = t.audit();
            assert!(report.is_valid(), "{:?}", report.errors);
            // Quiescent bound: RBT height over leaf-oriented tree + slack k.
            let bound = 2 * log2ceil(report.keys + 1) + 2 + k as usize;
            let ok = report.height <= bound;
            println!(
                "{:<10} {:>3} {:>9} {:>8} {:>8} {:>11}",
                report.keys,
                k,
                report.height,
                bound,
                report.violations(),
                ok
            );
            assert!(ok, "height bound violated");
        }
    }
    println!("all height bounds hold");
}
