//! Repo-local markdown link integrity: walks every `*.md` outside
//! `vendor/`/`target/`/hidden dirs, resolves intra-repo link targets and
//! exits non-zero listing any that point at nothing. No network —
//! external URLs and in-page anchors are skipped. CI runs this in the
//! `analysis` job; locally:
//!
//! ```sh
//! cargo run --release -p bench --bin linkcheck [ROOT]
//! ```

use bench::links::{broken_target, extract_links, markdown_files};

fn main() {
    let root = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let root = root.canonicalize().unwrap_or_else(|e| {
        eprintln!("linkcheck: cannot resolve root {}: {e}", root.display());
        std::process::exit(2);
    });

    let files = markdown_files(&root);
    let mut checked = 0usize;
    let mut broken = 0usize;
    for file in &files {
        let Ok(text) = std::fs::read_to_string(file) else {
            eprintln!("linkcheck: unreadable {}", file.display());
            broken += 1;
            continue;
        };
        for link in extract_links(&text) {
            checked += 1;
            if let Some(resolved) = broken_target(&root, file, &link.target) {
                broken += 1;
                eprintln!(
                    "{}:{}: broken link `{}` -> {}",
                    file.strip_prefix(&root).unwrap_or(file).display(),
                    link.line,
                    link.target,
                    resolved.display()
                );
            }
        }
    }
    eprintln!(
        "linkcheck: {} markdown file(s), {checked} link(s), {broken} broken",
        files.len()
    );
    if broken > 0 {
        std::process::exit(1);
    }
}
