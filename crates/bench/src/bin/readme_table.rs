//! Regenerates (or, with `--check`, verifies) the "Current numbers"
//! table in `README.md` from the checked-in `BENCH_fig8.json`, so the
//! recorded baseline and the prose never drift. The table lives between
//! `readme_table:begin`/`end` marker comments; everything else in the
//! README is untouched.
//!
//! ```sh
//! cargo run --release -p bench --bin readme_table              # rewrite
//! cargo run --release -p bench --bin readme_table -- --check   # CI gate
//! ```
//!
//! Flags: `--label NAME` (default: the artifact's most recent run),
//! `--artifact PATH` (default `BENCH_fig8.json`), `--readme PATH`
//! (default `README.md`).

use bench::json::Json;
use bench::readme::{bench_table, splice};

fn main() {
    let mut label: Option<String> = None;
    let mut artifact = String::from("BENCH_fig8.json");
    let mut readme = String::from("README.md");
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--label" => label = Some(args.next().expect("--label needs a value")),
            "--artifact" => artifact = args.next().expect("--artifact needs a value"),
            "--readme" => readme = args.next().expect("--readme needs a value"),
            "--check" => check = true,
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: readme_table [--check] [--label NAME] [--artifact PATH] [--readme PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    let run = || -> Result<(), String> {
        let artifact_text = std::fs::read_to_string(&artifact)
            .map_err(|e| format!("cannot read {artifact}: {e}"))?;
        let doc = Json::parse(&artifact_text).map_err(|e| format!("{artifact}: {e}"))?;
        let table = bench_table(&doc, label.as_deref())?;
        let current =
            std::fs::read_to_string(&readme).map_err(|e| format!("cannot read {readme}: {e}"))?;
        let updated = splice(&current, &table)?;
        if updated == current {
            eprintln!("readme_table: {readme} is up to date with {artifact}");
        } else if check {
            return Err(format!(
                "{readme} is stale relative to {artifact}; \
                 run `cargo run --release -p bench --bin readme_table` and commit"
            ));
        } else {
            std::fs::write(&readme, &updated).map_err(|e| format!("cannot write {readme}: {e}"))?;
            eprintln!("readme_table: rewrote the Current-numbers table in {readme}");
        }
        Ok(())
    };
    if let Err(e) = run() {
        eprintln!("readme_table: {e}");
        std::process::exit(1);
    }
}
