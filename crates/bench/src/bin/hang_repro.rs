use nbtree::ChromaticTree;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Arc;

fn run(seed: u64, nthreads: u64, ops: u64, range: u64) -> usize {
    let t = Arc::new(ChromaticTree::<u64, u64>::with_allowed_violations(0));
    std::thread::scope(|s| {
        for tid in 0..nthreads {
            let t = Arc::clone(&t);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed * 1000 + tid);
                let trace = std::env::var("NBTREE_TRACE").is_ok();
                for i in 0..ops {
                    let key = rng.gen_range(0..range);
                    match rng.gen_range(0..10) {
                        0..=4 => {
                            if trace {
                                eprintln!(
                                    "[{:?}] op{} insert({key})",
                                    std::thread::current().id(),
                                    i
                                );
                            }
                            t.insert(key, tid);
                        }
                        _ => {
                            if trace {
                                eprintln!(
                                    "[{:?}] op{} remove({key})",
                                    std::thread::current().id(),
                                    i
                                );
                            }
                            t.remove(&key);
                        }
                    }
                }
            });
        }
    });
    let rep = t.audit();
    if !rep.is_valid() {
        eprintln!("seed {seed}: INVALID {:?}", rep.errors);
    }
    if rep.violations() > 0 && std::env::var("DUMP").is_ok() {
        eprintln!(
            "seed {seed}: {} redred {} ow",
            rep.red_red_violations, rep.overweight_violations
        );
        t.debug_dump(16);
    }
    rep.violations()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (nt, ops, range) = (
        args.get(1).map(|s| s.parse().unwrap()).unwrap_or(2),
        args.get(2).map(|s| s.parse().unwrap()).unwrap_or(2000),
        args.get(3).map(|s| s.parse().unwrap()).unwrap_or(32),
    );
    for seed in 0..40 {
        let v = run(seed, nt, ops, range);
        if v > 0 {
            eprintln!(
                "seed {seed}: {v} orphaned violations (threads={nt} ops={ops} range={range})"
            );
            std::process::exit(1);
        }
    }
    eprintln!("no orphans in 200 seeds (threads={nt} ops={ops} range={range})");
}
