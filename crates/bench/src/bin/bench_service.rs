//! Machine-readable batched-service sweep: the async front end
//! (`service::BatchedService`) over chromatic / sharded / hybrid, across
//! flush policies (`max_batch` × `max_delay`) and client counts,
//! recorded as one labeled run in `BENCH_service.json` (same label-merge
//! behavior as the other bench bins).
//!
//! This is the experiment behind `docs/SERVICE.md`: independent clients
//! submitting point ops one at a time cannot reach the structures' batch
//! entry points on their own; the service accumulates their requests and
//! flushes them through `insert_batch`/`remove_batch` whole. The
//! headline comparison is each batching policy against the `fb1-fd0`
//! passthrough baseline (batches of one, no waiting) at the same client
//! count — throughput should win from amortized traversal and guard
//! pinning, while p50/p99 *response* latency pays for the queueing. Both
//! sides of that trade land in the artifact.
//!
//! Clients are windowed closed loops: each keeps `WINDOW` submissions in
//! flight and records per-op submit→completion latency, so batches can
//! actually accumulate (a one-outstanding-op client could never fill a
//! 64-slot batch).
//!
//! Row labels encode the policy: mix `50i-50d-fb{max_batch}-fd{delay_µs}`
//! keeps every `structure/mix@threads` gate key unique.
//!
//! Knobs: `NBTREE_BENCH_SECS`, `NBTREE_BENCH_TRIALS`,
//! `NBTREE_BENCH_THREADS` (client counts, default `1,2,4,8`),
//! `NBTREE_BENCH_RANGES` (first entry is the key range; default 10000);
//! `--label NAME`, `--out PATH` (default `BENCH_service.json`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bench::json::Json;
use bench::{bench_threads, first_key_range, trial_duration, trials};
use rand::{rngs::StdRng, Rng, SeedableRng};
use service::{BatchedService, FlushPolicy, Op, ServiceConfig};
use workload::latency::{calibrate, elapsed_ns, now};
use workload::{make_map, prefill, Histogram, LatencySummary, Mix, SuiteConfig};

/// Structures swept: the paper's tree, the sharded façade (whose batch
/// override regroups by shard), and the hash+tree hybrid.
const STRUCTURES: [&str; 3] = ["chromatic", "sharded", "hybrid"];

/// Flush policies swept: the passthrough baseline, the headline batching
/// point, and a deeper/looser point for the latency-cost curve.
const POLICIES: [(usize, u64); 3] = [(1, 0), (64, 100), (256, 400)];

/// Submissions each client keeps in flight.
const WINDOW: usize = 256;

struct PolicyResult {
    mops: f64,
    hist: Histogram,
    mean_batch: f64,
}

/// One policy × client-count point: fresh prefilled map per trial, `c`
/// windowed closed-loop clients for `duration`, best-trial throughput
/// and all-trial merged latency (the same aggregation `measure` uses).
fn run_point(
    structure: &str,
    cfg: &SuiteConfig,
    clients: usize,
    policy: FlushPolicy,
    range: u64,
    duration: Duration,
    n_trials: usize,
) -> PolicyResult {
    let mut best_mops = 0.0f64;
    let mut hist = Histogram::new();
    let mut batched_ops = 0u64;
    let mut flushes = 0u64;
    for trial in 0..n_trials {
        let map = make_map(structure, cfg).expect("registered structure");
        prefill(map.as_ref(), range, Mix::updates(50, 50), 42);
        let mut svc = BatchedService::start(map, ServiceConfig::new(policy));
        let total_ops = AtomicU64::new(0);
        let started = Instant::now();
        let trial_hist = std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|tid| {
                    let svc = &svc;
                    let total_ops = &total_ops;
                    s.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(1000 * trial as u64 + tid as u64 + 7);
                        let mut h = Histogram::new();
                        let mut window = Vec::with_capacity(WINDOW);
                        let mut ops = 0u64;
                        while started.elapsed() < duration {
                            for _ in 0..WINDOW {
                                let k = rng.gen_range(0..range);
                                let op = if rng.gen_range(0..100) < 50 {
                                    Op::Insert(k, ops)
                                } else {
                                    Op::Remove(k)
                                };
                                window.push((now(), svc.submit(op).expect("service open")));
                            }
                            for (start, fut) in window.drain(..) {
                                fut.wait();
                                h.record(elapsed_ns(start));
                            }
                            ops += WINDOW as u64;
                        }
                        total_ops.fetch_add(ops, Ordering::Relaxed);
                        h
                    })
                })
                .collect();
            let mut merged = Histogram::new();
            for h in handles {
                merged.merge(&h.join().unwrap());
            }
            merged
        });
        let elapsed = started.elapsed();
        svc.shutdown();
        let stats = svc.stats();
        batched_ops += stats.batched_ops;
        flushes += stats.flushes;
        best_mops =
            best_mops.max(total_ops.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64() / 1e6);
        hist.merge(&trial_hist);
    }
    PolicyResult {
        mops: best_mops,
        hist,
        mean_batch: batched_ops as f64 / flushes.max(1) as f64,
    }
}

fn main() {
    let mut label = String::from("current");
    let mut out_path = String::from("BENCH_service.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--label" => label = args.next().expect("--label needs a value"),
            "--out" => out_path = args.next().expect("--out needs a value"),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: bench_service [--label NAME] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let duration = trial_duration();
    let n_trials = trials();
    let client_counts = bench_threads(&[1, 2, 4, 8]);
    let range = first_key_range();
    let cfg = SuiteConfig::from_env().for_key_range(range);
    calibrate();

    eprintln!(
        "# bench_service: label={label} range={range} clients={client_counts:?} \
         policies={POLICIES:?} {n_trials} trial(s) x {duration:?}"
    );

    let mut results = Vec::new();
    for structure in STRUCTURES {
        for &(max_batch, delay_us) in &POLICIES {
            let policy = FlushPolicy::new(max_batch, Duration::from_micros(delay_us));
            let mix_label = format!("50i-50d-fb{max_batch}-fd{delay_us}");
            for &c in &client_counts {
                let r = run_point(structure, &cfg, c, policy, range, duration, n_trials);
                let lat = LatencySummary::of(&r.hist);
                eprintln!(
                    "  {structure} {mix_label} clients={c}: {:.3} Mops/s \
                     p50={} p99={} mean_batch={:.1}",
                    r.mops,
                    bench::fmt_ns(lat.p50_ns),
                    bench::fmt_ns(lat.p99_ns),
                    r.mean_batch
                );
                let mut row = vec![
                    ("structure", Json::Str(structure.to_string())),
                    ("mix", Json::Str(mix_label.clone())),
                    ("threads", Json::Num(c as f64)),
                    ("mops", Json::Num(r.mops)),
                    ("p50_ns", Json::Num(lat.p50_ns as f64)),
                    ("p99_ns", Json::Num(lat.p99_ns as f64)),
                    ("p999_ns", Json::Num(lat.p999_ns as f64)),
                    ("mean_batch", Json::Num(r.mean_batch)),
                ];
                // The flusher thread works alongside the clients.
                row.extend(bench::provenance(c + 1));
                results.push(Json::obj(row));
            }
        }
    }

    let mops_of = |structure: &str, max_batch: usize, delay_us: u64, c: usize| {
        let mix = format!("50i-50d-fb{max_batch}-fd{delay_us}");
        results
            .iter()
            .find(|r| {
                r.get("structure").and_then(Json::as_str) == Some(structure)
                    && r.get("mix").and_then(Json::as_str) == Some(mix.as_str())
                    && r.get("threads").and_then(Json::as_f64) == Some(c as f64)
            })
            .and_then(|r| r.get("mops").and_then(Json::as_f64))
            .unwrap_or(f64::NAN)
    };

    // The ratio the acceptance gate reads: each batching policy over the
    // passthrough baseline at the same client count.
    for structure in STRUCTURES {
        for &(max_batch, delay_us) in &POLICIES[1..] {
            for &c in &client_counts {
                let base = mops_of(structure, POLICIES[0].0, POLICIES[0].1, c);
                let batched = mops_of(structure, max_batch, delay_us, c);
                eprintln!(
                    "  speedup {structure} fb{max_batch}-fd{delay_us} clients={c}: \
                     {:.2}x over passthrough",
                    batched / base
                );
            }
        }
    }

    let run = Json::obj(vec![
        ("label", Json::Str(label.clone())),
        ("range", Json::Num(range as f64)),
        ("duration_secs", Json::Num(duration.as_secs_f64())),
        ("trials", Json::Num(n_trials as f64)),
        ("window", Json::Num(WINDOW as f64)),
        ("results", Json::Arr(results)),
    ]);

    let existing = std::fs::read_to_string(&out_path).ok();
    let doc = bench::json::merge_labeled_run(existing.as_deref(), "bench_service/v1", &label, run);
    std::fs::write(&out_path, doc.pretty()).expect("write BENCH_service.json");
    eprintln!("wrote {out_path}");
}
