//! Machine-readable range-workload snapshot: runs mixes that include
//! ordered range scans and records the result as a labeled run in
//! `BENCH_range.json` (same label-merge behavior as `bench_fig8`, so a
//! baseline and a candidate can live side by side in one artifact).
//!
//! Mixes: `0i-0d-100r` (pure scans), `20i-10d-10r` (scans under moderate
//! churn, where the VLX retry path actually fires) and `45i-45d-10r`
//! (scans under near-maximum churn). One scan of
//! `NBTREE_BENCH_RANGE_WIDTH` keys (default 100) counts as one operation.
//!
//! Knobs: `NBTREE_BENCH_SECS`, `NBTREE_BENCH_TRIALS`,
//! `NBTREE_BENCH_THREADS` (default `1,2,4`), `NBTREE_BENCH_RANGES` (first
//! entry is the key range; default 10000), `NBTREE_BENCH_RANGE_WIDTH`;
//! `--structure NAME|all` (default `chromatic`), `--label NAME`,
//! `--out PATH` (default `BENCH_range.json`).

use bench::json::Json;
use bench::{bench_threads, first_key_range, range_width, trial_duration, trials};
use workload::{measure, Mix, SuiteConfig, ALL_MAPS};

fn main() {
    let mut label = String::from("current");
    let mut out_path = String::from("BENCH_range.json");
    let mut structure = String::from("chromatic");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--label" => label = args.next().expect("--label needs a value"),
            "--out" => out_path = args.next().expect("--out needs a value"),
            "--structure" => structure = args.next().expect("--structure needs a value"),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: bench_range [--label NAME] [--out PATH] [--structure NAME|all]");
                std::process::exit(2);
            }
        }
    }

    let duration = trial_duration();
    let n_trials = trials();
    let threads = bench_threads(&[1, 2, 4]);
    let width = range_width();
    let range = first_key_range();
    // `--structure all` includes the sharded façade: size its boundary
    // table to the swept key range (an explicit NBTREE_SHARD_SPAN still
    // wins), like `bench_shard` does, so its rows don't measure a
    // one-shard table.
    let cfg = SuiteConfig::from_env().for_key_range(range);
    let structures: Vec<String> = if structure == "all" {
        ALL_MAPS.iter().map(|s| s.to_string()).collect()
    } else {
        assert!(
            ALL_MAPS.contains(&structure.as_str()),
            "unknown structure `{structure}`"
        );
        vec![structure.clone()]
    };
    let mixes = [
        Mix::updates(0, 0).with_ranges(100, width),
        Mix::updates(20, 10).with_ranges(10, width),
        Mix::updates(45, 45).with_ranges(10, width),
    ];

    eprintln!(
        "# bench_range: structures={structures:?} label={label} range={range} width={width} \
         threads={threads:?} {n_trials} trial(s) x {duration:?}"
    );

    let mut results = Vec::new();
    for name in &structures {
        for mix in mixes {
            let mix_label = mix.label();
            for &t in &threads {
                let (mops, trial_results) =
                    measure(name, &cfg, t, mix, range, duration, n_trials, 42);
                eprintln!("  {name} {mix_label} threads={t}: {mops:.3} Mops/s");
                let mut row = vec![
                    ("structure", Json::Str(name.to_string())),
                    ("mix", Json::Str(mix_label.to_string())),
                    ("threads", Json::Num(t as f64)),
                    ("mops", Json::Num(mops)),
                ];
                row.extend(bench::latency_fields(&trial_results));
                row.extend(bench::provenance(t));
                results.push(Json::obj(row));
            }
        }
    }

    let run = Json::obj(vec![
        ("label", Json::Str(label.clone())),
        ("range", Json::Num(range as f64)),
        ("range_width", Json::Num(width as f64)),
        ("duration_secs", Json::Num(duration.as_secs_f64())),
        ("trials", Json::Num(n_trials as f64)),
        ("results", Json::Arr(results)),
    ]);

    let existing = std::fs::read_to_string(&out_path).ok();
    let doc = bench::json::merge_labeled_run(existing.as_deref(), "bench_range/v1", &label, run);
    std::fs::write(&out_path, doc.pretty()).expect("write BENCH_range.json");
    eprintln!("wrote {out_path}");
}
