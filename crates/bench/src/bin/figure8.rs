//! Regenerates **Figure 8** of the paper: multithreaded throughput
//! (Mops/s) for each operation mix × key range × thread count × structure.
//!
//! The paper's grid: mixes {50i-50d, 20i-10d, 0i-0d} × key ranges
//! {1e2, 1e4, 1e6} × threads {1..128 on a 128-way SPARC}; thread counts are
//! scaled to this host. STM structures are skipped for the 1e6 range, as in
//! the paper (prefilling them takes orders of magnitude too long).
//!
//! Quick run: `cargo run --release -p bench --bin figure8`
//! Paper-scale: `NBTREE_BENCH_FULL=1 cargo run --release -p bench --bin figure8`

use bench::{bench_threads, key_ranges, print_row, trial_duration, trials};
use workload::{measure, thread_counts, Mix, SuiteConfig, ALL_MAPS};

fn main() {
    let duration = trial_duration();
    let n_trials = trials();
    // Suite-construction knobs, parsed exactly once; each range block
    // re-sizes the sharded façade's boundary table via `for_key_range`
    // (a NBTREE_SHARD_SPAN-pinned span wins) — its cells would otherwise
    // measure a one-shard table at every range other than the default.
    let base_cfg = SuiteConfig::from_env();
    // Host-derived sweep, overridable via NBTREE_BENCH_THREADS (the CI
    // bench-smoke job pins it to `1,2` to stay within its budget).
    let threads = bench_threads(&thread_counts());
    println!(
        "# Figure 8: throughput (Mops/s); {} trial(s) x {:?} per cell; host threads {:?}",
        n_trials, duration, threads
    );
    for mix in Mix::ALL {
        for range in key_ranges() {
            let cfg = base_cfg.for_key_range(range);
            println!("\n## mix {} key range [0,{})", mix.label(), range);
            print_row(
                "threads",
                &threads.iter().map(|t| t.to_string()).collect::<Vec<_>>(),
            );
            for name in ALL_MAPS {
                // Paper: STM structures omitted at 1e6 (prefill too slow).
                if range >= 1_000_000 && *name == "rbstm" {
                    print_row(name, &vec!["-".into(); threads.len()]);
                    continue;
                }
                let cells: Vec<String> = threads
                    .iter()
                    .map(|&t| {
                        let (mops, _) = measure(name, &cfg, t, mix, range, duration, n_trials, 42);
                        format!("{mops:.3}")
                    })
                    .collect();
                print_row(name, &cells);
            }
        }
    }
}
