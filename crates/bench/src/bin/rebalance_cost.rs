//! Verifies the amortized rebalancing claim the chromatic tree relies on
//! (Boyar–Fagerberg–Larsen, used in §5.4/§6): at most 3 rebalancing steps
//! per insertion plus 1 per deletion, amortized, from an empty tree. Also
//! prints the distribution over the step types of Fig. 11.

use nbtree::{ChromaticTree, STEP_NAMES};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() {
    println!("# Amortized rebalancing steps per update (bound: 3/insert + 1/delete)");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>9} {:>7}",
        "workload", "inserts", "deletes", "steps", "bound", "ok"
    );
    let scenarios: &[(&str, u64, f64)] = &[
        ("ascending", 1 << 16, 0.0),
        ("random", 1 << 16, 0.0),
        ("mixed", 1 << 16, 0.5),
        ("churn-small", 1 << 16, 0.5),
    ];
    for (name, n, delete_frac) in scenarios {
        let t = ChromaticTree::new();
        let mut rng = StdRng::seed_from_u64(9);
        let (mut inserts, mut deletes) = (0u64, 0u64);
        let range = if *name == "churn-small" {
            512
        } else {
            u64::MAX
        };
        for i in 0..*n {
            if rng.gen_bool(*delete_frac) {
                let k = rng.gen_range(0..range.min(2 * n));
                t.remove(&k);
                deletes += 1;
            } else {
                let k = match *name {
                    "ascending" => i,
                    _ => rng.gen_range(0..range.min(2 * n)),
                };
                t.insert(k, i);
                inserts += 1;
            }
        }
        let steps = t.stats().total_steps();
        let bound = 3 * inserts + deletes;
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>9} {:>7}",
            name,
            inserts,
            deletes,
            steps,
            bound,
            steps <= bound
        );
        assert!(steps <= bound, "amortized bound violated");
        let dist = t.stats().steps();
        let parts: Vec<String> = STEP_NAMES
            .iter()
            .zip(dist.iter())
            .filter(|(_, c)| **c > 0)
            .map(|(n, c)| format!("{n}={c}"))
            .collect();
        println!("             step mix: {}", parts.join(" "));
    }
    println!("all amortized bounds hold");
}
