//! The CI throughput gate: compares two labeled runs inside one bench
//! artifact (written by `bench_fig8` / `bench_range`, which label-merge)
//! and exits non-zero when any *(structure, mix, threads)* point slowed
//! down by more than the tolerance.
//!
//! ```text
//! cargo run -p bench --bin bench_fig8 -- --label baseline --out gate.json   # at the base ref
//! cargo run -p bench --bin bench_fig8 -- --label pr       --out gate.json   # at the PR head
//! cargo run -p bench --bin bench_gate -- --file gate.json --baseline baseline --candidate pr
//! ```

use bench::gate::compare;
use bench::json::Json;

fn main() {
    let mut file = String::from("BENCH_fig8.json");
    let mut baseline = String::from("baseline");
    let mut candidate = String::from("pr");
    let mut tolerance = 0.30f64;
    // Baseline points slower than this (Mops/s) are reported but never
    // fail the gate: with CI smoke budgets they are dominated by noise.
    let mut min_mops = 0.01f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--file" => file = args.next().expect("--file needs a value"),
            "--baseline" => baseline = args.next().expect("--baseline needs a value"),
            "--candidate" => candidate = args.next().expect("--candidate needs a value"),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--tolerance needs a float")
            }
            "--min-mops" => {
                min_mops = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--min-mops needs a float")
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: bench_gate [--file PATH] [--baseline LABEL] [--candidate LABEL] \
                     [--tolerance FRACTION] [--min-mops MOPS]"
                );
                std::process::exit(2);
            }
        }
    }

    let text = std::fs::read_to_string(&file).unwrap_or_else(|e| panic!("cannot read {file}: {e}"));
    let doc = Json::parse(&text).unwrap_or_else(|e| panic!("cannot parse {file}: {e}"));
    let report = match compare(&doc, &baseline, &candidate, tolerance, min_mops) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            std::process::exit(2);
        }
    };

    println!(
        "bench gate: `{candidate}` vs `{baseline}` (tolerance {:.0}%)",
        tolerance * 100.0
    );
    for p in &report.points {
        println!(
            "  {} {:>24}  {:.3} -> {:.3} Mops/s  ({:+.1}%)",
            if p.regressed {
                "REGRESSED"
            } else {
                "ok       "
            },
            p.key,
            p.base,
            p.cand,
            p.delta * 100.0
        );
    }
    for key in &report.skipped {
        println!("  skipped   {key:>24}  oversubscribed (threads > host cores)");
    }
    for key in &report.missing {
        println!("  MISSING   {key:>24}  present in baseline, absent in candidate");
    }
    if report.passed() {
        println!(
            "gate PASSED: {} points compared, {} skipped",
            report.points.len(),
            report.skipped.len()
        );
    } else {
        println!(
            "gate FAILED: {} of {} points regressed more than {:.0}%, {} dropped",
            report.regressions().len(),
            report.points.len(),
            tolerance * 100.0,
            report.missing.len()
        );
        std::process::exit(1);
    }
}
