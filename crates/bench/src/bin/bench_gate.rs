//! The CI throughput gate: compares two labeled runs inside one bench
//! artifact (written by `bench_fig8` / `bench_range`, which label-merge)
//! and exits non-zero when any *(structure, mix, threads)* point slowed
//! down by more than the tolerance — or, with `--p99-tolerance`, when a
//! point's p99 latency grew past the tail tolerance.
//!
//! ```text
//! cargo run -p bench --bin bench_fig8 -- --label baseline --out gate.json   # at the base ref
//! cargo run -p bench --bin bench_fig8 -- --label pr       --out gate.json   # at the PR head
//! cargo run -p bench --bin bench_gate -- --file gate.json --baseline baseline --candidate pr \
//!     --p99-tolerance 1.0 --summary summary.md
//! ```
//!
//! Exit codes: `0` pass, `1` regression or dropped point, `2` usage /
//! unreadable artifact, `3` every cell skipped (oversubscribed host) —
//! distinct so CI can't silently pass on a starved runner.

use bench::gate::compare;
use bench::json::Json;

fn main() {
    let mut file = String::from("BENCH_fig8.json");
    let mut baseline = String::from("baseline");
    let mut candidate = String::from("pr");
    let mut tolerance = 0.30f64;
    // Baseline points slower than this (Mops/s) are reported but never
    // fail the gate: with CI smoke budgets they are dominated by noise.
    let mut min_mops = 0.01f64;
    // Off unless asked for: old artifacts carry no percentiles, and the
    // tail check is meaningful only when the caller knows both runs do.
    let mut p99_tolerance: Option<f64> = None;
    // Markdown destination for the rendered per-cell table (appended —
    // CI passes $GITHUB_STEP_SUMMARY).
    let mut summary: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--file" => file = args.next().expect("--file needs a value"),
            "--baseline" => baseline = args.next().expect("--baseline needs a value"),
            "--candidate" => candidate = args.next().expect("--candidate needs a value"),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--tolerance needs a float")
            }
            "--min-mops" => {
                min_mops = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--min-mops needs a float")
            }
            "--p99-tolerance" => {
                p99_tolerance = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--p99-tolerance needs a float"),
                )
            }
            "--summary" => summary = Some(args.next().expect("--summary needs a path")),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: bench_gate [--file PATH] [--baseline LABEL] [--candidate LABEL] \
                     [--tolerance FRACTION] [--min-mops MOPS] [--p99-tolerance FRACTION] \
                     [--summary PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    let text = std::fs::read_to_string(&file).unwrap_or_else(|e| panic!("cannot read {file}: {e}"));
    let doc = Json::parse(&text).unwrap_or_else(|e| panic!("cannot parse {file}: {e}"));
    let report = match compare(
        &doc,
        &baseline,
        &candidate,
        tolerance,
        min_mops,
        p99_tolerance,
    ) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            std::process::exit(2);
        }
    };

    println!(
        "bench gate: `{candidate}` vs `{baseline}` (tolerance {:.0}%{})",
        tolerance * 100.0,
        match p99_tolerance {
            Some(t) => format!(", p99 tolerance {:.0}%", t * 100.0),
            None => String::new(),
        }
    );
    for p in &report.points {
        let status = match (p.regressed, p.tail_regressed) {
            (false, false) => "ok       ",
            (true, _) => "REGRESSED",
            (false, true) => "TAIL REGR",
        };
        let tail = match (p.base_lat, p.cand_lat) {
            (Some((_, b, _)), Some((_, c, _))) => {
                format!(
                    "  p99 {} -> {}",
                    bench::fmt_ns(b as u64),
                    bench::fmt_ns(c as u64)
                )
            }
            _ => String::new(),
        };
        println!(
            "  {} {:>24}  {:.3} -> {:.3} Mops/s  ({:+.1}%){}",
            status,
            p.key,
            p.base,
            p.cand,
            p.delta * 100.0,
            tail
        );
    }
    for key in &report.skipped {
        println!("  skipped   {key:>24}  oversubscribed (threads > host cores)");
    }
    for key in &report.missing {
        println!("  MISSING   {key:>24}  present in baseline, absent in candidate");
    }

    if let Some(path) = summary {
        use std::io::Write as _;
        let table = report.render_summary(&baseline, &candidate);
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| panic!("cannot open {path}: {e}"));
        f.write_all(table.as_bytes())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    }

    if report.all_skipped() {
        println!(
            "gate INCONCLUSIVE: all {} cells skipped as oversubscribed — nothing compared",
            report.skipped.len()
        );
        std::process::exit(3);
    }
    if report.passed() {
        println!(
            "gate PASSED: {} points compared, {} skipped",
            report.points.len(),
            report.skipped.len()
        );
    } else {
        println!(
            "gate FAILED: {} of {} points regressed (tolerance {:.0}%), {} dropped",
            report.regressions().len(),
            report.points.len(),
            tolerance * 100.0,
            report.missing.len()
        );
        std::process::exit(1);
    }
}
