//! Regenerates **Figure 9**: single-threaded throughput of each concurrent
//! structure *relative to the sequential red-black tree* (the
//! `java.util.TreeMap` stand-in), key range 1e6 — the "overhead of the
//! technique" experiment.

use bench::{print_row, trial_duration, trials};
use rand::{rngs::StdRng, Rng, SeedableRng};
use workload::{measure, Mix, SuiteConfig, ALL_MAPS};

/// Single-threaded throughput of the plain sequential `RbTree` under `mix`.
fn sequential_mops(mix: Mix, range: u64, duration: std::time::Duration) -> f64 {
    let mut tree = seqrbt::RbTree::new();
    let mut rng = StdRng::seed_from_u64(42);
    let target = (range as f64 * mix.steady_state_fraction()) as u64;
    let mut inserted = 0u64;
    while inserted < target {
        let k = rng.gen_range(0..range);
        if tree.insert(k, k).is_none() {
            inserted += 1;
        }
    }
    let started = std::time::Instant::now();
    let mut ops = 0u64;
    while started.elapsed() < duration {
        for _ in 0..64 {
            let k = rng.gen_range(0..range);
            let dice = rng.gen_range(0..100);
            if dice < mix.inserts {
                tree.insert(k, k);
            } else if dice < mix.inserts + mix.deletes {
                tree.remove(&k);
            } else {
                std::hint::black_box(tree.get(&k));
            }
            ops += 1;
        }
    }
    ops as f64 / started.elapsed().as_secs_f64() / 1e6
}

fn main() {
    let duration = trial_duration();
    let n_trials = trials();
    let range = 1_000_000;
    // Size the sharded façade's boundary table to this sweep's keyspace
    // (an explicit NBTREE_SHARD_SPAN still wins).
    let cfg = SuiteConfig::from_env().for_key_range(range);
    println!(
        "# Figure 9: single-threaded throughput relative to sequential RBT (key range [0,1e6))"
    );
    let mixes = Mix::ALL;
    print_row(
        "structure",
        &mixes
            .iter()
            .map(|m| m.label().to_string())
            .collect::<Vec<_>>(),
    );
    let baselines: Vec<f64> = mixes
        .iter()
        .map(|&m| sequential_mops(m, range, duration))
        .collect();
    print_row(
        "seq-rbt",
        &baselines
            .iter()
            .map(|_| "1.00x".to_string())
            .collect::<Vec<_>>(),
    );
    for name in ALL_MAPS {
        if *name == "rbstm" {
            // Paper skipped STM at 1e6 (prefill cost); same here.
            print_row(name, &vec!["-".into(); mixes.len()]);
            continue;
        }
        let cells: Vec<String> = mixes
            .iter()
            .zip(&baselines)
            .map(|(&m, &base)| {
                let (mops, _) = measure(name, &cfg, 1, m, range, duration, n_trials, 42);
                format!("{:.2}x", mops / base)
            })
            .collect();
        print_row(name, &cells);
    }
}
