//! Ablation of §5.6: sweep the `allowed_violations` threshold k and report
//! update throughput, rebalancing work, and resulting tree height. The
//! paper's Chromatic vs Chromatic6 comparison is k = 0 vs k = 6.

use bench::{print_row, trial_duration};
use nbtree::ChromaticTree;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn main() {
    let duration = trial_duration();
    let threads = std::thread::available_parallelism()
        .map(|x| x.get())
        .unwrap_or(4);
    let range = 10_000u64;
    println!("# Ablation: allowed violations k (50i-50d, range 1e4, {threads} threads)");
    print_row(
        "k",
        &[
            "Mops/s".into(),
            "steps/op".into(),
            "height".into(),
            "cleanups/op".into(),
        ],
    );
    for k in [0u32, 1, 2, 6, 16, 64] {
        let t = Arc::new(ChromaticTree::<u64, u64>::with_allowed_violations(k));
        let mut rng = StdRng::seed_from_u64(1);
        let mut inserted = 0;
        while inserted < range / 2 {
            let key = rng.gen_range(0..range);
            if t.insert(key, key).is_none() {
                inserted += 1;
            }
        }
        let stop = Arc::new(AtomicBool::new(false));
        let total = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for tid in 0..threads {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                let total = Arc::clone(&total);
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(tid as u64 + 100);
                    let mut ops = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..64 {
                            let key = rng.gen_range(0..range);
                            if rng.gen_bool(0.5) {
                                t.insert(key, key);
                            } else {
                                t.remove(&key);
                            }
                            ops += 1;
                        }
                    }
                    total.fetch_add(ops, Ordering::Relaxed);
                });
            }
            std::thread::sleep(duration);
            stop.store(true, Ordering::Relaxed);
        });
        let ops = total.load(Ordering::Relaxed);
        let mops = ops as f64 / duration.as_secs_f64() / 1e6;
        let steps = t.stats().total_steps();
        let cleanups = t.stats().cleanup_passes();
        let height = t.audit().height;
        print_row(
            &k.to_string(),
            &[
                format!("{mops:.3}"),
                format!("{:.4}", steps as f64 / ops as f64),
                height.to_string(),
                format!("{:.4}", cleanups as f64 / ops as f64),
            ],
        );
    }
}
