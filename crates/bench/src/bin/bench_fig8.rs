//! Machine-readable Figure-8 snapshot: runs the paper's three operation
//! mixes on the chromatic tree at a small thread sweep with quick settings
//! and records the result as a labeled run in `BENCH_fig8.json` at the repo
//! root. Re-running with a different `--label` *merges* into the existing
//! file (replacing a run with the same label), so a baseline captured before
//! an optimization and the post-optimization numbers live side by side:
//!
//! ```text
//! cargo run --release -p bench --bin bench_fig8 -- --label baseline
//! # ... optimize ...
//! cargo run --release -p bench --bin bench_fig8 -- --label optimized
//! ```
//!
//! Knobs: `NBTREE_BENCH_SECS` (per-trial seconds, default 0.5),
//! `NBTREE_BENCH_TRIALS` (default 1), `NBTREE_BENCH_THREADS` (default
//! `1,2,4`), `NBTREE_BENCH_RANGES` (first entry is used; default 10000),
//! `--structure NAME` (default `chromatic`), `--out PATH` (default
//! `BENCH_fig8.json`).

use bench::json::Json;
use bench::{bench_threads, first_key_range, trial_duration, trials};
use workload::{measure, Mix, SuiteConfig};

fn main() {
    let mut label = String::from("current");
    let mut out_path = String::from("BENCH_fig8.json");
    let mut structure = String::from("chromatic");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--label" => label = args.next().expect("--label needs a value"),
            "--out" => out_path = args.next().expect("--out needs a value"),
            "--structure" => structure = args.next().expect("--structure needs a value"),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: bench_fig8 [--label NAME] [--out PATH] [--structure NAME]");
                std::process::exit(2);
            }
        }
    }

    let duration = trial_duration();
    let n_trials = trials();
    let threads = bench_threads(&[1, 2, 4]);
    let range = first_key_range();
    // `--structure sharded` works too: size its boundary table to the
    // swept key range (an explicit NBTREE_SHARD_SPAN still wins).
    let cfg = SuiteConfig::from_env().for_key_range(range);

    eprintln!(
        "# bench_fig8: structure={structure} label={label} range={range} \
         threads={threads:?} {n_trials} trial(s) x {duration:?}"
    );

    let mut results = Vec::new();
    for mix in Mix::ALL {
        let mix_label = mix.label();
        for &t in &threads {
            let (mops, trial_results) =
                measure(&structure, &cfg, t, mix, range, duration, n_trials, 42);
            eprintln!("  {mix_label} threads={t}: {mops:.3} Mops/s");
            let mut row = vec![
                ("mix", Json::Str(mix_label.to_string())),
                ("threads", Json::Num(t as f64)),
                ("mops", Json::Num(mops)),
            ];
            row.extend(bench::latency_fields(&trial_results));
            row.extend(bench::provenance(t));
            results.push(Json::obj(row));
        }
    }

    let run = Json::obj(vec![
        ("label", Json::Str(label.clone())),
        ("structure", Json::Str(structure)),
        ("range", Json::Num(range as f64)),
        ("duration_secs", Json::Num(duration.as_secs_f64())),
        ("trials", Json::Num(n_trials as f64)),
        ("results", Json::Arr(results)),
    ]);

    let existing = std::fs::read_to_string(&out_path).ok();
    let doc = bench::json::merge_labeled_run(existing.as_deref(), "bench_fig8/v1", &label, run);
    std::fs::write(&out_path, doc.pretty()).expect("write BENCH_fig8.json");
    eprintln!("wrote {out_path}");
}
