//! Machine-readable sharding + batching + skew snapshot: the paper's
//! three operation mixes on the unsharded chromatic tree vs. the
//! range-partitioned façade (`sharded`, chromatic shards) across a thread
//! sweep, **plus a batch-size sweep** (1/8/64/512) driving the
//! trait-level batch entry points through the standard harness — all
//! recorded as one labeled run in `BENCH_shard.json` (same label-merge
//! behavior as `bench_fig8`, so a baseline and a candidate can live side
//! by side).
//!
//! The batch sweep is where the two amortization levels show up: the
//! façade's per-shard grouping under one weighted pin, and the chromatic
//! tree's sorted-bulk insert (shared search-path prefixes) behind both
//! the `chromatic` and the per-shard entries. Batched cells carry the
//! `-bN` mix-label suffix and a `batch` field; `b1` cells are the point
//! baseline the printed speedups divide by.
//!
//! The **leafmerge tier** adds a clustered-run sweep on top: pure-insert
//! and pure-remove mixes at batch 64 with run lengths 1/8/64 (`-cR`
//! suffix, `run` field). Clustered batches land runs of consecutive keys
//! on shared leaves — the shape the single-SCX run merging in
//! `insert_bulk`/`remove_bulk` collapses to one LLX/SCX per run — so the
//! printed `clustered/uniform` ratio is the direct payoff of merged
//! installs over per-element bulk descent, and `batched/point` the
//! end-to-end payoff over point ops.
//!
//! The **skew tier** sweeps zipfian key popularity (θ ∈ {0.0, 0.9, 1.2},
//! `-zT` suffix, `theta` field) over chromatic / sharded / hybrid on the
//! moderate-churn mix — the scenario where the hash tier's O(1) point
//! path and the façade's load distribution either pay off or collapse
//! onto a hot shard. Skew rows carry latency percentiles like every
//! other row, and the tail is where skew shows first.
//!
//! The façade's boundary table is sized to the benchmark's key range
//! through the typed `SuiteConfig` (an explicit `NBTREE_SHARD_SPAN`
//! still wins), so shards receive equal load — the deployment
//! configuration `docs/SHARDING.md` prescribes.
//!
//! Knobs: `NBTREE_BENCH_SECS`, `NBTREE_BENCH_TRIALS`,
//! `NBTREE_BENCH_THREADS` (default `1,2,4,8`), `NBTREE_BENCH_RANGES`
//! (first entry is the key range; default 10000), `NBTREE_SHARDS`
//! (default 8); `--label NAME`, `--out PATH` (default
//! `BENCH_shard.json`), `--tier all|point|batch|leafmerge|skew`
//! (default `all` = every tier).

use bench::json::Json;
use bench::{bench_threads, first_key_range, trial_duration, trials};
use workload::{measure, Mix, SuiteConfig};

/// Batch sizes swept (1 = the point-op baseline).
const BATCHES: [u32; 4] = [1, 8, 64, 512];

/// Mixes of the batch sweep: pure inserts isolate the chromatic
/// sorted-bulk path; the maximal-churn mix shows batching under the
/// paper's hardest workload.
fn batch_mixes() -> [Mix; 2] {
    [Mix::updates(100, 0), Mix::updates(50, 50)]
}

/// Run lengths of the leafmerge sweep (1 = uniform keys, the per-element
/// bulk baseline the clustered cells divide by).
const RUNS: [u32; 3] = [1, 8, 64];

/// Batch size of the leafmerge sweep — large enough that a 64-run batch
/// is a single maximal run.
const RUN_BATCH: u32 = 64;

/// Zipfian exponents of the skew sweep: uniform control, the YCSB
/// default, and past-1 skew where the hottest key alone draws a constant
/// fraction of all operations.
const THETAS: [f64; 3] = [0.0, 0.9, 1.2];

/// Structures of the skew sweep: the tree, the façade (does skew
/// collapse onto one shard?), and the hash-fronted hybrid (does O(1)
/// point access absorb the hot keys?).
const SKEW_STRUCTURES: [&str; 3] = ["chromatic", "sharded", "hybrid"];

/// Mixes of the leafmerge sweep: pure inserts drive the mini-subtree
/// installs; maximal churn at a half-full steady state drives both merge
/// paths (insert batches install 64-key runs, so the present keys remove
/// batches hit ARE clustered, and sibling-pair collapses fire); pure
/// removes isolate the cached-descent cost of clustered misses (its
/// steady state is an empty dictionary).
fn leafmerge_mixes() -> [Mix; 3] {
    [
        Mix::updates(100, 0),
        Mix::updates(50, 50),
        Mix::updates(0, 100),
    ]
}

fn main() {
    let mut label = String::from("current");
    let mut out_path = String::from("BENCH_shard.json");
    let mut tier = String::from("all");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--label" => label = args.next().expect("--label needs a value"),
            "--out" => out_path = args.next().expect("--out needs a value"),
            "--tier" => tier = args.next().expect("--tier needs a value"),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: bench_shard [--label NAME] [--out PATH] \
                     [--tier all|point|batch|leafmerge|skew]"
                );
                std::process::exit(2);
            }
        }
    }
    if !["all", "point", "batch", "leafmerge", "skew"].contains(&tier.as_str()) {
        eprintln!("unknown tier `{tier}` (want all|point|batch|leafmerge|skew)");
        std::process::exit(2);
    }
    let want = |t: &str| tier == "all" || tier == t;

    let duration = trial_duration();
    let n_trials = trials();
    let threads = bench_threads(&[1, 2, 4, 8]);
    let range = first_key_range();
    // Size the boundary table to the key range actually swept (an
    // explicit NBTREE_SHARD_SPAN wins) — the comparison must not measure
    // a misconfigured routing table.
    let cfg = SuiteConfig::from_env().for_key_range(range);
    let shards = cfg.shards();

    eprintln!(
        "# bench_shard: label={label} tier={tier} range={range} shards={shards} \
         threads={threads:?} {n_trials} trial(s) x {duration:?}"
    );

    let mut results = Vec::new();
    let cell = |structure: &str,
                mix: Mix,
                t: usize,
                extra: &[(&'static str, Json)],
                results: &mut Vec<Json>| {
        let mix_label = mix.label();
        let (mops, trial_results) = measure(structure, &cfg, t, mix, range, duration, n_trials, 42);
        eprintln!("  {structure} {mix_label} threads={t}: {mops:.3} Mops/s");
        let mut row = vec![
            ("structure", Json::Str(structure.to_string())),
            ("mix", Json::Str(mix_label.to_string())),
            ("threads", Json::Num(t as f64)),
            ("mops", Json::Num(mops)),
        ];
        row.extend(extra.iter().cloned());
        row.extend(bench::latency_fields(&trial_results));
        row.extend(bench::provenance(t));
        results.push(Json::obj(row));
    };

    // Point-op sweep: sharded vs unsharded on the paper's mixes.
    if want("point") {
        for structure in ["chromatic", "sharded"] {
            for mix in Mix::ALL {
                for &t in &threads {
                    cell(structure, mix, t, &[], &mut results);
                }
            }
        }
    }
    // Batch-size sweep: the same harness, with the mixes' batch knob
    // driving insert_batch / remove_batch / get_batch.
    if want("batch") {
        for structure in ["chromatic", "sharded"] {
            for base in batch_mixes() {
                for b in BATCHES {
                    // b = 1 is the point flavor and keeps the point label;
                    // for mixes the point sweep above already measured,
                    // re-running it would emit a second row under the same
                    // (structure, mix, threads) key. The speedup lookups
                    // below then use the point-sweep cell as the b1
                    // baseline.
                    if b == 1 && Mix::ALL.contains(&base) && want("point") {
                        continue;
                    }
                    let mix = base.with_batch(b);
                    for &t in &threads {
                        cell(
                            structure,
                            mix,
                            t,
                            &[("batch", Json::Num(b as f64))],
                            &mut results,
                        );
                    }
                }
            }
        }
    }
    // Leafmerge sweep: clustered-run batches at a fixed batch size. The
    // `r = 1` (uniform) and `b1` (point) baselines for `100i-0d` already
    // exist in the batch sweep; `0i-100d` measures its own.
    if want("leafmerge") {
        for structure in ["chromatic", "sharded"] {
            for base in leafmerge_mixes() {
                let mut cells: Vec<Mix> = Vec::new();
                if !batch_mixes().contains(&base) || !want("batch") {
                    cells.push(base); // b1 point baseline
                    cells.push(base.with_batch(RUN_BATCH)); // uniform b64 baseline
                }
                cells.extend(
                    RUNS.iter()
                        .filter(|&&r| r > 1)
                        .map(|&r| base.with_batch(RUN_BATCH).with_run(r)),
                );
                for mix in cells {
                    for &t in &threads {
                        let extra = [
                            ("batch", Json::Num(mix.batch as f64)),
                            ("run", Json::Num(mix.run as f64)),
                        ];
                        cell(structure, mix, t, &extra, &mut results);
                    }
                }
            }
        }
    }
    // Skew sweep: zipfian key popularity over the point-op structures,
    // moderate churn. θ = 0 is the uniform control cell (plain label).
    if want("skew") {
        for structure in SKEW_STRUCTURES {
            for theta in THETAS {
                let mix = Mix::updates(20, 10).with_zipf(theta);
                for &t in &threads {
                    cell(
                        structure,
                        mix,
                        t,
                        &[("theta", Json::Num(theta))],
                        &mut results,
                    );
                }
            }
        }
    }

    let mops_of = |structure: &str, mix_label: &str, t: usize| {
        results
            .iter()
            .find(|r| {
                r.get("structure").and_then(Json::as_str) == Some(structure)
                    && r.get("mix").and_then(Json::as_str) == Some(mix_label)
                    && r.get("threads").and_then(Json::as_f64) == Some(t as f64)
            })
            .and_then(|r| r.get("mops").and_then(Json::as_f64))
            .unwrap_or(f64::NAN)
    };

    // Per-cell chromatic→sharded speedups, for humans reading the log.
    if want("point") {
        for mix in Mix::ALL {
            let mix_label = mix.label();
            for &t in &threads {
                let (un, sh) = (
                    mops_of("chromatic", &mix_label, t),
                    mops_of("sharded", &mix_label, t),
                );
                eprintln!(
                    "  speedup {mix_label} threads={t}: sharded/chromatic = {:.2}x",
                    sh / un
                );
            }
        }
    }
    // Per-cell batched-vs-point speedups (batch N against the b1 cell of
    // the same structure/mix/threads).
    if want("batch") {
        for structure in ["chromatic", "sharded"] {
            for base in batch_mixes() {
                let point_label = base.with_batch(1).label();
                for &b in &BATCHES[1..] {
                    let batch_label = base.with_batch(b).label();
                    for &t in &threads {
                        let point = mops_of(structure, &point_label, t);
                        let batched = mops_of(structure, &batch_label, t);
                        eprintln!(
                            "  speedup {structure} {batch_label} threads={t}: \
                             batched/point = {:.2}x",
                            batched / point
                        );
                    }
                }
            }
        }
    }
    // Leafmerge speedups: clustered cells against the uniform b64 cell
    // (isolates run merging against per-element bulk descent) and against
    // the point b1 cell (the end-to-end batching payoff).
    if want("leafmerge") {
        for structure in ["chromatic", "sharded"] {
            for base in leafmerge_mixes() {
                let point_label = base.label();
                let uniform_label = base.with_batch(RUN_BATCH).label();
                for &r in RUNS.iter().filter(|&&r| r > 1) {
                    let run_label = base.with_batch(RUN_BATCH).with_run(r).label();
                    for &t in &threads {
                        let point = mops_of(structure, &point_label, t);
                        let uniform = mops_of(structure, &uniform_label, t);
                        let clustered = mops_of(structure, &run_label, t);
                        eprintln!(
                            "  speedup {structure} {run_label} threads={t}: \
                             clustered/uniform = {:.2}x, batched/point = {:.2}x",
                            clustered / uniform,
                            clustered / point
                        );
                    }
                }
            }
        }
    }
    // Skew ratios: each skewed cell against its structure's uniform
    // (θ = 0) control — how much of the throughput survives the hot keys.
    if want("skew") {
        for structure in SKEW_STRUCTURES {
            let uniform_label = Mix::updates(20, 10).label();
            for &theta in THETAS.iter().filter(|&&th| th > 0.0) {
                let skew_label = Mix::updates(20, 10).with_zipf(theta).label();
                for &t in &threads {
                    let uniform = mops_of(structure, &uniform_label, t);
                    let skewed = mops_of(structure, &skew_label, t);
                    eprintln!(
                        "  skew {structure} {skew_label} threads={t}: \
                         skewed/uniform = {:.2}x",
                        skewed / uniform
                    );
                }
            }
        }
    }

    let run = Json::obj(vec![
        ("label", Json::Str(label.clone())),
        ("tier", Json::Str(tier.clone())),
        ("range", Json::Num(range as f64)),
        ("shards", Json::Num(shards as f64)),
        ("duration_secs", Json::Num(duration.as_secs_f64())),
        ("trials", Json::Num(n_trials as f64)),
        ("results", Json::Arr(results)),
    ]);

    let existing = std::fs::read_to_string(&out_path).ok();
    let doc = bench::json::merge_labeled_run(existing.as_deref(), "bench_shard/v1", &label, run);
    std::fs::write(&out_path, doc.pretty()).expect("write BENCH_shard.json");
    eprintln!("wrote {out_path}");
}
